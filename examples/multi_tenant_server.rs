//! Multi-tenant HTTP edge node: serves every application of the paper's
//! evaluation over HTTP from a single process (the deployment of Figure 4),
//! then exercises it with a few client requests.
//!
//! Run with: `cargo run --release --example multi_tenant_server`
//! (add `--stay-up` to leave the server running for manual curl testing).

use sledge::runtime::{FunctionConfig, Runtime};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn http_post(addr: std::net::SocketAddr, path: &str, body: &[u8]) -> (String, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: edge\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).expect("write head");
    s.write_all(body).expect("write body");
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).expect("read");
    let split = resp
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response");
    let head = String::from_utf8_lossy(&resp[..split]).to_string();
    let body = resp[split + 4..].to_vec();
    (head, body)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's config is a JSON file; same here.
    let (config, functions) = sledge::runtime::RuntimeConfig::from_json(
        r#"{
            "workers": 4,
            "quantum_us": 5000,
            "max_pending": 4096,
            "bounds": "vm-guard",
            "tier": "aot-opt",
            "modules": [
                {"name": "ping"}, {"name": "echo"}, {"name": "gps_ekf"},
                {"name": "gocr"}, {"name": "cifar10"}, {"name": "resize"},
                {"name": "lpd"}
            ]
        }"#,
    )?;
    let rt = Runtime::with_http(config, "127.0.0.1:0".parse()?)?;
    let addr = rt.http_addr().expect("http enabled");

    // Register each configured module with its guest binary.
    let apps = sledge::apps::all_apps();
    for fc in functions {
        let app = apps
            .iter()
            .find(|a| a.name == fc.name)
            .unwrap_or_else(|| panic!("no app named {}", fc.name));
        let config = FunctionConfig::new(fc.name.clone());
        rt.register_module(config, &(app.module)())?;
    }
    println!("multi-tenant edge node listening on http://{addr}");
    for app in &apps {
        println!("  POST /{}", app.name);
    }

    if std::env::args().any(|a| a == "--stay-up") {
        println!("\n--stay-up: serving until killed (try curl).");
        loop {
            std::thread::sleep(Duration::from_secs(60));
        }
    }

    // Exercise three tenants over real HTTP.
    let (head, body) = http_post(addr, "/ping", b"");
    println!(
        "\n/ping      -> {}  body {:?}",
        head.lines().next().unwrap(),
        body
    );
    assert!(head.starts_with("HTTP/1.1 200"));

    let (head, body) = http_post(addr, "/echo", b"edge payload");
    println!(
        "/echo      -> {}  body {:?}",
        head.lines().next().unwrap(),
        String::from_utf8_lossy(&body)
    );
    assert_eq!(body, b"edge payload");

    let input = sledge::apps::cifar10::sample_input();
    let (head, body) = http_post(addr, "/cifar10", &input);
    println!(
        "/cifar10   -> {}  class {:?}",
        head.lines().next().unwrap(),
        String::from_utf8_lossy(&body)
    );
    assert_eq!(body, sledge::apps::cifar10::native(&input));

    let (head, _) = http_post(addr, "/missing", b"");
    println!("/missing   -> {}", head.lines().next().unwrap());
    assert!(head.starts_with("HTTP/1.1 404"));

    let stats = rt.stats();
    println!(
        "\nstats: {} admitted, {} completed, {} rejected",
        stats.admitted, stats.completed, stats.rejected
    );
    rt.shutdown();
    Ok(())
}
