//! Quickstart: write a guest function in the DSL, register it with the
//! Sledge runtime, and invoke it — the whole pipeline in one file.
//!
//! Run with: `cargo run --example quickstart`

use sledge::guestc::{dsl::*, FuncBuilder, ModuleBuilder};
use sledge::runtime::{FunctionConfig, Outcome, Runtime, RuntimeConfig};
use sledge::wasm::types::ValType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a guest function: upper-case the request body.
    //    (Tenants would compile C/C++ to Wasm; here the DSL plays that role.)
    let mut mb = ModuleBuilder::new("shout");
    mb.memory(2, Some(16));
    let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );

    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let c = f.local(ValType::I32);
    f.extend([
        set(n, call(req_len, vec![])),
        exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            1,
            vec![
                set(c, load_u8(local(i))),
                // if 'a' <= c <= 'z': c -= 32
                if_(
                    and(
                        ge_s(local(c), i32c('a' as i32)),
                        le_s(local(c), i32c('z' as i32)),
                    ),
                    vec![set(c, sub(local(c), i32c(32)))],
                ),
                store_u8(local(i), local(c)),
            ],
        ),
        exec(call(resp_write, vec![i32c(0), local(n)])),
        ret(Some(i32c(0))),
    ]);
    let main_fn = mb.add_func("main", f);
    mb.export_func(main_fn, "main");
    let module = mb.build()?;

    // 2. Serialize to .wasm (what a tenant would upload) and print its size.
    let wasm_bytes = sledge::wasm::encode::encode_module(&module);
    println!("guest .wasm binary: {} bytes", wasm_bytes.len());

    // 3. Start the runtime and register the function (decode + validate +
    //    translate happen once, here).
    let rt = Runtime::new(RuntimeConfig::default());
    let id = rt.register_wasm(FunctionConfig::new("shout"), &wasm_bytes)?;

    // 4. Invoke it like a serverless client would.
    for msg in ["hello edge!", "sledge: serverless at the edge"] {
        let done = rt
            .invoke(id, msg.as_bytes().to_vec())
            .wait()
            .expect("runtime alive");
        match done.outcome {
            Outcome::Success(body) => {
                println!(
                    "request {:?} -> {:?}  (instantiation {:?}, exec {:?})",
                    msg,
                    String::from_utf8_lossy(&body),
                    done.timings.instantiation,
                    done.timings.execution,
                );
            }
            other => println!("request failed: {other:?}"),
        }
    }

    let stats = rt.stats();
    println!(
        "stats: {} admitted, {} completed, mean instantiation {:?}",
        stats.admitted,
        stats.completed,
        stats.mean_instantiation().unwrap_or_default()
    );
    rt.shutdown();
    Ok(())
}
