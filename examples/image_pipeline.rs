//! Surveillance-camera scenario (the paper's drone/smart-city motivation):
//! frames flow through two chained edge functions — license-plate detection
//! on the full frame, then a half-resolution thumbnail of the annotated
//! frame for upstreaming.
//!
//! Run with: `cargo run --release --example image_pipeline`

use sledge::apps::{lpd, resize};
use sledge::runtime::{FunctionConfig, Outcome, Runtime, RuntimeConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rt = Runtime::new(RuntimeConfig::default());
    let detect = rt.register_module(FunctionConfig::new("lpd"), &lpd::module())?;
    let thumb = rt.register_module(FunctionConfig::new("resize"), &resize::module())?;

    // Six frames from a simulated camera, plate moving across the scene.
    let frames: Vec<(usize, usize, Vec<u8>)> = (0..6)
        .map(|i| {
            let (px, py) = (20 + i * 18, 16 + i * 14);
            (px, py, lpd::synth_scene(160, 120, px, py))
        })
        .collect();

    let t0 = Instant::now();
    for (i, (px, py, frame)) in frames.iter().enumerate() {
        // Stage 1: detect the plate; the response is the annotated frame.
        let annotated = match rt.invoke(detect, frame.clone()).wait().unwrap().outcome {
            Outcome::Success(body) => body,
            other => panic!("lpd failed: {other:?}"),
        };
        // Find the drawn box (first pure-red pixel) to report the detection.
        let w = 160usize;
        let mut found = (0usize, 0usize);
        'scan: for y in 0..120 {
            for x in 0..w {
                let o = 8 + (y * w + x) * 3;
                if annotated[o] == 255 && annotated[o + 1] == 0 && annotated[o + 2] == 0 {
                    found = (x, y);
                    break 'scan;
                }
            }
        }
        // Stage 2: thumbnail the annotated frame.
        let thumbnail = match rt.invoke(thumb, annotated).wait().unwrap().outcome {
            Outcome::Success(body) => body,
            other => panic!("resize failed: {other:?}"),
        };
        let tw = u32::from_le_bytes(thumbnail[0..4].try_into()?);
        let th = u32::from_le_bytes(thumbnail[4..8].try_into()?);
        println!(
            "frame {i}: plate at ({px:>3},{py:>3}), detected near ({:>3},{:>3}), \
             thumbnail {tw}x{th} ({} bytes)",
            found.0,
            found.1,
            thumbnail.len()
        );
        assert!((found.0 as i32 - *px as i32).abs() <= 6);
        assert!((found.1 as i32 - *py as i32).abs() <= 6);
        assert_eq!((tw, th), (80, 60));
    }
    println!(
        "\npipeline: {} frames x 2 functions in {:?}",
        frames.len(),
        t0.elapsed()
    );
    rt.shutdown();
    Ok(())
}
