//! IoT telemetry scenario (the paper's intro motivation): a fleet of
//! simulated GPS devices streams fixes to the edge node; each request runs
//! one GPS-EKF predict/update cycle in a sandbox and returns the filter
//! state, which the device carries to its next request.
//!
//! Run with: `cargo run --release --example iot_telemetry`

use sledge::apps::gps_ekf;
use sledge::runtime::{FunctionConfig, Outcome, Runtime, RuntimeConfig};
use std::time::Instant;

const DEVICES: usize = 16;
const FIXES_PER_DEVICE: usize = 50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rt = Runtime::new(RuntimeConfig::default());
    let ekf = rt.register_module(FunctionConfig::new("gps_ekf"), &gps_ekf::module())?;

    let t0 = Instant::now();
    let results: Vec<(usize, f64)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for dev in 0..DEVICES {
            let rt = &rt;
            handles.push(s.spawn(move || {
                // Each device starts from the same prior but observes its own
                // trajectory (a drifting target).
                let mut state = gps_ekf::sample_input();
                for step in 0..FIXES_PER_DEVICE {
                    // Device-specific measurement: 4 pseudo-positions.
                    let z: Vec<u8> = (0..4)
                        .flat_map(|k| {
                            let v = dev as f64 + 0.1 * step as f64 + k as f64;
                            v.to_le_bytes()
                        })
                        .collect();
                    // state = x | P (from previous reply); append z.
                    let request = [&state[..8 * (8 + 64)], &z[..]].concat();
                    let done = rt.invoke(ekf, request).wait().expect("runtime alive");
                    match done.outcome {
                        Outcome::Success(body) => state = body,
                        other => panic!("device {dev}: {other:?}"),
                    }
                }
                // Final estimated first position.
                let pos0 = f64::from_le_bytes(state[0..8].try_into().expect("8 bytes"));
                (dev, pos0)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("device"))
            .collect()
    });
    let elapsed = t0.elapsed();

    for (dev, pos0) in &results {
        // After 50 updates with measurement ≈ dev + 0.1·step, the filter
        // should track near the last measurement.
        println!("device {dev:>2}: estimated pos[0] = {pos0:8.3}");
        assert!(
            (pos0 - (*dev as f64 + 0.1 * (FIXES_PER_DEVICE - 1) as f64)).abs() < 2.0,
            "filter diverged for device {dev}"
        );
    }
    let total = DEVICES * FIXES_PER_DEVICE;
    println!(
        "\n{total} EKF invocations across {DEVICES} devices in {elapsed:?} \
         ({:.0} invocations/s)",
        total as f64 / elapsed.as_secs_f64()
    );
    let stats = rt.stats();
    println!(
        "runtime stats: {} completed, {} preemptions, {} steals",
        stats.completed, stats.preemptions, stats.steals
    );
    rt.shutdown();
    Ok(())
}
