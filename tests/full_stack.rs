//! Full-stack integration tests: every layer together, from `.wasm` bytes
//! through the runtime to HTTP, plus cross-system agreement between Sledge,
//! the native baseline, and every engine configuration.

use sledge::apps;
use sledge::runtime::{FunctionConfig, Outcome, Runtime, RuntimeConfig};
use std::time::Duration;

fn default_rt(workers: usize) -> Runtime {
    Runtime::new(RuntimeConfig {
        workers,
        ..Default::default()
    })
}

#[test]
fn all_paper_apps_serve_through_the_runtime_from_wasm_bytes() {
    let rt = default_rt(4);
    for app in apps::all_apps() {
        // Round-trip through the serialized binary: the tenant-upload path.
        let wasm = sledge::wasm::encode::encode_module(&(app.module)());
        let id = rt
            .register_wasm(FunctionConfig::new(app.name), &wasm)
            .unwrap_or_else(|e| panic!("register {}: {e}", app.name));
        let input = (app.sample_input)();
        let done = rt.invoke(id, input.clone()).wait().expect("completion");
        match done.outcome {
            Outcome::Success(body) => {
                assert_eq!(body, (app.native)(&input), "{} output", app.name)
            }
            other => panic!("{}: {other:?}", app.name),
        }
    }
    let stats = rt.stats();
    assert_eq!(stats.completed, apps::all_apps().len() as u64);
    rt.shutdown();
}

#[test]
fn mixed_tenant_load_matches_native_under_concurrency() {
    let rt = default_rt(4);
    let registered: Vec<_> = apps::all_apps()
        .into_iter()
        .map(|app| {
            let id = rt
                .register_module(FunctionConfig::new(app.name), &(app.module)())
                .expect("register");
            (id, app)
        })
        .collect();

    // 10 interleaved rounds over all tenants in flight simultaneously.
    let mut handles = Vec::new();
    for round in 0..10 {
        for (id, app) in &registered {
            let input = (app.sample_input)();
            handles.push((*app, input.clone(), round, rt.invoke(*id, input)));
        }
    }
    for (app, input, round, h) in handles {
        let done = h.wait().expect("completion");
        match done.outcome {
            Outcome::Success(body) => {
                assert_eq!(body, (app.native)(&input), "{} round {round}", app.name)
            }
            other => panic!("{} round {round}: {other:?}", app.name),
        }
    }
    rt.shutdown();
}

#[test]
fn polybench_checksums_survive_the_full_runtime_path() {
    // Run a few kernels as serverless functions (not just bare engine).
    let rt = default_rt(2);
    for name in ["gemm", "durbin", "floyd-warshall"] {
        let k = apps::polybench::kernel(name).expect(name);
        let id = rt
            .register_module(FunctionConfig::new(name), &(k.build)())
            .expect("register");
        let done = rt.invoke(id, Vec::new()).wait().expect("completion");
        match done.outcome {
            Outcome::Success(body) => {
                let guest = f64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                assert_eq!(guest.to_bits(), (k.native)().to_bits(), "{name}");
            }
            other => panic!("{name}: {other:?}"),
        }
    }
    rt.shutdown();
}

#[test]
fn http_end_to_end_with_keepalive_and_pipelining() {
    use std::io::{Read, Write};
    let rt = Runtime::with_http(
        RuntimeConfig {
            workers: 2,
            ..Default::default()
        },
        "127.0.0.1:0".parse().expect("addr"),
    )
    .expect("bind");
    rt.register_module(FunctionConfig::new("echo"), &apps::echo::module())
        .expect("register");
    let addr = rt.http_addr().expect("http");

    // Two sequential requests on one keep-alive connection.
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    for i in 0..2 {
        let body = format!("keepalive-{i}");
        let req = format!(
            "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        s.write_all(req.as_bytes()).expect("write");
        // Read until the body arrives.
        let mut got = Vec::new();
        let mut buf = [0u8; 1024];
        while !got.ends_with(body.as_bytes()) {
            let n = s.read(&mut buf).expect("read");
            assert!(n > 0, "connection closed early");
            got.extend_from_slice(&buf[..n]);
        }
        assert!(got.starts_with(b"HTTP/1.1 200"));
    }
    rt.shutdown();
}

#[test]
fn runtime_config_json_drives_the_runtime() {
    let (config, functions) = RuntimeConfig::from_json(
        r#"{
            "workers": 2,
            "quantum_us": 2000,
            "modules": [{"name": "ping"}, {"name": "echo", "route": "/transfer"}]
        }"#,
    )
    .expect("parse config");
    assert_eq!(functions[1].http_route(), "/transfer");
    let rt = Runtime::new(config);
    let id = rt
        .register_module(functions[0].clone(), &apps::ping::module())
        .expect("register");
    let done = rt.invoke(id, Vec::new()).wait().expect("completion");
    assert!(matches!(done.outcome, Outcome::Success(_)));
    rt.shutdown();
}

#[test]
fn sledge_and_process_baseline_agree_on_outputs() {
    // The two systems being compared in Figures 6-8 must compute the same
    // thing; this pins the comparison's validity. (ThreadPool baseline is
    // used in-process; the ProcessPool spawn path is exercised in the bench
    // binaries where worker_child_main is wired up.)
    let pool = sledge::baseline::ThreadPool::new(4);
    let rt = default_rt(2);
    for app in apps::real_world_apps() {
        let id = rt
            .register_module(FunctionConfig::new(app.name), &(app.module)())
            .expect("register");
        let input = (app.sample_input)();
        let sledge_out = match rt.invoke(id, input.clone()).wait().expect("done").outcome {
            Outcome::Success(b) => b,
            other => panic!("{}: {other:?}", app.name),
        };
        let base_out = pool
            .invoke(app.native, input)
            .wait()
            .expect("baseline completion");
        assert!(base_out.ok);
        assert_eq!(sledge_out, base_out.body, "{}", app.name);
    }
    pool.shutdown();
    rt.shutdown();
}

#[test]
fn burst_of_mixed_sizes_is_lossless() {
    // High-churn burst: many small echo payloads of varied sizes at once.
    let rt = default_rt(4);
    let id = rt
        .register_module(FunctionConfig::new("echo"), &apps::echo::module())
        .expect("register");
    let payloads: Vec<Vec<u8>> = (0..300)
        .map(|i| apps::echo::payload((i * 97) % 4096))
        .collect();
    let handles: Vec<_> = payloads.iter().map(|p| rt.invoke(id, p.clone())).collect();
    for (p, h) in payloads.iter().zip(handles) {
        match h.wait().expect("completion").outcome {
            Outcome::Success(body) => assert_eq!(&body, p),
            other => panic!("{other:?}"),
        }
    }
    rt.shutdown();
}

#[test]
fn aggressive_preemption_does_not_corrupt_results() {
    // Tiny fuel quantum + 1 ms timer: every app is preempted many times
    // mid-flight; outputs must still be byte-identical to native.
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        quantum: std::time::Duration::from_millis(1),
        quantum_fuel: Some(5_000), // a few thousand ops per dispatch
        ..Default::default()
    });
    for app in apps::real_world_apps() {
        let id = rt
            .register_module(FunctionConfig::new(app.name), &(app.module)())
            .expect("register");
        let input = (app.sample_input)();
        let done = rt.invoke(id, input.clone()).wait().expect("completion");
        match done.outcome {
            Outcome::Success(body) => {
                assert_eq!(body, (app.native)(&input), "{}", app.name);
            }
            other => panic!("{}: {other:?}", app.name),
        }
    }
    assert!(
        rt.stats().preemptions > 100,
        "expected heavy preemption, got {}",
        rt.stats().preemptions
    );
    rt.shutdown();
}
