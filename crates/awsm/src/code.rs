//! The flat, pre-resolved code representation produced by translation —
//! the engine's analogue of the paper's AoT-compiled `.so` text.

use std::collections::HashMap;
use std::sync::Arc;

/// Width/signedness of a load, after type resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    I32,
    I64,
    F32,
    F64,
    I32U8,
    I32S8,
    I32U16,
    I32S16,
    I64U8,
    I64S8,
    I64U16,
    I64S16,
    I64U32,
    I64S32,
}

/// Width of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    I32,
    I64,
    F32,
    F64,
    B8From32,
    B16From32,
    B8From64,
    B16From64,
    B32From64,
}

/// A resolved branch: jump target plus the operand-stack adjustment.
///
/// `height` is the operand-stack height (relative to the frame's base) that
/// the target label expects; `keep` is whether the branch carries the top
/// value across the unwind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branch {
    pub target: u32,
    pub height: u32,
    pub keep: bool,
}

/// Payload of a `br_table`.
#[derive(Debug, Clone, PartialEq)]
pub struct BrTablePayload {
    pub targets: Vec<Branch>,
    pub default: Branch,
}

/// Binary numeric operations (including comparisons, which yield i32 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum NumBin {
    // i32
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    // i64
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    // f32
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    // f64
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,
}

/// Unary numeric operations, conversions, and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum NumUn {
    I32Eqz,
    I64Eqz,
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I64Clz,
    I64Ctz,
    I64Popcnt,
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
}

/// One flat instruction. Structured control has been resolved to direct
/// jumps. Fused "super-instructions" are emitted by the optimized-tier
/// translator and, when the dataflow optimizer runs, retrofitted onto the
/// naive tier's bodies as well (the interpreter executes every variant).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    Unreachable,
    Br(Branch),
    /// Pop an i32; branch if non-zero.
    BrIf(Branch),
    /// Pop an i32; branch if zero (fusion of `i32.eqz` + `br_if`, also used
    /// to lower `if`).
    BrIfZ(Branch),
    BrTable(Box<BrTablePayload>),
    Return,
    /// Call a locally-defined function (index into `CompiledModule::funcs`).
    Call(u32),
    /// Call a host import (index into `CompiledModule::host_funcs`).
    CallHost(u32),
    /// Indirect call through the table; operand is the canonical type id.
    CallIndirect(u32),
    Drop,
    Select,
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),
    /// Load with constant offset.
    Load(LoadKind, u32),
    Store(StoreKind, u32),
    MemorySize,
    MemoryGrow,
    /// Constant, already encoded in slot representation.
    Const(u64),
    Bin(NumBin),
    Un(NumUn),
    // ---- fused super-instructions ----
    /// `local.get a; local.get b; bin`
    Bin2L(NumBin, u32, u32),
    /// `…; local.get b; bin` (left operand on stack)
    BinRL(NumBin, u32),
    /// `…; const c; bin`
    BinRC(NumBin, u64),
    /// `local.get a; local.get b; bin; local.set d`
    Bin2LS(NumBin, u32, u32, u32),
    /// `local += c` for i32 loop counters.
    IncI32(u32, i32),
    /// `local.get a; load`
    LoadL(LoadKind, u32, u32),
    // ---- statically-verified accesses (analysis-rewritten bodies only) ----
    /// `Load` at a site the static analyzer proved in-bounds for every
    /// reachable memory size; executed without a bounds check.
    LoadNc(LoadKind, u32),
    /// `LoadL` at a proven-in-bounds site.
    LoadLNc(LoadKind, u32, u32),
    /// `Store` at a proven-in-bounds site.
    StoreNc(StoreKind, u32),
    // ---- cost-model instrumentation (inserted by analysis) ----
    /// Budget check charging the exact summed cost (in cost units) of the
    /// check-free segment it heads, and polling the preempt flag. Inserted
    /// by the cost analysis at basic-block heads and budget-driven split
    /// points; the optimized tier charges fuel *only* here, the naive tier
    /// (which charges per instruction) skips it.
    Fuel(u32),
    // ---- optimizer padding (inserted by the dataflow optimizer) ----
    /// Fuel-carrying no-op left where the optimizer erased or relocated an
    /// op. The payload is the erased op's weight, charged as `op_cost`, so
    /// rewrites are cost-preserving position by position: the naive tier's
    /// per-op fuel totals and the cost pass's segment sums are identical to
    /// the unoptimized body's. `Nop(0)` placeholders are removed by the
    /// optimizer's final compaction; non-zero payloads survive.
    Nop(u32),
}

/// Signature of a host import, pre-resolved at translation time.
#[derive(Debug, Clone, PartialEq)]
pub struct HostImport {
    /// Import module namespace (e.g. `"env"`).
    pub module: String,
    /// Import field name (e.g. `"request_read"`).
    pub name: String,
    /// Number of parameters.
    pub nparams: u32,
    /// Whether the import returns a value.
    pub has_result: bool,
    /// Canonical type id (shared space with local functions).
    pub type_id: u32,
}

impl HostImport {
    /// The `module::name` form used by effect certificates and capability
    /// policies.
    pub fn qualified_name(&self) -> String {
        format!("{}::{}", self.module, self.name)
    }
}

/// One translated function.
#[derive(Debug, Clone)]
pub struct CompiledFunc {
    /// Flat code; ends with `Return`.
    pub code: Vec<Op>,
    /// Analysis-rewritten body in which proven-in-bounds accesses use the
    /// unchecked `*Nc` ops. Same length and branch targets as `code` (the
    /// cost pass instruments both bodies identically — `*Nc` ops weigh the
    /// same as their checked forms, so `Op::Fuel` sites coincide); present
    /// only when at least one site was proven. Selected by
    /// [`BoundsStrategy::Static`](crate::BoundsStrategy::Static).
    pub code_static: Option<Vec<Op>>,
    /// The pre-optimization, pre-instrumentation body, retained whenever
    /// the dataflow optimizer ran (see `analysis::opt`). If certificate
    /// validation rejects the optimized body, `revert_optimizations`
    /// restores this body and re-analyzes the module from scratch, so no
    /// certificate derived from the untrusted optimized code survives.
    pub code_unopt: Option<Vec<Op>>,
    /// Parameter count.
    pub nparams: u32,
    /// Total local slot count (params + declared locals).
    pub nlocals: u32,
    /// Whether the function returns a value.
    pub has_result: bool,
    /// Canonical type id.
    pub type_id: u32,
    /// Export/debug name if known.
    pub name: Option<String>,
}

/// Linear memory requirements of a module.
#[derive(Debug, Clone, Copy)]
pub struct MemorySpec {
    /// Initial pages.
    pub min_pages: u32,
    /// Maximum pages the instance may grow to.
    pub max_pages: u32,
}

/// A fully translated ("linked and loaded") module, shared immutably among
/// all of its sandboxes via `Arc`.
#[derive(Debug)]
pub struct CompiledModule {
    /// Locally-defined functions.
    pub funcs: Vec<CompiledFunc>,
    /// Host imports, in import order.
    pub host_funcs: Vec<HostImport>,
    /// Initial global values (slot-encoded).
    pub globals: Vec<u64>,
    /// Memory requirements, if the module has a memory.
    pub memory: Option<MemorySpec>,
    /// Data segments: `(offset, bytes)`.
    pub data: Vec<(u32, Arc<[u8]>)>,
    /// Precomputed initialized-memory image (all data segments replayed in
    /// order), shared by every instance for cold instantiation and in-place
    /// reset of recycled sandboxes.
    pub template: crate::memory::MemoryTemplate,
    /// Function table (module-space function indices).
    pub table: Vec<Option<u32>>,
    /// Exported functions: name → module-space function index.
    pub exports: HashMap<String, u32>,
    /// Optional start function (module-space index).
    pub start: Option<u32>,
    /// Module name.
    pub name: Option<String>,
    /// Load-time static-analysis report (stack bound, elision proofs,
    /// lints), computed once at translation.
    pub analysis: crate::analysis::AnalysisReport,
}

impl CompiledModule {
    /// Number of imported (host) functions; module-space indices below this
    /// refer to imports.
    pub fn num_imports(&self) -> u32 {
        self.host_funcs.len() as u32
    }

    /// Find an exported function's module-space index.
    pub fn export(&self, name: &str) -> Option<u32> {
        self.exports.get(name).copied()
    }

    /// Cheapest sound reset strategy for sandboxes recycled after running
    /// `entry`, derived from the effect certificate:
    ///
    /// * `Elide` — the entry provably performs no store and cannot grow
    ///   memory: a recycled memory is byte-identical to a fresh one, so the
    ///   pool skips the memory reset entirely (globals are still restored).
    /// * `StaticSpan { lo, hi }` — every store lands in `[lo, hi)`; the
    ///   reset zeroes only from `lo` up instead of from the template end.
    ///   Armed only when `hi` fits inside the initial memory (`min_pages`):
    ///   masked bounds strategies wrap effective addresses only at or past
    ///   the capacity, which is at least the initial size, so a footprint
    ///   inside it can never alias below `lo`. Also requires `lo` past the
    ///   template image, otherwise the span saves nothing over a full
    ///   reset.
    /// * `HighWater` — everything else, including any module with a start
    ///   function (whose one-time effects a partial reset cannot preserve)
    ///   and any entry that may grow memory.
    ///
    /// Runtime guards in `Instance::reset_with` re-check the dynamic side
    /// (page count, host writes, high-water mark) and fall back to a full
    /// reset, so a stale or optimistic policy degrades to correct-but-slow.
    pub fn reset_policy(&self, entry: &str) -> crate::ResetPolicy {
        use crate::analysis::effects::WriteFootprint;
        let Some(effects) = &self.analysis.effects else {
            return crate::ResetPolicy::HighWater;
        };
        let Some(idx) = self.export(entry) else {
            return crate::ResetPolicy::HighWater;
        };
        if self.start.is_some() {
            return crate::ResetPolicy::HighWater;
        }
        let Some((_, footprint, may_grow)) = effects.entry_effect(idx) else {
            return crate::ResetPolicy::HighWater;
        };
        if may_grow {
            return crate::ResetPolicy::HighWater;
        }
        let min_bytes = self
            .memory
            .map(|s| s.min_pages as u64 * sledge_wasm::PAGE_SIZE as u64)
            .unwrap_or(0);
        let template_len = self.template.image().len() as u64;
        match footprint {
            WriteFootprint::Empty => crate::ResetPolicy::Elide,
            WriteFootprint::Span { lo, hi } if hi <= min_bytes && lo > template_len => {
                crate::ResetPolicy::StaticSpan { lo, hi }
            }
            _ => crate::ResetPolicy::HighWater,
        }
    }

    /// Approximate byte size of the translated code and static data — the
    /// analogue of the paper's per-module `.so` footprint.
    pub fn code_size_bytes(&self) -> usize {
        let ops: usize = self
            .funcs
            .iter()
            .map(|f| f.code.len() * std::mem::size_of::<Op>())
            .sum();
        let data: usize = self.data.iter().map(|(_, b)| b.len()).sum();
        ops + data + self.table.len() * 8 + self.globals.len() * 8
    }
}
