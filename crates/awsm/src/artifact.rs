//! Distributable module artifacts: a versioned binary encoding of a
//! [`CompiledModule`] *together with its analysis certificates* (stack
//! bound, cost/preemption certificate, effect report, optimizer
//! translation-validation claims).
//!
//! This is the cluster tier's module-distribution format: a router
//! translates and analyzes a module once, then pushes the encoded artifact
//! to every node. Receiving nodes decode it and **re-validate the carried
//! certificates** (checksum, optimizer claims via
//! [`validate`](crate::analysis::opt::validate), registry gates) instead of
//! re-translating the source — the paper's "heavyweight linking and
//! loading" happens once per ring, not once per node.
//!
//! The format is deliberately simple: little-endian fixed-width integers,
//! length-prefixed byte strings, a one-byte tag per enum variant, and an
//! FNV-1a-64 checksum over the payload so in-flight corruption is detected
//! before any certificate is trusted. Exports are written in sorted order
//! so encoding is deterministic: the same compiled module always produces
//! byte-identical artifacts (and therefore the same checksum) on every
//! node.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::analysis::cost::{CostReport, FuncCost};
use crate::analysis::effects::{EffectReport, FuncEffect, WriteFootprint};
use crate::analysis::opt::{ClaimBase, OptClaim, OptFuncReport, OptReport};
use crate::analysis::{AnalysisReport, Diagnostic, FuncSummary, Severity, StackBound};
use crate::code::{
    BrTablePayload, Branch, CompiledFunc, CompiledModule, HostImport, LoadKind, MemorySpec, NumBin,
    NumUn, Op, StoreKind,
};
use crate::memory::MemoryTemplate;

/// Artifact magic: "SLGA" (SLedGe Artifact).
pub const MAGIC: &[u8; 4] = b"SLGA";
/// Current format version. Decoders reject anything else.
pub const VERSION: u16 = 1;

/// Why an artifact could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The byte stream ended before the structure was complete.
    Truncated,
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`VERSION`].
    BadVersion(u16),
    /// The FNV-1a checksum over the payload does not match the header:
    /// the artifact was corrupted (or tampered with) in flight.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the received payload.
        got: u64,
    },
    /// A tag or length field holds a value the format does not define.
    Corrupt(&'static str),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::BadMagic => write!(f, "not a sledge module artifact (bad magic)"),
            ArtifactError::BadVersion(v) => {
                write!(f, "unsupported artifact version {v} (expected {VERSION})")
            }
            ArtifactError::ChecksumMismatch { expected, got } => write!(
                f,
                "artifact checksum mismatch (header {expected:#018x}, payload {got:#018x})"
            ),
            ArtifactError::Corrupt(what) => write!(f, "corrupt artifact: {what}"),
        }
    }
}

impl Error for ArtifactError {}

/// FNV-1a 64-bit hash — the integrity checksum over the artifact payload.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode a compiled module (with its full analysis report) into a
/// distributable artifact.
pub fn encode(m: &CompiledModule) -> Vec<u8> {
    let mut w = Writer::default();
    w.opt_str(m.name.as_deref());
    w.u32(m.funcs.len() as u32);
    for f in &m.funcs {
        func(&mut w, f);
    }
    w.u32(m.host_funcs.len() as u32);
    for h in &m.host_funcs {
        w.str_(&h.module);
        w.str_(&h.name);
        w.u32(h.nparams);
        w.bool_(h.has_result);
        w.u32(h.type_id);
    }
    w.u32(m.globals.len() as u32);
    for &g in &m.globals {
        w.u64(g);
    }
    match m.memory {
        Some(spec) => {
            w.u8(1);
            w.u32(spec.min_pages);
            w.u32(spec.max_pages);
        }
        None => w.u8(0),
    }
    w.u32(m.data.len() as u32);
    for (off, bytes) in &m.data {
        w.u32(*off);
        w.bytes(bytes);
    }
    w.u32(m.table.len() as u32);
    for slot in &m.table {
        w.opt_u32(*slot);
    }
    // Deterministic export order: HashMap iteration order would otherwise
    // make the checksum vary between identical modules.
    let mut exports: Vec<(&String, &u32)> = m.exports.iter().collect();
    exports.sort();
    w.u32(exports.len() as u32);
    for (name, idx) in exports {
        w.str_(name);
        w.u32(*idx);
    }
    w.opt_u32(m.start);
    analysis(&mut w, &m.analysis);

    let payload = w.out;
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]); // reserved
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode an artifact back into a [`CompiledModule`], verifying the
/// checksum first. The memory template is rebuilt from the data segments,
/// so the artifact never carries the (redundant, potentially large)
/// flattened image.
///
/// # Errors
///
/// Any structural problem — bad magic/version, checksum mismatch, unknown
/// tags, truncation — yields an [`ArtifactError`]; nothing is partially
/// constructed.
pub fn decode(bytes: &[u8]) -> Result<CompiledModule, ArtifactError> {
    if bytes.len() < 16 {
        return Err(ArtifactError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(ArtifactError::BadVersion(version));
    }
    let expected = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload = &bytes[16..];
    let got = fnv1a(payload);
    if got != expected {
        return Err(ArtifactError::ChecksumMismatch { expected, got });
    }

    let mut r = Reader { buf: payload };
    let name = r.opt_str()?;
    let nfuncs = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs.min(1 << 16));
    for _ in 0..nfuncs {
        funcs.push(read_func(&mut r)?);
    }
    let nhost = r.u32()? as usize;
    let mut host_funcs = Vec::with_capacity(nhost.min(1 << 12));
    for _ in 0..nhost {
        host_funcs.push(HostImport {
            module: r.str_()?,
            name: r.str_()?,
            nparams: r.u32()?,
            has_result: r.bool_()?,
            type_id: r.u32()?,
        });
    }
    let nglobals = r.u32()? as usize;
    let mut globals = Vec::with_capacity(nglobals.min(1 << 16));
    for _ in 0..nglobals {
        globals.push(r.u64()?);
    }
    let memory = match r.u8()? {
        0 => None,
        1 => Some(MemorySpec {
            min_pages: r.u32()?,
            max_pages: r.u32()?,
        }),
        _ => return Err(ArtifactError::Corrupt("memory tag")),
    };
    let ndata = r.u32()? as usize;
    let mut data: Vec<(u32, Arc<[u8]>)> = Vec::with_capacity(ndata.min(1 << 12));
    for _ in 0..ndata {
        let off = r.u32()?;
        let bytes: Arc<[u8]> = Arc::from(r.bytes()?);
        data.push((off, bytes));
    }
    let ntable = r.u32()? as usize;
    let mut table = Vec::with_capacity(ntable.min(1 << 16));
    for _ in 0..ntable {
        table.push(r.opt_u32()?);
    }
    let nexports = r.u32()? as usize;
    let mut exports = HashMap::with_capacity(nexports.min(1 << 12));
    for _ in 0..nexports {
        let name = r.str_()?;
        let idx = r.u32()?;
        exports.insert(name, idx);
    }
    let start = r.opt_u32()?;
    let analysis = read_analysis(&mut r)?;
    if !r.buf.is_empty() {
        return Err(ArtifactError::Corrupt("trailing bytes"));
    }

    let template = MemoryTemplate::build(&data);
    Ok(CompiledModule {
        funcs,
        host_funcs,
        globals,
        memory,
        data,
        template,
        table,
        exports,
        start,
        name,
        analysis,
    })
}

// ---------------------------------------------------------------------------
// Writer / Reader primitives
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn bool_(&mut self, v: bool) {
        self.out.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.out.extend_from_slice(b);
    }
    fn str_(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.str_(s);
            }
            None => self.u8(0),
        }
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u32(v);
            }
            None => self.u8(0),
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.buf.len() < n {
            return Err(ArtifactError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }
    fn bool_(&mut self) -> Result<bool, ArtifactError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ArtifactError::Corrupt("bool tag")),
        }
    }
    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, ArtifactError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, ArtifactError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn str_(&mut self) -> Result<String, ArtifactError> {
        String::from_utf8(self.bytes()?).map_err(|_| ArtifactError::Corrupt("non-utf8 string"))
    }
    fn opt_str(&mut self) -> Result<Option<String>, ArtifactError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str_()?)),
            _ => Err(ArtifactError::Corrupt("option tag")),
        }
    }
    fn opt_u32(&mut self) -> Result<Option<u32>, ArtifactError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(ArtifactError::Corrupt("option tag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Code encoding
// ---------------------------------------------------------------------------

// Fieldless enums are encoded as their declaration-order discriminant and
// decoded through these tables; an out-of-range byte is a corrupt artifact,
// never a panic.
#[rustfmt::skip]
const LOAD_KINDS: &[LoadKind] = &[
    LoadKind::I32, LoadKind::I64, LoadKind::F32, LoadKind::F64,
    LoadKind::I32U8, LoadKind::I32S8, LoadKind::I32U16, LoadKind::I32S16,
    LoadKind::I64U8, LoadKind::I64S8, LoadKind::I64U16, LoadKind::I64S16,
    LoadKind::I64U32, LoadKind::I64S32,
];
#[rustfmt::skip]
const STORE_KINDS: &[StoreKind] = &[
    StoreKind::I32, StoreKind::I64, StoreKind::F32, StoreKind::F64,
    StoreKind::B8From32, StoreKind::B16From32, StoreKind::B8From64,
    StoreKind::B16From64, StoreKind::B32From64,
];
#[rustfmt::skip]
const NUM_BINS: &[NumBin] = &[
    NumBin::I32Add, NumBin::I32Sub, NumBin::I32Mul, NumBin::I32DivS,
    NumBin::I32DivU, NumBin::I32RemS, NumBin::I32RemU, NumBin::I32And,
    NumBin::I32Or, NumBin::I32Xor, NumBin::I32Shl, NumBin::I32ShrS,
    NumBin::I32ShrU, NumBin::I32Rotl, NumBin::I32Rotr, NumBin::I32Eq,
    NumBin::I32Ne, NumBin::I32LtS, NumBin::I32LtU, NumBin::I32GtS,
    NumBin::I32GtU, NumBin::I32LeS, NumBin::I32LeU, NumBin::I32GeS,
    NumBin::I32GeU,
    NumBin::I64Add, NumBin::I64Sub, NumBin::I64Mul, NumBin::I64DivS,
    NumBin::I64DivU, NumBin::I64RemS, NumBin::I64RemU, NumBin::I64And,
    NumBin::I64Or, NumBin::I64Xor, NumBin::I64Shl, NumBin::I64ShrS,
    NumBin::I64ShrU, NumBin::I64Rotl, NumBin::I64Rotr, NumBin::I64Eq,
    NumBin::I64Ne, NumBin::I64LtS, NumBin::I64LtU, NumBin::I64GtS,
    NumBin::I64GtU, NumBin::I64LeS, NumBin::I64LeU, NumBin::I64GeS,
    NumBin::I64GeU,
    NumBin::F32Add, NumBin::F32Sub, NumBin::F32Mul, NumBin::F32Div,
    NumBin::F32Min, NumBin::F32Max, NumBin::F32Copysign, NumBin::F32Eq,
    NumBin::F32Ne, NumBin::F32Lt, NumBin::F32Gt, NumBin::F32Le,
    NumBin::F32Ge,
    NumBin::F64Add, NumBin::F64Sub, NumBin::F64Mul, NumBin::F64Div,
    NumBin::F64Min, NumBin::F64Max, NumBin::F64Copysign, NumBin::F64Eq,
    NumBin::F64Ne, NumBin::F64Lt, NumBin::F64Gt, NumBin::F64Le,
    NumBin::F64Ge,
];
#[rustfmt::skip]
const NUM_UNS: &[NumUn] = &[
    NumUn::I32Eqz, NumUn::I64Eqz, NumUn::I32Clz, NumUn::I32Ctz,
    NumUn::I32Popcnt, NumUn::I64Clz, NumUn::I64Ctz, NumUn::I64Popcnt,
    NumUn::F32Abs, NumUn::F32Neg, NumUn::F32Ceil, NumUn::F32Floor,
    NumUn::F32Trunc, NumUn::F32Nearest, NumUn::F32Sqrt,
    NumUn::F64Abs, NumUn::F64Neg, NumUn::F64Ceil, NumUn::F64Floor,
    NumUn::F64Trunc, NumUn::F64Nearest, NumUn::F64Sqrt,
    NumUn::I32WrapI64, NumUn::I32TruncF32S, NumUn::I32TruncF32U,
    NumUn::I32TruncF64S, NumUn::I32TruncF64U, NumUn::I64ExtendI32S,
    NumUn::I64ExtendI32U, NumUn::I64TruncF32S, NumUn::I64TruncF32U,
    NumUn::I64TruncF64S, NumUn::I64TruncF64U, NumUn::F32ConvertI32S,
    NumUn::F32ConvertI32U, NumUn::F32ConvertI64S, NumUn::F32ConvertI64U,
    NumUn::F32DemoteF64, NumUn::F64ConvertI32S, NumUn::F64ConvertI32U,
    NumUn::F64ConvertI64S, NumUn::F64ConvertI64U, NumUn::F64PromoteF32,
    NumUn::I32ReinterpretF32, NumUn::I64ReinterpretF64,
    NumUn::F32ReinterpretI32, NumUn::F64ReinterpretI64,
    NumUn::I32Extend8S, NumUn::I32Extend16S, NumUn::I64Extend8S,
    NumUn::I64Extend16S, NumUn::I64Extend32S,
];

fn load_kind(w: &mut Writer, k: LoadKind) {
    w.u8(k as u8);
}
fn store_kind(w: &mut Writer, k: StoreKind) {
    w.u8(k as u8);
}
fn num_bin(w: &mut Writer, b: NumBin) {
    w.u8(b as u8);
}
fn num_un(w: &mut Writer, u: NumUn) {
    w.u8(u as u8);
}

fn read_load_kind(r: &mut Reader) -> Result<LoadKind, ArtifactError> {
    LOAD_KINDS
        .get(r.u8()? as usize)
        .copied()
        .ok_or(ArtifactError::Corrupt("load kind"))
}
fn read_store_kind(r: &mut Reader) -> Result<StoreKind, ArtifactError> {
    STORE_KINDS
        .get(r.u8()? as usize)
        .copied()
        .ok_or(ArtifactError::Corrupt("store kind"))
}
fn read_num_bin(r: &mut Reader) -> Result<NumBin, ArtifactError> {
    NUM_BINS
        .get(r.u8()? as usize)
        .copied()
        .ok_or(ArtifactError::Corrupt("numeric binop"))
}
fn read_num_un(r: &mut Reader) -> Result<NumUn, ArtifactError> {
    NUM_UNS
        .get(r.u8()? as usize)
        .copied()
        .ok_or(ArtifactError::Corrupt("numeric unop"))
}

fn branch(w: &mut Writer, b: &Branch) {
    w.u32(b.target);
    w.u32(b.height);
    w.bool_(b.keep);
}

fn read_branch(r: &mut Reader) -> Result<Branch, ArtifactError> {
    Ok(Branch {
        target: r.u32()?,
        height: r.u32()?,
        keep: r.bool_()?,
    })
}

fn op(w: &mut Writer, o: &Op) {
    match o {
        Op::Unreachable => w.u8(0),
        Op::Br(b) => {
            w.u8(1);
            branch(w, b);
        }
        Op::BrIf(b) => {
            w.u8(2);
            branch(w, b);
        }
        Op::BrIfZ(b) => {
            w.u8(3);
            branch(w, b);
        }
        Op::BrTable(p) => {
            w.u8(4);
            w.u32(p.targets.len() as u32);
            for t in &p.targets {
                branch(w, t);
            }
            branch(w, &p.default);
        }
        Op::Return => w.u8(5),
        Op::Call(i) => {
            w.u8(6);
            w.u32(*i);
        }
        Op::CallHost(i) => {
            w.u8(7);
            w.u32(*i);
        }
        Op::CallIndirect(t) => {
            w.u8(8);
            w.u32(*t);
        }
        Op::Drop => w.u8(9),
        Op::Select => w.u8(10),
        Op::LocalGet(i) => {
            w.u8(11);
            w.u32(*i);
        }
        Op::LocalSet(i) => {
            w.u8(12);
            w.u32(*i);
        }
        Op::LocalTee(i) => {
            w.u8(13);
            w.u32(*i);
        }
        Op::GlobalGet(i) => {
            w.u8(14);
            w.u32(*i);
        }
        Op::GlobalSet(i) => {
            w.u8(15);
            w.u32(*i);
        }
        Op::Load(k, off) => {
            w.u8(16);
            load_kind(w, *k);
            w.u32(*off);
        }
        Op::Store(k, off) => {
            w.u8(17);
            store_kind(w, *k);
            w.u32(*off);
        }
        Op::MemorySize => w.u8(18),
        Op::MemoryGrow => w.u8(19),
        Op::Const(v) => {
            w.u8(20);
            w.u64(*v);
        }
        Op::Bin(b) => {
            w.u8(21);
            num_bin(w, *b);
        }
        Op::Un(u) => {
            w.u8(22);
            num_un(w, *u);
        }
        Op::Bin2L(b, a, c) => {
            w.u8(23);
            num_bin(w, *b);
            w.u32(*a);
            w.u32(*c);
        }
        Op::BinRL(b, a) => {
            w.u8(24);
            num_bin(w, *b);
            w.u32(*a);
        }
        Op::BinRC(b, c) => {
            w.u8(25);
            num_bin(w, *b);
            w.u64(*c);
        }
        Op::Bin2LS(b, a, c, d) => {
            w.u8(26);
            num_bin(w, *b);
            w.u32(*a);
            w.u32(*c);
            w.u32(*d);
        }
        Op::IncI32(l, d) => {
            w.u8(27);
            w.u32(*l);
            w.i32(*d);
        }
        Op::LoadL(k, l, off) => {
            w.u8(28);
            load_kind(w, *k);
            w.u32(*l);
            w.u32(*off);
        }
        Op::LoadNc(k, off) => {
            w.u8(29);
            load_kind(w, *k);
            w.u32(*off);
        }
        Op::LoadLNc(k, l, off) => {
            w.u8(30);
            load_kind(w, *k);
            w.u32(*l);
            w.u32(*off);
        }
        Op::StoreNc(k, off) => {
            w.u8(31);
            store_kind(w, *k);
            w.u32(*off);
        }
        Op::Fuel(c) => {
            w.u8(32);
            w.u32(*c);
        }
        Op::Nop(c) => {
            w.u8(33);
            w.u32(*c);
        }
    }
}

fn read_op(r: &mut Reader) -> Result<Op, ArtifactError> {
    Ok(match r.u8()? {
        0 => Op::Unreachable,
        1 => Op::Br(read_branch(r)?),
        2 => Op::BrIf(read_branch(r)?),
        3 => Op::BrIfZ(read_branch(r)?),
        4 => {
            let n = r.u32()? as usize;
            let mut targets = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                targets.push(read_branch(r)?);
            }
            let default = read_branch(r)?;
            Op::BrTable(Box::new(BrTablePayload { targets, default }))
        }
        5 => Op::Return,
        6 => Op::Call(r.u32()?),
        7 => Op::CallHost(r.u32()?),
        8 => Op::CallIndirect(r.u32()?),
        9 => Op::Drop,
        10 => Op::Select,
        11 => Op::LocalGet(r.u32()?),
        12 => Op::LocalSet(r.u32()?),
        13 => Op::LocalTee(r.u32()?),
        14 => Op::GlobalGet(r.u32()?),
        15 => Op::GlobalSet(r.u32()?),
        16 => Op::Load(read_load_kind(r)?, r.u32()?),
        17 => Op::Store(read_store_kind(r)?, r.u32()?),
        18 => Op::MemorySize,
        19 => Op::MemoryGrow,
        20 => Op::Const(r.u64()?),
        21 => Op::Bin(read_num_bin(r)?),
        22 => Op::Un(read_num_un(r)?),
        23 => Op::Bin2L(read_num_bin(r)?, r.u32()?, r.u32()?),
        24 => Op::BinRL(read_num_bin(r)?, r.u32()?),
        25 => Op::BinRC(read_num_bin(r)?, r.u64()?),
        26 => Op::Bin2LS(read_num_bin(r)?, r.u32()?, r.u32()?, r.u32()?),
        27 => Op::IncI32(r.u32()?, r.i32()?),
        28 => Op::LoadL(read_load_kind(r)?, r.u32()?, r.u32()?),
        29 => Op::LoadNc(read_load_kind(r)?, r.u32()?),
        30 => Op::LoadLNc(read_load_kind(r)?, r.u32()?, r.u32()?),
        31 => Op::StoreNc(read_store_kind(r)?, r.u32()?),
        32 => Op::Fuel(r.u32()?),
        33 => Op::Nop(r.u32()?),
        _ => return Err(ArtifactError::Corrupt("op tag")),
    })
}

fn code(w: &mut Writer, ops: &[Op]) {
    w.u32(ops.len() as u32);
    for o in ops {
        op(w, o);
    }
}

fn read_code(r: &mut Reader) -> Result<Vec<Op>, ArtifactError> {
    let n = r.u32()? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        ops.push(read_op(r)?);
    }
    Ok(ops)
}

fn func(w: &mut Writer, f: &CompiledFunc) {
    code(w, &f.code);
    match &f.code_static {
        Some(c) => {
            w.u8(1);
            code(w, c);
        }
        None => w.u8(0),
    }
    match &f.code_unopt {
        Some(c) => {
            w.u8(1);
            code(w, c);
        }
        None => w.u8(0),
    }
    w.u32(f.nparams);
    w.u32(f.nlocals);
    w.bool_(f.has_result);
    w.u32(f.type_id);
    w.opt_str(f.name.as_deref());
}

fn read_func(r: &mut Reader) -> Result<CompiledFunc, ArtifactError> {
    let body = read_code(r)?;
    let code_static = match r.u8()? {
        0 => None,
        1 => Some(read_code(r)?),
        _ => return Err(ArtifactError::Corrupt("option tag")),
    };
    let code_unopt = match r.u8()? {
        0 => None,
        1 => Some(read_code(r)?),
        _ => return Err(ArtifactError::Corrupt("option tag")),
    };
    Ok(CompiledFunc {
        code: body,
        code_static,
        code_unopt,
        nparams: r.u32()?,
        nlocals: r.u32()?,
        has_result: r.bool_()?,
        type_id: r.u32()?,
        name: r.opt_str()?,
    })
}

// ---------------------------------------------------------------------------
// Analysis / certificate encoding
// ---------------------------------------------------------------------------

fn analysis(w: &mut Writer, a: &AnalysisReport) {
    w.u32(a.funcs.len() as u32);
    for f in &a.funcs {
        w.opt_str(f.name.as_deref());
        w.u32(f.max_operand_slots);
        w.u64(f.frame_bytes);
        w.u32(f.mem_sites);
        w.u32(f.elided_sites);
        w.bool_(f.reachable);
    }
    match &a.stack_bound {
        StackBound::Bounded(b) => {
            w.u8(0);
            w.u64(*b);
        }
        StackBound::Unbounded { cycle } => {
            w.u8(1);
            w.u32(cycle.len() as u32);
            for &f in cycle {
                w.u32(f);
            }
        }
    }
    w.u32(a.diagnostics.len() as u32);
    for d in &a.diagnostics {
        w.u8(match d.severity {
            Severity::Warn => 0,
            Severity::Error => 1,
        });
        w.opt_u32(d.func);
        w.opt_u32(d.pc);
        w.str_(&d.message);
    }
    w.u32(a.mem_sites);
    w.u32(a.elided_sites);
    match &a.cost {
        Some(c) => {
            w.u8(1);
            cost(w, c);
        }
        None => w.u8(0),
    }
    match &a.effects {
        Some(e) => {
            w.u8(1);
            effects(w, e);
        }
        None => w.u8(0),
    }
    match &a.opt {
        Some(o) => {
            w.u8(1);
            opt(w, o);
        }
        None => w.u8(0),
    }
    // timings are a local profiling aid keyed by static strings; they do
    // not travel.
}

fn read_analysis(r: &mut Reader) -> Result<AnalysisReport, ArtifactError> {
    let nfuncs = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs.min(1 << 16));
    for _ in 0..nfuncs {
        funcs.push(FuncSummary {
            name: r.opt_str()?,
            max_operand_slots: r.u32()?,
            frame_bytes: r.u64()?,
            mem_sites: r.u32()?,
            elided_sites: r.u32()?,
            reachable: r.bool_()?,
        });
    }
    let stack_bound = match r.u8()? {
        0 => StackBound::Bounded(r.u64()?),
        1 => {
            let n = r.u32()? as usize;
            let mut cycle = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                cycle.push(r.u32()?);
            }
            StackBound::Unbounded { cycle }
        }
        _ => return Err(ArtifactError::Corrupt("stack bound tag")),
    };
    let ndiags = r.u32()? as usize;
    let mut diagnostics = Vec::with_capacity(ndiags.min(1 << 12));
    for _ in 0..ndiags {
        diagnostics.push(Diagnostic {
            severity: match r.u8()? {
                0 => Severity::Warn,
                1 => Severity::Error,
                _ => return Err(ArtifactError::Corrupt("severity tag")),
            },
            func: r.opt_u32()?,
            pc: r.opt_u32()?,
            message: r.str_()?,
        });
    }
    let mem_sites = r.u32()?;
    let elided_sites = r.u32()?;
    let cost = match r.u8()? {
        0 => None,
        1 => Some(read_cost(r)?),
        _ => return Err(ArtifactError::Corrupt("option tag")),
    };
    let effects = match r.u8()? {
        0 => None,
        1 => Some(read_effects(r)?),
        _ => return Err(ArtifactError::Corrupt("option tag")),
    };
    let opt = match r.u8()? {
        0 => None,
        1 => Some(read_opt(r)?),
        _ => return Err(ArtifactError::Corrupt("option tag")),
    };
    Ok(AnalysisReport {
        funcs,
        stack_bound,
        diagnostics,
        mem_sites,
        elided_sites,
        cost,
        effects,
        opt,
        timings: Vec::new(),
    })
}

fn cost(w: &mut Writer, c: &CostReport) {
    w.u32(c.max_check_gap);
    w.u32(c.funcs.len() as u32);
    for f in &c.funcs {
        w.opt_str(f.name.as_deref());
        w.u32(f.blocks);
        w.u32(f.checks);
        w.u32(f.splits);
        w.u64(f.total_cost);
        w.u32(f.max_gap);
        w.u32(f.max_loop_gap);
        w.u32(f.max_host_gap);
    }
    w.u32(c.max_gap);
    w.u32(c.checks);
    w.u32(c.splits);
}

fn read_cost(r: &mut Reader) -> Result<CostReport, ArtifactError> {
    let max_check_gap = r.u32()?;
    let nfuncs = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs.min(1 << 16));
    for _ in 0..nfuncs {
        funcs.push(FuncCost {
            name: r.opt_str()?,
            blocks: r.u32()?,
            checks: r.u32()?,
            splits: r.u32()?,
            total_cost: r.u64()?,
            max_gap: r.u32()?,
            max_loop_gap: r.u32()?,
            max_host_gap: r.u32()?,
        });
    }
    Ok(CostReport {
        max_check_gap,
        funcs,
        max_gap: r.u32()?,
        checks: r.u32()?,
        splits: r.u32()?,
    })
}

fn effects(w: &mut Writer, e: &EffectReport) {
    w.u32(e.imports.len() as u32);
    for i in &e.imports {
        w.str_(i);
    }
    w.u32(e.funcs.len() as u32);
    for f in &e.funcs {
        w.opt_str(f.name.as_deref());
        w.u32(f.hostcalls.len() as u32);
        for &h in &f.hostcalls {
            w.u32(h);
        }
        match f.footprint {
            WriteFootprint::Empty => w.u8(0),
            WriteFootprint::Span { lo, hi } => {
                w.u8(1);
                w.u64(lo);
                w.u64(hi);
            }
            WriteFootprint::Unbounded => w.u8(2),
        }
        w.bool_(f.may_grow);
        w.bool_(f.writes_globals);
        w.bool_(f.pure);
    }
}

fn read_effects(r: &mut Reader) -> Result<EffectReport, ArtifactError> {
    let nimports = r.u32()? as usize;
    let mut imports = Vec::with_capacity(nimports.min(1 << 12));
    for _ in 0..nimports {
        imports.push(r.str_()?);
    }
    let nfuncs = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs.min(1 << 16));
    for _ in 0..nfuncs {
        let name = r.opt_str()?;
        let nhost = r.u32()? as usize;
        let mut hostcalls = Vec::with_capacity(nhost.min(1 << 12));
        for _ in 0..nhost {
            hostcalls.push(r.u32()?);
        }
        let footprint = match r.u8()? {
            0 => WriteFootprint::Empty,
            1 => WriteFootprint::Span {
                lo: r.u64()?,
                hi: r.u64()?,
            },
            2 => WriteFootprint::Unbounded,
            _ => return Err(ArtifactError::Corrupt("footprint tag")),
        };
        funcs.push(FuncEffect {
            name,
            hostcalls,
            footprint,
            may_grow: r.bool_()?,
            writes_globals: r.bool_()?,
            pure: r.bool_()?,
        });
    }
    Ok(EffectReport { imports, funcs })
}

fn opt(w: &mut Writer, o: &OptReport) {
    w.u32(o.funcs.len() as u32);
    for f in &o.funcs {
        w.u32(f.ops_before);
        w.u32(f.ops_after);
        w.u32(f.folded);
        w.u32(f.branches_simplified);
        w.u32(f.dce_ops);
        w.u32(f.fused);
        w.u32(f.claims.len() as u32);
        for c in &f.claims {
            w.u32(c.pc);
            match c.base {
                ClaimBase::Const { end } => {
                    w.u8(0);
                    w.u64(end);
                }
                ClaimBase::Local { local, end } => {
                    w.u8(1);
                    w.u32(local);
                    w.u64(end);
                }
            }
        }
        w.u32(f.fuel_sites_before);
        w.u32(f.fuel_sites_after);
    }
    w.u32(o.ops_before);
    w.u32(o.ops_after);
    w.u32(o.folded);
    w.u32(o.branches_simplified);
    w.u32(o.dce_ops);
    w.u32(o.fused);
    w.u32(o.checks_elided);
    w.u32(o.fuel_sites_merged);
}

fn read_opt(r: &mut Reader) -> Result<OptReport, ArtifactError> {
    let nfuncs = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs.min(1 << 16));
    for _ in 0..nfuncs {
        let ops_before = r.u32()?;
        let ops_after = r.u32()?;
        let folded = r.u32()?;
        let branches_simplified = r.u32()?;
        let dce_ops = r.u32()?;
        let fused = r.u32()?;
        let nclaims = r.u32()? as usize;
        let mut claims = Vec::with_capacity(nclaims.min(1 << 16));
        for _ in 0..nclaims {
            let pc = r.u32()?;
            let base = match r.u8()? {
                0 => ClaimBase::Const { end: r.u64()? },
                1 => ClaimBase::Local {
                    local: r.u32()?,
                    end: r.u64()?,
                },
                _ => return Err(ArtifactError::Corrupt("claim tag")),
            };
            claims.push(OptClaim { pc, base });
        }
        funcs.push(OptFuncReport {
            ops_before,
            ops_after,
            folded,
            branches_simplified,
            dce_ops,
            fused,
            claims,
            fuel_sites_before: r.u32()?,
            fuel_sites_after: r.u32()?,
        });
    }
    Ok(OptReport {
        funcs,
        ops_before: r.u32()?,
        ops_after: r.u32()?,
        folded: r.u32()?,
        branches_simplified: r.u32()?,
        dce_ops: r.u32()?,
        fused: r.u32()?,
        checks_elided: r.u32()?,
        fuel_sites_merged: r.u32()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{translate_with, Tier, TranslateOptions};
    use sledge_guestc::{dsl::*, FuncBuilder, ModuleBuilder};
    use sledge_wasm::types::ValType;

    fn sample_module() -> CompiledModule {
        let mut mb = ModuleBuilder::new("artifact-sample");
        mb.memory(1, Some(4));
        let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
        let x = f.arg(0);
        let acc = f.local(ValType::I32);
        // A loop with memory traffic so the body exercises loads, stores,
        // fuel instrumentation, and (when enabled) fusion + elision.
        f.push(store_i32(i32c(16), local(x)));
        f.push(set(acc, load_i32(i32c(16))));
        f.push(while_(
            lt_s(local(acc), i32c(100)),
            vec![set(acc, add(local(acc), i32c(7)))],
        ));
        f.push(ret(Some(local(acc))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let module = mb.build().unwrap();
        translate_with(&module, Tier::Optimized, TranslateOptions::default()).unwrap()
    }

    fn assert_modules_equal(a: &CompiledModule, b: &CompiledModule) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.funcs.len(), b.funcs.len());
        for (fa, fb) in a.funcs.iter().zip(&b.funcs) {
            assert_eq!(fa.code, fb.code);
            assert_eq!(fa.code_static, fb.code_static);
            assert_eq!(fa.code_unopt, fb.code_unopt);
            assert_eq!(fa.nparams, fb.nparams);
            assert_eq!(fa.nlocals, fb.nlocals);
            assert_eq!(fa.has_result, fb.has_result);
            assert_eq!(fa.type_id, fb.type_id);
            assert_eq!(fa.name, fb.name);
        }
        assert_eq!(a.host_funcs, b.host_funcs);
        assert_eq!(a.globals, b.globals);
        assert_eq!(
            a.memory.map(|m| (m.min_pages, m.max_pages)),
            b.memory.map(|m| (m.min_pages, m.max_pages))
        );
        assert_eq!(a.data, b.data);
        assert_eq!(a.template.image(), b.template.image());
        assert_eq!(a.table, b.table);
        assert_eq!(a.exports, b.exports);
        assert_eq!(a.start, b.start);
        assert_eq!(a.analysis.funcs, b.analysis.funcs);
        assert_eq!(a.analysis.stack_bound, b.analysis.stack_bound);
        assert_eq!(a.analysis.diagnostics, b.analysis.diagnostics);
        assert_eq!(a.analysis.mem_sites, b.analysis.mem_sites);
        assert_eq!(a.analysis.elided_sites, b.analysis.elided_sites);
        assert_eq!(a.analysis.cost, b.analysis.cost);
        assert_eq!(a.analysis.effects, b.analysis.effects);
        assert_eq!(a.analysis.opt, b.analysis.opt);
    }

    #[test]
    fn roundtrip_preserves_module_and_certificates() {
        let m = sample_module();
        let bytes = encode(&m);
        let back = decode(&bytes).expect("decode");
        assert_modules_equal(&m, &back);
        // The carried optimizer certificate must still validate on the
        // decoded module — this is the ingest path's trust anchor.
        crate::analysis::opt::validate(&back).expect("certificate validates after roundtrip");
    }

    #[test]
    fn encoding_is_deterministic() {
        let m = sample_module();
        assert_eq!(encode(&m), encode(&m));
    }

    #[test]
    fn decoded_module_executes_identically() {
        use crate::{EngineConfig, Instance, NullHost, StepResult, Value};
        use std::sync::Arc;

        let m = sample_module();
        let back = decode(&encode(&m)).unwrap();
        let run = |m: CompiledModule| {
            let mut inst = Instance::new(Arc::new(m), EngineConfig::default()).unwrap();
            inst.invoke_export("main", &[Value::I32(3)]).unwrap();
            match inst.run(&mut NullHost, u64::MAX) {
                StepResult::Complete(v) => (v, inst.fuel_used()),
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(run(m), run(back));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let m = sample_module();
        let mut bytes = encode(&m);
        bytes[0] = b'X';
        assert_eq!(decode(&bytes).err(), Some(ArtifactError::BadMagic));

        let mut bytes = encode(&m);
        bytes[4] = 0xff;
        assert!(matches!(decode(&bytes), Err(ArtifactError::BadVersion(_))));
    }

    #[test]
    fn rejects_corruption_everywhere_in_payload() {
        let m = sample_module();
        let good = encode(&m);
        // Flip one byte at a spread of payload positions: the checksum must
        // catch every one of them before any structure is trusted.
        let step = (good.len() - 16).max(1) / 23 + 1;
        for pos in (16..good.len()).step_by(step) {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(decode(&bad), Err(ArtifactError::ChecksumMismatch { .. })),
                "corruption at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn rejects_truncation() {
        let m = sample_module();
        let good = encode(&m);
        for keep in [0, 3, 15, 16, good.len() / 2, good.len() - 1] {
            assert!(decode(&good[..keep]).is_err(), "truncated at {keep}");
        }
    }

    #[test]
    fn tampered_certificate_fails_validation_after_checksum_fixup() {
        // An attacker who also fixes up the checksum can deliver a
        // structurally valid artifact with a forged claim set; the ingest
        // path's validate_opt re-proof is the layer that catches that.
        let m = sample_module();
        let Some(optr) = &m.analysis.opt else {
            panic!("optimizer report expected");
        };
        if optr.funcs.iter().all(|f| f.claims.is_empty()) {
            // No claims to forge on this body; nothing to test.
            return;
        }
        let mut back = decode(&encode(&m)).unwrap();
        // Forge: point every claim at pc 0 with an absurd constant bound.
        let forged = back.analysis.opt.as_mut().unwrap();
        for f in &mut forged.funcs {
            for c in &mut f.claims {
                c.base = ClaimBase::Const { end: u64::MAX };
            }
        }
        assert!(crate::analysis::opt::validate(&back).is_err());
    }
}
