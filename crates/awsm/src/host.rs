//! The host-call interface: how sandboxed guests reach the runtime's
//! POSIX-ish layer (the paper's stdin/stdout + asynchronous I/O surface).

use crate::code::HostImport;
use crate::memory::LinearMemory;
use crate::value::Trap;

/// Outcome of one host call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HostOutcome {
    /// The call completed and returned a value (slot-encoded).
    Value(u64),
    /// The call completed with no return value.
    Unit,
    /// The call cannot complete yet (asynchronous I/O in flight). The
    /// sandbox blocks; the engine re-issues the same call with the same
    /// arguments when resumed.
    Pending,
    /// The call failed; the sandbox traps.
    Trap(Trap),
}

/// Implemented by the embedding runtime to service guest imports.
///
/// The engine resolves import *names* to indices at translation time; `idx`
/// is the position within [`crate::CompiledModule::host_funcs`], and `import`
/// is the corresponding metadata, so implementations can dispatch either way.
///
/// Blocking semantics: returning [`HostOutcome::Pending`] parks the sandbox
/// (the engine reports [`crate::StepResult::Blocked`]); each subsequent
/// `run` re-invokes the call with identical arguments until it completes.
/// Implementations must therefore be idempotent across `Pending` returns.
pub trait Host {
    /// Service one guest import call.
    fn call(
        &mut self,
        idx: u32,
        import: &HostImport,
        args: &[u64],
        memory: &mut LinearMemory,
    ) -> HostOutcome;
}

/// A host that rejects every import call; suitable for pure-compute modules
/// (e.g. the PolyBench kernels).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHost;

impl Host for NullHost {
    fn call(
        &mut self,
        _idx: u32,
        _import: &HostImport,
        _args: &[u64],
        _memory: &mut LinearMemory,
    ) -> HostOutcome {
        HostOutcome::Trap(Trap::Unreachable)
    }
}
