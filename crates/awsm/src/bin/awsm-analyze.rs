//! `awsm-analyze`: run the load-time static analyzer over `.wasm` modules
//! and print the report — stack bounds, bounds-check elision counts, and
//! lints — without instantiating anything.
//!
//! ```text
//! awsm-analyze [--deny-warnings] [--max-stack-bytes N] [--tier aot-opt|aot-naive] <module.wasm>...
//! ```
//!
//! Exit status is non-zero when any module carries an error-severity
//! diagnostic, exceeds the stack budget (if one was given), or — under
//! `--deny-warnings` — produces any warning at all.

use awsm::{AnalysisReport, Severity, Tier};
use std::process::ExitCode;

struct Options {
    deny_warnings: bool,
    max_stack_bytes: Option<u64>,
    tier: Tier,
    paths: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: awsm-analyze [--deny-warnings] [--max-stack-bytes N] \
         [--tier aot-opt|aot-naive] <module.wasm>..."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        deny_warnings: false,
        max_stack_bytes: None,
        tier: Tier::Optimized,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--max-stack-bytes" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                opts.max_stack_bytes = Some(v);
            }
            "--tier" => match args.next().as_deref() {
                Some("aot-opt") => opts.tier = Tier::Optimized,
                Some("aot-naive") => opts.tier = Tier::Naive,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => opts.paths.push(a),
        }
    }
    if opts.paths.is_empty() {
        usage();
    }
    opts
}

/// Whether the report fails under the given policy, with any extra
/// diagnostics the policy adds (the stack-budget check).
fn verdict(report: &AnalysisReport, opts: &Options) -> (bool, Vec<String>) {
    let mut extra = Vec::new();
    let mut failed = report.has_errors();
    if let Some(budget) = opts.max_stack_bytes {
        if let Some(d) = report.check_stack(budget) {
            extra.push(format!("  {d}"));
            failed = true;
        }
    }
    if opts.deny_warnings && report.with_severity(Severity::Warn).next().is_some() {
        failed = true;
    }
    (failed, extra)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut any_failed = false;
    for path in &opts.paths {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                any_failed = true;
                continue;
            }
        };
        let module = match sledge_wasm::decode::decode_module(&bytes) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{path}: decode error: {e}");
                any_failed = true;
                continue;
            }
        };
        let compiled = match awsm::translate(&module, opts.tier) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: translation error: {e}");
                any_failed = true;
                continue;
            }
        };
        let name = compiled.name.as_deref().unwrap_or(path);
        print!("{}", compiled.analysis.render(name));
        let (failed, extra) = verdict(&compiled.analysis, &opts);
        for line in extra {
            println!("{line}");
        }
        if failed {
            any_failed = true;
        }
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
