//! `awsm-analyze`: run the load-time static analyzer over `.wasm` modules
//! and print the report — stack bounds, bounds-check elision counts,
//! per-function cost tables with preemption-latency certificates, and
//! lints — without instantiating anything.
//!
//! ```text
//! awsm-analyze [--deny-warnings] [--max-stack-bytes N] [--max-check-gap N]
//!              [--effects] [--allow-hostcall NAME]... [--json] [--no-opt]
//!              [--tier aot-opt|aot-naive] <module.wasm>...
//! ```
//!
//! `--max-check-gap N` both *instruments* (the cost pass inserts extra
//! budget checks until every check-free path costs at most `N` units, so
//! the certificate holds by construction) and *verifies* (the verdict
//! fails if the certified gap still exceeds `N`, which only happens when
//! a single opcode outweighs the budget, or the certificate is missing).
//!
//! `--effects` appends the effect certificate to the human-readable
//! report: per-function reachable host-call sets and static write
//! footprints. `--allow-hostcall NAME` (repeatable; `NAME` is either a
//! bare field name or qualified `module::name`) enforces a deny-by-default
//! capability policy against *every* exported function — any export
//! reaching an ungranted host call fails the module, exactly as the
//! runtime's registry gate would.
//!
//! `--json` emits one JSON object per module on stdout instead of the
//! human-readable report; diagnostics still go to stderr. The object
//! always carries an `"effects"` field (the full certificate, or `null`
//! when analysis could not produce one) and an `"opt"` field (the
//! optimizer's summary and translation-validation verdict, or `null`
//! when the optimizer was off).
//!
//! `--no-opt` disables the translate-time optimizer (overriding the
//! `SLEDGE_OPT` environment default), producing the same instrumented
//! bodies as releases before the optimizer existed.
//!
//! Exit status is non-zero when any module carries an error-severity
//! diagnostic, exceeds the stack budget (if one was given), exceeds the
//! check-gap budget (if one was given), violates the capability policy
//! (if one was given), fails optimizer translation validation, or —
//! under `--deny-warnings` — produces any warning at all.

use awsm::{AnalysisReport, Severity, StackBound, Tier, TranslateOptions, WriteFootprint};
use std::fmt::Write as _;
use std::process::ExitCode;

struct Options {
    deny_warnings: bool,
    max_stack_bytes: Option<u64>,
    max_check_gap: Option<u32>,
    effects: bool,
    allow_hostcalls: Vec<String>,
    json: bool,
    no_opt: bool,
    tier: Tier,
    paths: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: awsm-analyze [--deny-warnings] [--max-stack-bytes N] \
         [--max-check-gap N] [--effects] [--allow-hostcall NAME]... [--json] \
         [--no-opt] [--tier aot-opt|aot-naive] <module.wasm>..."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        deny_warnings: false,
        max_stack_bytes: None,
        max_check_gap: None,
        effects: false,
        allow_hostcalls: Vec::new(),
        json: false,
        no_opt: false,
        tier: Tier::Optimized,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--effects" => opts.effects = true,
            "--allow-hostcall" => {
                let Some(v) = args.next().filter(|v| !v.is_empty()) else {
                    usage();
                };
                opts.allow_hostcalls.push(v);
            }
            "--json" => opts.json = true,
            "--no-opt" => opts.no_opt = true,
            "--max-stack-bytes" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                opts.max_stack_bytes = Some(v);
            }
            "--max-check-gap" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                opts.max_check_gap = Some(v);
            }
            "--tier" => match args.next().as_deref() {
                Some("aot-opt") => opts.tier = Tier::Optimized,
                Some("aot-naive") => opts.tier = Tier::Naive,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => opts.paths.push(a),
        }
    }
    if opts.paths.is_empty() {
        usage();
    }
    opts
}

/// Whether the report fails under the given policy, with any extra
/// diagnostics the policy adds (the stack-budget, check-gap, and
/// capability checks).
fn verdict(compiled: &awsm::CompiledModule, opts: &Options) -> (bool, Vec<String>) {
    let report = &compiled.analysis;
    let mut extra = Vec::new();
    let mut failed = report.has_errors();
    if let Some(budget) = opts.max_stack_bytes {
        if let Some(d) = report.check_stack(budget) {
            extra.push(format!("  {d}"));
            failed = true;
        }
    }
    if let Some(budget) = opts.max_check_gap {
        if let Some(d) = report.check_gap(budget) {
            extra.push(format!("  {d}"));
            failed = true;
        }
    }
    // Deny-by-default capability policy: every export is an entry point a
    // deployment could name, so each one must stay within the grant set —
    // the same closure the registry enforces per configured entry.
    if !opts.allow_hostcalls.is_empty() {
        let mut exports: Vec<(&String, &u32)> = compiled.exports.iter().collect();
        exports.sort();
        let mut warned = false;
        for (name, &idx) in exports {
            if let Some(d) = report.check_hostcalls(idx, &opts.allow_hostcalls) {
                extra.push(format!("  export {name:?}: {d}"));
                failed = true;
            } else if let Some(d) = report.unused_grants(idx, &opts.allow_hostcalls) {
                extra.push(format!("  export {name:?}: {d}"));
                warned = true;
            }
        }
        if opts.deny_warnings && warned {
            failed = true;
        }
    }
    if opts.deny_warnings && report.with_severity(Severity::Warn).next().is_some() {
        failed = true;
    }
    (failed, extra)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One JSON object per module: identity, stack bound, cost certificate
/// (module-wide and per function), optimizer summary with its
/// translation-validation verdict, diagnostics count, and the verdict.
fn render_json(
    name: &str,
    report: &AnalysisReport,
    opts: &Options,
    opt_valid: Option<bool>,
    failed: bool,
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"module\":{}", json_str(name));
    match &report.stack_bound {
        StackBound::Bounded(b) => {
            let _ = write!(out, ",\"stack_bound\":{b}");
        }
        StackBound::Unbounded { .. } => out.push_str(",\"stack_bound\":null"),
    }
    let _ = write!(
        out,
        ",\"mem_sites\":{},\"elided_sites\":{},\"errors\":{},\"warnings\":{}",
        report.mem_sites,
        report.elided_sites,
        report.with_severity(Severity::Error).count(),
        report.with_severity(Severity::Warn).count(),
    );
    match &report.cost {
        Some(cost) => {
            let _ = write!(
                out,
                ",\"cost\":{{\"max_check_gap\":{},\"max_gap\":{},\"checks\":{},\"splits\":{}",
                cost.max_check_gap, cost.max_gap, cost.checks, cost.splits
            );
            if let Some(budget) = opts.max_check_gap {
                let _ = write!(out, ",\"within_budget\":{}", cost.within(budget));
            }
            out.push_str(",\"funcs\":[");
            for (i, f) in cost.funcs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let name = f.name.as_deref().unwrap_or("");
                let _ = write!(
                    out,
                    "{{\"name\":{},\"blocks\":{},\"checks\":{},\"splits\":{},\
                     \"total_cost\":{},\"max_gap\":{},\"max_loop_gap\":{},\"max_host_gap\":{}}}",
                    json_str(name),
                    f.blocks,
                    f.checks,
                    f.splits,
                    f.total_cost,
                    f.max_gap,
                    f.max_loop_gap,
                    f.max_host_gap
                );
            }
            out.push_str("]}");
        }
        None => out.push_str(",\"cost\":null"),
    }
    // The effect certificate rides along unconditionally: downstream policy
    // tooling keys off `"effects":null` to detect a module the analyzer
    // could not certify.
    match &report.effects {
        Some(eff) => {
            out.push_str(",\"effects\":{\"imports\":[");
            for (i, name) in eff.imports.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(name));
            }
            out.push_str("],\"funcs\":[");
            for (i, f) in eff.funcs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":{},\"hostcalls\":[",
                    json_str(f.name.as_deref().unwrap_or(""))
                );
                for (j, &h) in f.hostcalls.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let qname = eff.imports.get(h as usize).map(String::as_str);
                    out.push_str(&json_str(qname.unwrap_or("?")));
                }
                out.push_str("],\"footprint\":");
                match f.footprint {
                    WriteFootprint::Empty => out.push_str("\"empty\""),
                    WriteFootprint::Span { lo, hi } => {
                        let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi}}}");
                    }
                    WriteFootprint::Unbounded => out.push_str("\"unbounded\""),
                }
                let _ = write!(
                    out,
                    ",\"may_grow\":{},\"writes_globals\":{},\"pure\":{}}}",
                    f.may_grow, f.writes_globals, f.pure
                );
            }
            out.push_str("]}");
        }
        None => out.push_str(",\"effects\":null"),
    }
    // The optimizer summary rides along whenever the optimizer ran;
    // `"opt":null` marks an opt-off translation. `"valid"` is the
    // independent translation-validation pass's verdict on this module.
    match &report.opt {
        Some(o) => {
            let _ = write!(
                out,
                ",\"opt\":{{\"ops_before\":{},\"ops_after\":{},\"folded\":{},\
                 \"branches_simplified\":{},\"dce_ops\":{},\"fused\":{},\
                 \"checks_elided\":{},\"fuel_sites_merged\":{},\"valid\":{}}}",
                o.ops_before,
                o.ops_after,
                o.folded,
                o.branches_simplified,
                o.dce_ops,
                o.fused,
                o.checks_elided,
                o.fuel_sites_merged,
                opt_valid.unwrap_or(false),
            );
        }
        None => out.push_str(",\"opt\":null"),
    }
    let _ = write!(out, ",\"failed\":{failed}}}");
    out
}

/// Human-readable effect-certificate section (printed under `--effects`).
fn render_effects(report: &AnalysisReport) -> String {
    let mut out = String::from("effects:\n");
    let Some(eff) = &report.effects else {
        out.push_str("  (no certificate)\n");
        return out;
    };
    if eff.imports.is_empty() {
        out.push_str("  imports: none\n");
    } else {
        let _ = writeln!(out, "  imports: {}", eff.imports.join(", "));
    }
    for (i, f) in eff.funcs.iter().enumerate() {
        let name = f.name.clone().unwrap_or_else(|| format!("func[{i}]"));
        let hostcalls: Vec<&str> = f
            .hostcalls
            .iter()
            .filter_map(|&h| eff.imports.get(h as usize).map(String::as_str))
            .collect();
        let _ = write!(
            out,
            "  {name}: hostcalls [{}], footprint {}",
            hostcalls.join(", "),
            f.footprint
        );
        if f.may_grow {
            out.push_str(", may-grow");
        }
        if f.writes_globals {
            out.push_str(", writes-globals");
        }
        if f.pure {
            out.push_str(", pure");
        }
        out.push('\n');
    }
    out
}

fn main() -> ExitCode {
    let opts = parse_args();
    let translate_opts = TranslateOptions {
        max_check_gap: opts.max_check_gap.unwrap_or(awsm::DEFAULT_MAX_CHECK_GAP),
        // `--no-opt` forces the optimizer off; otherwise the translator's
        // default applies (on, unless SLEDGE_OPT=0).
        optimize: !opts.no_opt && TranslateOptions::default().optimize,
    };
    let mut any_failed = false;
    for path in &opts.paths {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                any_failed = true;
                continue;
            }
        };
        let module = match sledge_wasm::decode::decode_module(&bytes) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{path}: decode error: {e}");
                any_failed = true;
                continue;
            }
        };
        let compiled = match awsm::translate_with(&module, opts.tier, translate_opts) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: translation error: {e}");
                any_failed = true;
                continue;
            }
        };
        let name = compiled.name.as_deref().unwrap_or(path);
        let (mut failed, mut extra) = verdict(&compiled, &opts);
        // Re-run translation validation independently of the translator's
        // own debug assertion; an invalid certificate fails the module.
        let opt_cert = compiled
            .analysis
            .opt
            .as_ref()
            .map(|_| awsm::validate_opt(&compiled));
        match &opt_cert {
            Some(Err(e)) => {
                extra.push(format!("  optimization certificate INVALID: {e}"));
                failed = true;
            }
            Some(Ok(())) | None => {}
        }
        let opt_valid = opt_cert.as_ref().map(|r| r.is_ok());
        if opts.json {
            println!(
                "{}",
                render_json(name, &compiled.analysis, &opts, opt_valid, failed)
            );
            for line in &extra {
                eprintln!("{}", line.trim_start());
            }
        } else {
            print!("{}", compiled.analysis.render(name));
            if opts.effects {
                print!("{}", render_effects(&compiled.analysis));
            }
            for line in extra {
                println!("{line}");
            }
        }
        if failed {
            any_failed = true;
        }
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
