//! Sandbox linear memory with configurable bounds-check strategies (§3.2 of
//! the paper).
//!
//! The backing buffer is always a power-of-two capacity plus an 8-byte red
//! zone, so the mask-based strategies can translate any 32-bit guest address
//! into a host-safe index with a single `and` — the software analogue of the
//! paper's "4 GiB aligned virtual span" trick.

use crate::value::Trap;
use sledge_wasm::PAGE_SIZE;
use std::sync::Arc;

/// How loads and stores are bounds-checked. See DESIGN.md §3/§4 for the
/// mapping onto the paper's configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundsStrategy {
    /// No explicit check (sandbox intentionally broken; overhead studies
    /// only). Accesses are masked so the *host* stays memory-safe, but guest
    /// out-of-bounds accesses silently wrap instead of trapping.
    None,
    /// Explicit compare-and-branch on every access (`…-bounds-chk`).
    Software,
    /// Software check plus emulated Intel MPX bounds-register traffic
    /// (`…-mpx`); reproduces MPX being *slower* than plain software checks.
    MpxEmulated,
    /// Virtual-memory-style elision: single mask, no branch. The default,
    /// corresponding to "Sledge+aWsm". Out-of-bounds accesses beyond the
    /// committed region wrap within the reserved span rather than faulting
    /// (documented substitution).
    #[default]
    GuardRegion,
    /// Static elision: accesses the load-time analyzer proved in-bounds run
    /// unchecked; every other access gets the full software check. Same
    /// trapping semantics as [`BoundsStrategy::Software`].
    Static,
}

impl BoundsStrategy {
    /// Short human-readable name used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            BoundsStrategy::None => "no-checks",
            BoundsStrategy::Software => "bounds-chk",
            BoundsStrategy::MpxEmulated => "mpx",
            BoundsStrategy::GuardRegion => "vm-guard",
            BoundsStrategy::Static => "static-elide",
        }
    }
}

/// Error constructing a [`LinearMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// `min_pages` exceeds `max_pages`: the memory could never grow to its
    /// own minimum.
    MinExceedsMax { min_pages: u32, max_pages: u32 },
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::MinExceedsMax {
                min_pages,
                max_pages,
            } => write!(
                f,
                "memory min_pages ({min_pages}) exceeds max_pages ({max_pages})"
            ),
        }
    }
}

impl std::error::Error for MemoryError {}

/// A precomputed image of a module's initialized linear memory: every data
/// segment replayed, in order, into one flat byte span starting at address
/// zero. Built once at translation and shared by all of the module's
/// instances; it is both the fast path for cold instantiation and the
/// restore source for [`LinearMemory::reset_from`] when a warm sandbox is
/// recycled instead of torn down.
#[derive(Debug, Clone)]
pub struct MemoryTemplate {
    image: Arc<[u8]>,
}

impl Default for MemoryTemplate {
    fn default() -> Self {
        MemoryTemplate {
            image: Vec::new().into(),
        }
    }
}

impl MemoryTemplate {
    /// Precompute the initialized-memory image from a module's data
    /// segments (`(offset, bytes)` pairs, replayed in order so overlapping
    /// segments keep their last-writer-wins semantics).
    pub fn build(data: &[(u32, Arc<[u8]>)]) -> Self {
        let end = data
            .iter()
            .map(|(off, bytes)| *off as usize + bytes.len())
            .max()
            .unwrap_or(0);
        let mut image = vec![0u8; end];
        for (off, bytes) in data {
            image[*off as usize..*off as usize + bytes.len()].copy_from_slice(bytes);
        }
        MemoryTemplate {
            image: image.into(),
        }
    }

    /// The flat initialized span (address 0 up to the end of the highest
    /// data segment).
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Length of the initialized span in bytes.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// Whether the module initializes no memory at all.
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }
}

const RED_ZONE: usize = 8;
/// Number of entries in the emulated MPX bounds-table. Sized like a real
/// MPX bound table (large, cache-unfriendly): the cited MPX analysis
/// attributes most of MPX's overhead to bound-table cache misses, so the
/// emulation must actually generate that cache pressure (512 KiB here).
const MPX_SHADOW: usize = 1 << 16;

/// A sandbox's linear memory.
#[derive(Debug)]
pub struct LinearMemory {
    data: Vec<u8>,
    pages: u32,
    /// Initial page count, the size the memory snaps back to on
    /// [`LinearMemory::reset_from`].
    min_pages: u32,
    max_pages: u32,
    /// Capacity mask (`capacity - 1`); capacity is a power of two.
    mask: usize,
    /// Committed byte limit = `pages * PAGE_SIZE`.
    limit: usize,
    /// High-water mark of dirtied *host* indices: one past the highest byte
    /// any store (guest or host-side) has touched since allocation or the
    /// last reset. Reset only has to re-zero `template_len..hwm` instead of
    /// the whole buffer.
    hwm: usize,
    /// Lowest byte index any *host-side* [`Self::write_bytes`] has touched
    /// since allocation or the last reset (`usize::MAX` when none). Guest
    /// stores are covered by the module's static write-footprint
    /// certificate; host writes (request payloads) are the only writer that
    /// certificate cannot see, so the footprint-based partial resets guard
    /// on this mark. Guest store hot paths never touch it.
    host_lo: usize,
    strategy: BoundsStrategy,
    /// Emulated MPX bounds table (read on every access in MPX mode).
    /// Allocated lazily so non-MPX sandboxes don't pay for it.
    mpx_shadow: Box<[u64]>,
}

fn capacity_for(limit: usize) -> usize {
    limit.next_power_of_two().max(PAGE_SIZE)
}

impl LinearMemory {
    /// Allocate a memory of `min_pages`, growable to `max_pages`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::MinExceedsMax`] when `min_pages > max_pages`.
    pub fn new(
        min_pages: u32,
        max_pages: u32,
        strategy: BoundsStrategy,
    ) -> Result<Self, MemoryError> {
        if min_pages > max_pages {
            return Err(MemoryError::MinExceedsMax {
                min_pages,
                max_pages,
            });
        }
        let limit = min_pages as usize * PAGE_SIZE;
        let cap = capacity_for(limit);
        Ok(LinearMemory {
            data: vec![0u8; cap + RED_ZONE],
            pages: min_pages,
            min_pages,
            max_pages,
            mask: cap - 1,
            limit,
            hwm: 0,
            host_lo: usize::MAX,
            strategy,
            mpx_shadow: if strategy == BoundsStrategy::MpxEmulated {
                vec![u64::MAX; MPX_SHADOW].into_boxed_slice()
            } else {
                Box::default()
            },
        })
    }

    /// Current size in pages.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Committed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.limit
    }

    /// The configured bounds strategy.
    pub fn strategy(&self) -> BoundsStrategy {
        self.strategy
    }

    /// Grow by `delta` pages. Returns the previous page count, or `-1` if
    /// the maximum would be exceeded.
    pub fn grow(&mut self, delta: u32) -> i32 {
        let new_pages = match self.pages.checked_add(delta) {
            Some(p) if p <= self.max_pages && p <= 65536 => p,
            _ => return -1,
        };
        let old = self.pages;
        self.pages = new_pages;
        self.limit = new_pages as usize * PAGE_SIZE;
        let cap = capacity_for(self.limit);
        if cap + RED_ZONE > self.data.len() {
            self.data.resize(cap + RED_ZONE, 0);
        }
        self.mask = cap - 1;
        old as i32
    }

    /// Resolve a guest effective address (`addr + offset`) for an access of
    /// `len` bytes under bounds policy `B`, yielding a host index whose
    /// `len`-byte access is in-bounds for the backing buffer.
    #[inline(always)]
    pub(crate) fn resolve<B: Bounds>(
        &self,
        addr: u32,
        offset: u32,
        len: u32,
    ) -> Result<usize, Trap> {
        B::resolve(self, addr, offset, len)
    }

    /// Load `N` bytes.
    #[inline(always)]
    pub(crate) fn load<B: Bounds, const N: usize>(
        &self,
        addr: u32,
        offset: u32,
    ) -> Result<[u8; N], Trap> {
        let i = self.resolve::<B>(addr, offset, N as u32)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[i..i + N]);
        Ok(out)
    }

    /// Store `N` bytes.
    #[inline(always)]
    pub(crate) fn store<B: Bounds, const N: usize>(
        &mut self,
        addr: u32,
        offset: u32,
        bytes: [u8; N],
    ) -> Result<(), Trap> {
        let i = self.resolve::<B>(addr, offset, N as u32)?;
        self.data[i..i + N].copy_from_slice(&bytes);
        // Track the *resolved* host index: mask-based strategies can wrap an
        // out-of-bounds guest address anywhere in the allocation, and those
        // bytes must be re-zeroed on reset too.
        self.hwm = self.hwm.max(i + N);
        Ok(())
    }

    /// Load `N` bytes at a site the static analyzer proved in-bounds: no
    /// strategy dispatch, no compare-and-branch. The effective address is
    /// statically `≤ min_pages * PAGE_SIZE`, which the committed region
    /// never shrinks below; the debug assertion documents (and, in debug
    /// builds, enforces) that invariant.
    #[inline(always)]
    pub(crate) fn load_nc<const N: usize>(&self, addr: u32, offset: u32) -> [u8; N] {
        let i = addr as usize + offset as usize;
        debug_assert!(
            i + N <= self.limit,
            "statically-proven access out of bounds"
        );
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[i..i + N]);
        out
    }

    /// Store `N` bytes at a proven-in-bounds site (see [`Self::load_nc`]).
    #[inline(always)]
    pub(crate) fn store_nc<const N: usize>(&mut self, addr: u32, offset: u32, bytes: [u8; N]) {
        let i = addr as usize + offset as usize;
        debug_assert!(
            i + N <= self.limit,
            "statically-proven access out of bounds"
        );
        self.data[i..i + N].copy_from_slice(&bytes);
        self.hwm = self.hwm.max(i + N);
    }

    /// Host-side checked read (always software-checked; used by the runtime
    /// to extract responses etc.).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfBounds`] if the range exceeds committed memory.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Trap> {
        let start = addr as usize;
        let end = start
            .checked_add(len as usize)
            .filter(|&e| e <= self.limit)
            .ok_or(Trap::OutOfBounds)?;
        Ok(&self.data[start..end])
    }

    /// Host-side checked write into guest memory.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfBounds`] if the range exceeds committed memory.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Trap> {
        let start = addr as usize;
        let end = start
            .checked_add(bytes.len())
            .filter(|&e| e <= self.limit)
            .ok_or(Trap::OutOfBounds)?;
        self.data[start..end].copy_from_slice(bytes);
        self.hwm = self.hwm.max(end);
        if !bytes.is_empty() {
            self.host_lo = self.host_lo.min(start);
        }
        Ok(())
    }

    /// Forget the host-write low mark. Called once right after instantiation
    /// writes the template image through [`Self::write_bytes`]: the template
    /// is by definition part of the pristine state, so it must not count as
    /// an uncertified host write.
    pub(crate) fn clear_host_write_mark(&mut self) {
        self.host_lo = usize::MAX;
    }

    /// One past the highest host byte index any store has touched since
    /// allocation or the last [`Self::reset_from`].
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Restore this memory to the pristine post-instantiation state described
    /// by `image` (see [`MemoryTemplate`]) without reallocating: zero only the
    /// dirtied span beyond the template, then memcpy the template over the
    /// front. Pages snap back to `min_pages`; a buffer enlarged by
    /// `memory.grow` keeps its larger allocation (the shrunk mask confines
    /// all subsequent accesses, so correctness is unaffected).
    pub(crate) fn reset_from(&mut self, image: &[u8]) {
        let dirty_end = self.hwm.min(self.data.len());
        if dirty_end > image.len() {
            self.data[image.len()..dirty_end].fill(0);
        }
        self.data[..image.len()].copy_from_slice(image);
        self.pages = self.min_pages;
        self.limit = self.min_pages as usize * PAGE_SIZE;
        self.mask = capacity_for(self.limit) - 1;
        self.hwm = image.len();
        self.host_lo = usize::MAX;
    }

    /// Elide the reset entirely: the memory is *already* pristine. Sound only
    /// when the entry point's effect certificate proved it writes nothing
    /// (`Pure`), and the runtime state confirms nothing uncertified happened:
    /// no `memory.grow` took effect, no host-side write landed, and no store
    /// raised the high-water mark past the template span. Returns `false`
    /// (nothing elided, caller must fall back to [`Self::reset_from`]) if any
    /// guard fails.
    pub(crate) fn reset_elided(&mut self, image: &[u8]) -> bool {
        self.pages == self.min_pages && self.host_lo == usize::MAX && self.hwm <= image.len()
    }

    /// Reset using a static write-footprint certificate: every guest store
    /// this instance could have executed lies in `[lo, ∞)`, so the span
    /// `[template_len, lo)` is provably still zero and needs no re-zeroing.
    /// Only the certified span's tail (`[max(lo, template_len), hwm)`) is
    /// zeroed before the template memcpy. Guards: pages must not have grown
    /// (the certificate's wrap-freedom argument assumes the minimum-size
    /// mask) and no host-side write may have landed below `lo` (host writes
    /// are invisible to the certificate). Returns `false` without touching
    /// memory if a guard fails.
    pub(crate) fn reset_from_span(&mut self, image: &[u8], lo: usize) -> bool {
        if self.pages != self.min_pages || self.host_lo < lo {
            return false;
        }
        let dirty_start = lo.max(image.len());
        let dirty_end = self.hwm.min(self.data.len());
        if dirty_end > dirty_start {
            self.data[dirty_start..dirty_end].fill(0);
        }
        self.data[..image.len()].copy_from_slice(image);
        self.hwm = image.len();
        self.host_lo = usize::MAX;
        true
    }

    /// Approximate resident size of this memory in bytes (for footprint
    /// reporting).
    pub fn footprint_bytes(&self) -> usize {
        self.data.len()
    }
}

/// A bounds-checking policy, monomorphized into the interpreter hot loop.
pub(crate) trait Bounds {
    fn resolve(mem: &LinearMemory, addr: u32, offset: u32, len: u32) -> Result<usize, Trap>;
}

/// Mask-only: used by both `None` and `GuardRegion` strategies.
pub(crate) struct MaskBounds;
impl Bounds for MaskBounds {
    #[inline(always)]
    fn resolve(mem: &LinearMemory, addr: u32, offset: u32, _len: u32) -> Result<usize, Trap> {
        Ok((addr as usize).wrapping_add(offset as usize) & mem.mask)
    }
}

/// Explicit compare-and-branch.
pub(crate) struct SoftwareBounds;
impl Bounds for SoftwareBounds {
    #[inline(always)]
    fn resolve(mem: &LinearMemory, addr: u32, offset: u32, len: u32) -> Result<usize, Trap> {
        let ea = addr as u64 + offset as u64;
        if ea + len as u64 > mem.limit as u64 {
            return Err(Trap::OutOfBounds);
        }
        Ok(ea as usize)
    }
}

/// Software check plus emulated MPX bounds-table traffic (bndldx + bndcl +
/// bndcu): a dependent volatile load from a shadow table and two compares,
/// reproducing the cost structure measured in the MPX analysis the paper
/// cites.
pub(crate) struct MpxBounds;
impl Bounds for MpxBounds {
    #[inline(always)]
    fn resolve(mem: &LinearMemory, addr: u32, offset: u32, len: u32) -> Result<usize, Trap> {
        let ea = addr as u64 + offset as u64;
        // bndldx is a two-level table walk (bound directory → bound table):
        // emulate with two *dependent* loads into a bound-table-sized
        // region. The MPX analysis the paper cites (Oleksenko et al.)
        // attributes the bulk of MPX's overhead to exactly this table's
        // cache pressure.
        debug_assert_eq!(mem.mpx_shadow.len(), MPX_SHADOW);
        let slot1 = (ea.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & (MPX_SHADOW - 1);
        // SAFETY: slots are masked into the shadow array, which is allocated
        // at full size whenever the MPX strategy is active.
        let dir = unsafe { std::ptr::read_volatile(mem.mpx_shadow.as_ptr().add(slot1)) };
        let slot2 = (dir ^ ea) as usize & (MPX_SHADOW - 1);
        let upper = unsafe { std::ptr::read_volatile(mem.mpx_shadow.as_ptr().add(slot2)) };
        let limit = (mem.limit as u64).min(upper | dir);
        // bndcl + bndcu: lower and upper bound checks.
        if ea + len as u64 > limit {
            return Err(Trap::OutOfBounds);
        }
        Ok(ea as usize)
    }
}

/// Strategy dispatched at access time via a runtime match — used by the
/// naive execution tier, modelling engines that do not specialize their
/// sandboxing code.
pub(crate) struct DynBounds;
impl Bounds for DynBounds {
    #[inline(always)]
    fn resolve(mem: &LinearMemory, addr: u32, offset: u32, len: u32) -> Result<usize, Trap> {
        match mem.strategy {
            BoundsStrategy::None | BoundsStrategy::GuardRegion => {
                MaskBounds::resolve(mem, addr, offset, len)
            }
            BoundsStrategy::Software | BoundsStrategy::Static => {
                SoftwareBounds::resolve(mem, addr, offset, len)
            }
            BoundsStrategy::MpxEmulated => MpxBounds::resolve(mem, addr, offset, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_bounds_trap_past_limit() {
        let m = LinearMemory::new(1, 4, BoundsStrategy::Software).unwrap();
        assert!(m.resolve::<SoftwareBounds>(65532, 0, 4).is_ok());
        assert_eq!(
            m.resolve::<SoftwareBounds>(65533, 0, 4),
            Err(Trap::OutOfBounds)
        );
        assert_eq!(
            m.resolve::<SoftwareBounds>(0, u32::MAX, 1),
            Err(Trap::OutOfBounds)
        );
    }

    #[test]
    fn mask_bounds_stay_in_allocation() {
        let m = LinearMemory::new(1, 4, BoundsStrategy::GuardRegion).unwrap();
        // Far out-of-bounds wraps but never escapes the buffer.
        let i = m.resolve::<MaskBounds>(u32::MAX, u32::MAX, 8).unwrap();
        assert!(i + 8 <= m.data.len());
    }

    #[test]
    fn mpx_checks_like_software() {
        let m = LinearMemory::new(1, 4, BoundsStrategy::MpxEmulated).unwrap();
        assert!(m.resolve::<MpxBounds>(100, 0, 8).is_ok());
        assert_eq!(m.resolve::<MpxBounds>(65536, 0, 1), Err(Trap::OutOfBounds));
    }

    #[test]
    fn grow_respects_max() {
        let mut m = LinearMemory::new(1, 3, BoundsStrategy::Software).unwrap();
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.pages(), 2);
        assert_eq!(m.grow(2), -1);
        assert_eq!(m.grow(1), 2);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.size_bytes(), 3 * PAGE_SIZE);
    }

    #[test]
    fn grow_preserves_contents_and_mask() {
        let mut m = LinearMemory::new(1, 64, BoundsStrategy::Software).unwrap();
        m.write_bytes(100, &[1, 2, 3]).unwrap();
        assert_eq!(m.grow(31), 1);
        assert_eq!(m.read_bytes(100, 3).unwrap(), &[1, 2, 3]);
        // New region readable and zeroed.
        assert_eq!(m.read_bytes(31 * PAGE_SIZE as u32, 4).unwrap(), &[0; 4]);
    }

    #[test]
    fn host_read_write_checked() {
        let mut m = LinearMemory::new(1, 1, BoundsStrategy::GuardRegion).unwrap();
        m.write_bytes(0, b"hello").unwrap();
        assert_eq!(m.read_bytes(0, 5).unwrap(), b"hello");
        assert!(m.write_bytes(65533, b"oops").is_err());
        assert!(m.read_bytes(65536, 1).is_err());
    }

    #[test]
    fn min_exceeding_max_is_rejected() {
        let err = LinearMemory::new(4, 2, BoundsStrategy::Software).unwrap_err();
        assert_eq!(
            err,
            MemoryError::MinExceedsMax {
                min_pages: 4,
                max_pages: 2
            }
        );
        assert!(err.to_string().contains("min_pages"));
    }

    #[test]
    fn unchecked_accessors_roundtrip() {
        let mut m = LinearMemory::new(1, 2, BoundsStrategy::Static).unwrap();
        m.store_nc::<4>(12, 4, 0xAABB_CCDDu32.to_le_bytes());
        assert_eq!(u32::from_le_bytes(m.load_nc::<4>(8, 8)), 0xAABB_CCDD);
    }

    #[test]
    fn template_replays_segments_in_order() {
        let t = MemoryTemplate::build(&[
            (4, Arc::from(&b"abcd"[..])),
            (6, Arc::from(&b"XY"[..])),
            (0, Arc::from(&b"hi"[..])),
        ]);
        assert_eq!(t.len(), 8);
        assert_eq!(t.image(), b"hi\0\0abXY");
        assert!(MemoryTemplate::default().is_empty());
    }

    #[test]
    fn stores_raise_high_water_mark() {
        let mut m = LinearMemory::new(1, 4, BoundsStrategy::Software).unwrap();
        assert_eq!(m.high_water_mark(), 0);
        m.store::<SoftwareBounds, 4>(100, 0, [1; 4]).unwrap();
        assert_eq!(m.high_water_mark(), 104);
        m.store_nc::<2>(10, 0, [2; 2]);
        assert_eq!(m.high_water_mark(), 104);
        m.write_bytes(200, &[3; 8]).unwrap();
        assert_eq!(m.high_water_mark(), 208);
    }

    #[test]
    fn masked_store_hwm_uses_resolved_index() {
        let mut m = LinearMemory::new(1, 4, BoundsStrategy::GuardRegion).unwrap();
        // Out-of-bounds guest address wraps under the mask; the dirty mark
        // must cover where the bytes actually landed.
        m.store::<MaskBounds, 8>(u32::MAX, 7, [9; 8]).unwrap();
        let i = m.resolve::<MaskBounds>(u32::MAX, 7, 8).unwrap();
        assert_eq!(m.high_water_mark(), i + 8);
    }

    #[test]
    fn reset_restores_template_and_zeroes_dirt() {
        let t = MemoryTemplate::build(&[(0, Arc::from(&b"seed"[..]))]);
        let mut m = LinearMemory::new(1, 8, BoundsStrategy::Software).unwrap();
        m.write_bytes(0, t.image()).unwrap();
        // Dirty both inside and beyond the template span.
        m.write_bytes(1, b"XXX").unwrap();
        m.write_bytes(5000, &[7; 16]).unwrap();
        m.reset_from(t.image());
        assert_eq!(m.read_bytes(0, 4).unwrap(), b"seed");
        assert_eq!(m.read_bytes(5000, 16).unwrap(), &[0; 16]);
        assert_eq!(m.high_water_mark(), t.len());
    }

    #[test]
    fn reset_shrinks_grown_memory_back_to_min() {
        let mut m = LinearMemory::new(1, 64, BoundsStrategy::Software).unwrap();
        assert_eq!(m.grow(31), 1);
        m.write_bytes(20 * PAGE_SIZE as u32, &[5; 4]).unwrap();
        let cap_after_grow = m.data.len();
        m.reset_from(&[]);
        assert_eq!(m.pages(), 1);
        assert_eq!(m.size_bytes(), PAGE_SIZE);
        // Allocation is retained, but the committed window shrinks and the
        // dirtied high region is zeroed.
        assert_eq!(m.data.len(), cap_after_grow);
        assert!(m.read_bytes(20 * PAGE_SIZE as u32, 4).is_err());
        assert!(m.data[20 * PAGE_SIZE..20 * PAGE_SIZE + 4]
            .iter()
            .all(|&b| b == 0));
        // Accesses are confined by the shrunk mask again.
        let i = m.resolve::<MaskBounds>(u32::MAX, 0, 1).unwrap();
        assert!(i < capacity_for(PAGE_SIZE) + RED_ZONE);
    }

    #[test]
    fn elided_reset_guards() {
        let t = MemoryTemplate::build(&[(0, Arc::from(&b"seed"[..]))]);
        let mut m = LinearMemory::new(1, 8, BoundsStrategy::Software).unwrap();
        m.write_bytes(0, t.image()).unwrap();
        m.clear_host_write_mark();
        // Pristine: elision allowed.
        assert!(m.reset_elided(t.image()));
        // A host write poisons elision until a real reset clears the mark.
        m.write_bytes(100, &[1; 4]).unwrap();
        assert!(!m.reset_elided(t.image()));
        m.reset_from(t.image());
        assert!(m.reset_elided(t.image()));
        // Growth poisons elision.
        assert_eq!(m.grow(1), 1);
        assert!(!m.reset_elided(t.image()));
        m.reset_from(t.image());
        assert!(m.reset_elided(t.image()));
        // A guest store past the template span raises hwm and poisons it.
        m.store::<SoftwareBounds, 4>(500, 0, [9; 4]).unwrap();
        assert!(!m.reset_elided(t.image()));
    }

    #[test]
    fn span_reset_skips_proven_zero_gap_and_restores() {
        let t = MemoryTemplate::build(&[(0, Arc::from(&b"seed"[..]))]);
        let mut m = LinearMemory::new(1, 8, BoundsStrategy::Software).unwrap();
        m.write_bytes(0, t.image()).unwrap();
        m.clear_host_write_mark();
        // Certified footprint [0x100, …): dirty only inside it.
        m.store::<SoftwareBounds, 8>(0x100, 0, [7; 8]).unwrap();
        m.store::<SoftwareBounds, 4>(0x200, 0, [8; 4]).unwrap();
        assert!(m.reset_from_span(t.image(), 0x100));
        assert_eq!(m.read_bytes(0, 4).unwrap(), b"seed");
        assert_eq!(m.read_bytes(0x100, 8).unwrap(), &[0; 8]);
        assert_eq!(m.read_bytes(0x200, 4).unwrap(), &[0; 4]);
        assert_eq!(m.high_water_mark(), t.len());
    }

    #[test]
    fn span_reset_guards_against_host_writes_and_growth() {
        let t = MemoryTemplate::build(&[(0, Arc::from(&b"seed"[..]))]);
        let mut m = LinearMemory::new(1, 8, BoundsStrategy::Software).unwrap();
        m.write_bytes(0, t.image()).unwrap();
        m.clear_host_write_mark();
        // Host write below the certified span: refuse the partial reset.
        m.write_bytes(0x80, &[1; 4]).unwrap();
        assert!(!m.reset_from_span(t.image(), 0x100));
        // The refusal must not have touched anything.
        assert_eq!(m.read_bytes(0x80, 4).unwrap(), &[1; 4]);
        m.reset_from(t.image());
        // Host write at/above the span is fine.
        m.write_bytes(0x100, &[2; 4]).unwrap();
        assert!(m.reset_from_span(t.image(), 0x100));
        assert_eq!(m.read_bytes(0x100, 4).unwrap(), &[0; 4]);
        // Growth: refuse.
        assert_eq!(m.grow(1), 1);
        assert!(!m.reset_from_span(t.image(), 0x100));
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = LinearMemory::new(1, 1, BoundsStrategy::Software).unwrap();
        m.store::<SoftwareBounds, 8>(16, 0, 0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes())
            .unwrap();
        let got = m.load::<SoftwareBounds, 8>(8, 8).unwrap();
        assert_eq!(u64::from_le_bytes(got), 0xDEAD_BEEF_CAFE_F00D);
    }
}
