//! Ahead-of-time translation: validated Wasm modules → the flat, resolved
//! code of [`CompiledModule`].
//!
//! This is the paper's "heavyweight linking and loading" stage: it runs once
//! per module, resolves all structured control flow to direct jumps, folds
//! common instruction patterns into super-instructions (optimized tier), and
//! pre-resolves imports, types, and the function table. The result is
//! immutable and shared by every sandbox of the function.

use crate::code::{
    BrTablePayload, Branch, CompiledFunc, CompiledModule, HostImport, LoadKind, MemorySpec, NumBin,
    NumUn, Op, StoreKind,
};
use sledge_wasm::instr::Instr;
use sledge_wasm::module::{ConstExpr, ImportKind, Module};
use sledge_wasm::types::FuncType;
use sledge_wasm::ValidateError;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Which execution tier to translate for (see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// Pre-resolved code plus super-instruction fusion; monomorphized
    /// bounds checks. Stands in for the LLVM-class engines (aWsm, WAVM).
    #[default]
    Optimized,
    /// Same resolution but no fusion, per-op accounting, and dynamically
    /// dispatched bounds checks. Stands in for the Cranelift-class engines
    /// (Wasmer, Lucet) in the paper's comparison.
    Naive,
}

impl Tier {
    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Optimized => "aot-opt",
            Tier::Naive => "aot-naive",
        }
    }
}

/// Error produced by [`translate`].
#[derive(Debug)]
pub enum TranslateError {
    /// The module failed validation.
    Validate(ValidateError),
    /// The module uses a feature this engine does not support (imported
    /// memories/tables/globals).
    Unsupported(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Validate(e) => write!(f, "{e}"),
            TranslateError::Unsupported(s) => write!(f, "unsupported module feature: {s}"),
        }
    }
}

impl Error for TranslateError {}

impl From<ValidateError> for TranslateError {
    fn from(e: ValidateError) -> Self {
        TranslateError::Validate(e)
    }
}

/// Options controlling translate-time analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslateOptions {
    /// Preemption-latency budget in cost units: the cost analysis inserts
    /// extra budget checks so no check-free path exceeds this (up to the
    /// weight of a single heaviest op). See
    /// [`DEFAULT_MAX_CHECK_GAP`](crate::analysis::cost::DEFAULT_MAX_CHECK_GAP).
    pub max_check_gap: u32,
    /// Run the translate-time optimizer (constant propagation, dead-code
    /// elimination, branch simplification, fusion, dominated-check
    /// elision) over every body, emitting a translation-validation
    /// certificate in [`AnalysisReport::opt`](crate::AnalysisReport).
    /// Defaults to on; the `SLEDGE_OPT=0` environment knob turns it off.
    pub optimize: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            max_check_gap: crate::analysis::cost::DEFAULT_MAX_CHECK_GAP,
            optimize: std::env::var("SLEDGE_OPT").map_or(true, |v| v != "0"),
        }
    }
}

/// Translate a module for the given tier with default
/// [`TranslateOptions`]. Validates first.
///
/// # Errors
///
/// Returns [`TranslateError::Validate`] for invalid modules and
/// [`TranslateError::Unsupported`] for imported memories, tables, globals,
/// or global-relative segment offsets.
pub fn translate(m: &Module, tier: Tier) -> Result<CompiledModule, TranslateError> {
    translate_with(m, tier, TranslateOptions::default())
}

/// [`translate`] with explicit analysis options.
///
/// # Errors
///
/// Same as [`translate`].
pub fn translate_with(
    m: &Module,
    tier: Tier,
    opts: TranslateOptions,
) -> Result<CompiledModule, TranslateError> {
    sledge_wasm::validate::validate_module(m)?;

    // Start functions would have to run inside `Instance::new`, which is the
    // runtime's µs-level, non-preemptible path; guests initialize through
    // data segments or their exported entry instead.
    if m.start.is_some() {
        return Err(TranslateError::Unsupported(
            "start function (initialize via data segments or the exported entry)".into(),
        ));
    }

    // Canonical type ids: equal signatures share an id, so indirect-call
    // checks are a single integer compare.
    let mut canon: Vec<FuncType> = Vec::new();
    let mut type_canon: Vec<u32> = Vec::with_capacity(m.types.len());
    for t in &m.types {
        let id = match canon.iter().position(|c| c == t) {
            Some(i) => i as u32,
            None => {
                canon.push(t.clone());
                (canon.len() - 1) as u32
            }
        };
        type_canon.push(id);
    }

    let mut host_funcs = Vec::new();
    for imp in &m.imports {
        match &imp.kind {
            ImportKind::Func(t) => {
                let ty = &m.types[*t as usize];
                host_funcs.push(HostImport {
                    module: imp.module.clone(),
                    name: imp.name.clone(),
                    nparams: ty.params.len() as u32,
                    has_result: !ty.results.is_empty(),
                    type_id: type_canon[*t as usize],
                });
            }
            other => {
                return Err(TranslateError::Unsupported(format!(
                    "import {}.{} of kind {other:?}",
                    imp.module, imp.name
                )))
            }
        }
    }

    let memory = m.memory().map(|mt| MemorySpec {
        min_pages: mt.limits.min,
        max_pages: mt.limits.max.unwrap_or(65536),
    });

    let mut globals = Vec::with_capacity(m.globals.len());
    for g in &m.globals {
        let v = match g.init {
            ConstExpr::I32(v) => v as u32 as u64,
            ConstExpr::I64(v) => v as u64,
            ConstExpr::F32(v) => v.to_bits() as u64,
            ConstExpr::F64(v) => v.to_bits(),
            ConstExpr::GlobalGet(_) => {
                return Err(TranslateError::Unsupported(
                    "global initialized from imported global".into(),
                ))
            }
        };
        globals.push(v);
    }

    let mut data = Vec::with_capacity(m.data.len());
    for d in &m.data {
        let off = match d.offset {
            ConstExpr::I32(v) => v as u32,
            _ => {
                return Err(TranslateError::Unsupported(
                    "non-constant data segment offset".into(),
                ))
            }
        };
        data.push((off, Arc::from(d.bytes.as_slice())));
    }

    let mut table: Vec<Option<u32>> = match m.table() {
        Some(t) => vec![None; t.limits.min as usize],
        None => Vec::new(),
    };
    for e in &m.elements {
        let off = match e.offset {
            ConstExpr::I32(v) => v as usize,
            _ => {
                return Err(TranslateError::Unsupported(
                    "non-constant element segment offset".into(),
                ))
            }
        };
        if off + e.funcs.len() > table.len() {
            return Err(TranslateError::Unsupported(
                "element segment exceeds table size".into(),
            ));
        }
        for (i, f) in e.funcs.iter().enumerate() {
            table[off + i] = Some(*f);
        }
    }

    let mut exports = HashMap::new();
    for e in &m.exports {
        if let sledge_wasm::module::ExportKind::Func(i) = e.kind {
            exports.insert(e.name.clone(), i);
        }
    }

    let num_imports = host_funcs.len() as u32;
    let mut funcs = Vec::with_capacity(m.functions.len());
    for (i, (ty_idx, body)) in m.functions.iter().zip(&m.code).enumerate() {
        let ty = &m.types[*ty_idx as usize];
        let func_idx = num_imports + i as u32;
        let name = m.exports.iter().find_map(|e| match e.kind {
            sledge_wasm::module::ExportKind::Func(f) if f == func_idx => Some(e.name.clone()),
            _ => None,
        });
        let mut tr = FnTranslator::new(m, &type_canon, num_imports, tier == Tier::Optimized);
        let code = tr.translate_body(ty, body);
        funcs.push(CompiledFunc {
            code,
            code_static: None,
            code_unopt: None,
            nparams: ty.params.len() as u32,
            nlocals: (ty.params.len() + body.locals.len()) as u32,
            has_result: !ty.results.is_empty(),
            type_id: type_canon[*ty_idx as usize],
            name,
        });
    }

    let template = crate::memory::MemoryTemplate::build(&data);
    let mut module = CompiledModule {
        funcs,
        host_funcs,
        globals,
        memory,
        data,
        template,
        table,
        exports,
        start: m.start,
        name: m.name.clone(),
        analysis: crate::analysis::AnalysisReport::default(),
    };
    // Static analysis runs once here, at load time: stack-bound
    // verification, bounds-check elision proofs (materialized as the
    // `code_static` bodies), lints, and the cost-model instrumentation
    // that certifies the preemption-latency gap.
    crate::analysis::analyze(&mut module, opts.max_check_gap, opts.optimize);
    Ok(module)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Block,
    Loop,
    If,
}

#[derive(Debug)]
enum Fixup {
    /// `ops[i]` is a Br/BrIf/BrIfZ whose `target` awaits this frame's end.
    Br(usize),
    /// `ops[i]`'s br_table entry `j` awaits this frame's end.
    TableEntry(usize, usize),
    /// `ops[i]`'s br_table default awaits this frame's end.
    TableDefault(usize),
}

#[derive(Debug)]
struct Ctrl {
    kind: CtrlKind,
    /// Operand-stack height at frame entry (after popping the `if` condition).
    height: u32,
    has_result: bool,
    fixups: Vec<Fixup>,
    /// Loop head position.
    head: u32,
    /// Index of the `BrIfZ` emitted at `if` open, awaiting else/end.
    else_fixup: Option<usize>,
    /// The rest of this frame is statically unreachable.
    unreachable: bool,
    /// Frame opened inside unreachable code: nothing is emitted for it.
    skipped: bool,
}

struct FnTranslator<'m> {
    module: &'m Module,
    type_canon: &'m [u32],
    num_imports: u32,
    optimize: bool,
    ops: Vec<Op>,
    ctrl: Vec<Ctrl>,
    height: u32,
    /// Fusion must not consume ops emitted before this index (branch-target
    /// boundary).
    barrier: usize,
}

impl<'m> FnTranslator<'m> {
    fn new(module: &'m Module, type_canon: &'m [u32], num_imports: u32, optimize: bool) -> Self {
        FnTranslator {
            module,
            type_canon,
            num_imports,
            optimize,
            ops: Vec::new(),
            ctrl: Vec::new(),
            height: 0,
            barrier: 0,
        }
    }

    fn set_barrier(&mut self) {
        self.barrier = self.ops.len();
    }

    fn unreachable_now(&self) -> bool {
        self.ctrl.last().is_some_and(|c| c.unreachable)
    }

    fn branch_for(&self, depth: u32) -> (Branch, bool) {
        // Returns the branch descriptor and whether the target is a loop
        // head (already resolved) — otherwise the target needs a fixup.
        let idx = self.ctrl.len() - 1 - depth as usize;
        let c = &self.ctrl[idx];
        match c.kind {
            CtrlKind::Loop => (
                Branch {
                    target: c.head,
                    height: c.height,
                    keep: false,
                },
                true,
            ),
            _ => (
                Branch {
                    target: u32::MAX, // patched at End
                    height: c.height,
                    keep: c.has_result,
                },
                false,
            ),
        }
    }

    fn ctrl_index(&self, depth: u32) -> usize {
        self.ctrl.len() - 1 - depth as usize
    }

    fn last_op_fusable(&self) -> Option<&Op> {
        if self.ops.len() > self.barrier {
            self.ops.last()
        } else {
            None
        }
    }

    fn prev_op_fusable(&self) -> Option<&Op> {
        if self.ops.len() >= self.barrier + 2 {
            Some(&self.ops[self.ops.len() - 2])
        } else {
            None
        }
    }

    fn emit_bin(&mut self, op: NumBin) {
        if self.optimize {
            match (self.prev_op_fusable(), self.last_op_fusable()) {
                (Some(&Op::LocalGet(a)), Some(&Op::LocalGet(c))) => {
                    self.ops.pop();
                    self.ops.pop();
                    self.ops.push(Op::Bin2L(op, a, c));
                    return;
                }
                (_, Some(&Op::LocalGet(c))) => {
                    self.ops.pop();
                    self.ops.push(Op::BinRL(op, c));
                    return;
                }
                (_, Some(&Op::Const(c))) => {
                    self.ops.pop();
                    self.ops.push(Op::BinRC(op, c));
                    return;
                }
                _ => {}
            }
        }
        self.ops.push(Op::Bin(op));
    }

    fn emit_local_set(&mut self, idx: u32) {
        if self.optimize {
            match self.last_op_fusable() {
                Some(&Op::Bin2L(op, a, c)) => {
                    self.ops.pop();
                    self.ops.push(Op::Bin2LS(op, a, c, idx));
                    return;
                }
                Some(&Op::BinRC(NumBin::I32Add, c)) => {
                    if let Some(&Op::LocalGet(src)) = self.prev_op_fusable() {
                        if src == idx {
                            self.ops.pop();
                            self.ops.pop();
                            self.ops.push(Op::IncI32(idx, c as u32 as i32));
                            return;
                        }
                    }
                }
                _ => {}
            }
        }
        self.ops.push(Op::LocalSet(idx));
    }

    fn emit_load(&mut self, kind: LoadKind, offset: u32) {
        if self.optimize {
            if let Some(&Op::LocalGet(a)) = self.last_op_fusable() {
                self.ops.pop();
                self.ops.push(Op::LoadL(kind, a, offset));
                return;
            }
        }
        self.ops.push(Op::Load(kind, offset));
    }

    /// Emit a conditional branch, folding a preceding `i32.eqz`.
    fn emit_br_cond(&mut self, br: Branch, branch_if_zero: bool) -> usize {
        let mut zero = branch_if_zero;
        if self.optimize {
            if let Some(Op::Un(NumUn::I32Eqz)) = self.last_op_fusable() {
                self.ops.pop();
                zero = !zero;
            }
        }
        self.ops
            .push(if zero { Op::BrIfZ(br) } else { Op::BrIf(br) });
        self.ops.len() - 1
    }

    fn func_type_of(&self, f: u32) -> &FuncType {
        self.module.func_type(f).expect("validated")
    }

    fn patch(&mut self, fixups: Vec<Fixup>, target: u32) {
        for f in fixups {
            match f {
                Fixup::Br(i) => match &mut self.ops[i] {
                    Op::Br(b) | Op::BrIf(b) | Op::BrIfZ(b) => b.target = target,
                    other => unreachable!("fixup on non-branch {other:?}"),
                },
                Fixup::TableEntry(i, j) => match &mut self.ops[i] {
                    Op::BrTable(p) => p.targets[j].target = target,
                    other => unreachable!("fixup on non-table {other:?}"),
                },
                Fixup::TableDefault(i) => match &mut self.ops[i] {
                    Op::BrTable(p) => p.default.target = target,
                    other => unreachable!("fixup on non-table {other:?}"),
                },
            }
        }
    }

    fn translate_body(&mut self, ty: &FuncType, body: &sledge_wasm::module::FuncBody) -> Vec<Op> {
        // The function body is an implicit outermost frame; branching to it
        // returns from the function.
        self.ctrl.push(Ctrl {
            kind: CtrlKind::Block,
            height: 0,
            has_result: !ty.results.is_empty(),
            fixups: Vec::new(),
            head: 0,
            else_fixup: None,
            unreachable: false,
            skipped: false,
        });

        for ins in &body.instrs {
            self.step(ins);
            if self.ctrl.is_empty() {
                break; // function-level End processed
            }
        }
        debug_assert!(self.ctrl.is_empty(), "unbalanced control in validated body");
        std::mem::take(&mut self.ops)
    }

    fn step(&mut self, ins: &Instr) {
        use Instr::*;

        // Skip statically unreachable code, but keep frame structure.
        if self.unreachable_now() {
            match ins {
                Block(_) | Loop(_) | If(_) => {
                    self.ctrl.push(Ctrl {
                        kind: CtrlKind::Block,
                        height: self.height,
                        has_result: false,
                        fixups: Vec::new(),
                        head: 0,
                        else_fixup: None,
                        unreachable: true,
                        skipped: true,
                    });
                    return;
                }
                Else => {
                    let c = self.ctrl.last_mut().expect("in frame");
                    if c.skipped {
                        return; // else of a skipped if: stay skipped
                    }
                    // Real `if` whose then-arm ended unreachable: the else
                    // arm is reachable via the BrIfZ.
                    self.begin_else();
                    return;
                }
                End => {
                    let c = self.ctrl.last().expect("in frame");
                    if c.skipped {
                        self.ctrl.pop();
                        return;
                    }
                    self.end_frame();
                    return;
                }
                _ => return, // dead code: emit nothing
            }
        }

        match ins {
            Unreachable => {
                self.ops.push(Op::Unreachable);
                self.mark_unreachable();
            }
            Nop => {}
            Block(bt) => {
                self.ctrl.push(Ctrl {
                    kind: CtrlKind::Block,
                    height: self.height,
                    has_result: bt.result().is_some(),
                    fixups: Vec::new(),
                    head: 0,
                    else_fixup: None,
                    unreachable: false,
                    skipped: false,
                });
            }
            Loop(bt) => {
                self.set_barrier(); // loop head is a branch target
                self.ctrl.push(Ctrl {
                    kind: CtrlKind::Loop,
                    height: self.height,
                    has_result: bt.result().is_some(),
                    fixups: Vec::new(),
                    head: self.ops.len() as u32,
                    else_fixup: None,
                    unreachable: false,
                    skipped: false,
                });
            }
            If(bt) => {
                self.height -= 1; // condition
                let br = Branch {
                    target: u32::MAX,
                    height: self.height,
                    keep: false,
                };
                let pos = self.emit_br_cond(br, true);
                self.set_barrier();
                self.ctrl.push(Ctrl {
                    kind: CtrlKind::If,
                    height: self.height,
                    has_result: bt.result().is_some(),
                    fixups: Vec::new(),
                    head: 0,
                    else_fixup: Some(pos),
                    unreachable: false,
                    skipped: false,
                });
            }
            Else => self.begin_else(),
            End => self.end_frame(),
            Br(depth) => {
                let (br, _) = self.branch_for(*depth);
                let ci = self.ctrl_index(*depth);
                if ci == 0 {
                    // Branch to the function frame == return.
                    self.ops.push(Op::Return);
                } else {
                    self.ops.push(Op::Br(br));
                    if self.ctrl[ci].kind != CtrlKind::Loop {
                        let pos = self.ops.len() - 1;
                        self.ctrl[ci].fixups.push(Fixup::Br(pos));
                    }
                }
                self.mark_unreachable();
            }
            BrIf(depth) => {
                self.height -= 1; // condition
                let (br, resolved) = self.branch_for(*depth);
                let ci = self.ctrl_index(*depth);
                if ci == 0 {
                    // Conditional return: lower to BrIfZ over a Return. The
                    // skip branch targets the very next position at the
                    // *current* height, so its unwind is a no-op.
                    let skip = Branch {
                        target: self.ops.len() as u32 + 2,
                        height: self.height,
                        keep: false,
                    };
                    self.ops.push(Op::BrIfZ(skip));
                    self.ops.push(Op::Return);
                    self.set_barrier();
                } else {
                    let pos = self.emit_br_cond(br, false);
                    if !resolved {
                        self.ctrl[ci].fixups.push(Fixup::Br(pos));
                    }
                }
            }
            BrTable(targets, default) => {
                self.height -= 1; // index
                let mut payload = BrTablePayload {
                    targets: Vec::with_capacity(targets.len()),
                    default: Branch {
                        target: u32::MAX,
                        height: 0,
                        keep: false,
                    },
                };
                let pos = self.ops.len();
                let mut fixups: Vec<(usize, Fixup)> = Vec::new();
                for (j, d) in targets.iter().enumerate() {
                    let (br, resolved) = self.branch_for(*d);
                    payload.targets.push(br);
                    if !resolved {
                        let ci = self.ctrl_index(*d);
                        if ci == 0 {
                            // br_table to the function label: lower as a
                            // branch to an emitted Return trampoline; for
                            // simplicity route through fixups on frame 0 and
                            // let end_frame patch to the final Return.
                        }
                        fixups.push((ci, Fixup::TableEntry(pos, j)));
                    }
                }
                let (br, resolved) = self.branch_for(*default);
                payload.default = br;
                if !resolved {
                    let ci = self.ctrl_index(*default);
                    fixups.push((ci, Fixup::TableDefault(pos)));
                }
                self.ops.push(Op::BrTable(Box::new(payload)));
                for (ci, f) in fixups {
                    self.ctrl[ci].fixups.push(f);
                }
                self.mark_unreachable();
            }
            Return => {
                self.ops.push(Op::Return);
                self.mark_unreachable();
            }
            Call(f) => {
                let ty = self.func_type_of(*f).clone();
                self.height -= ty.params.len() as u32;
                if *f < self.num_imports {
                    self.ops.push(Op::CallHost(*f));
                } else {
                    self.ops.push(Op::Call(*f - self.num_imports));
                }
                if ty.result().is_some() {
                    self.height += 1;
                }
                self.set_barrier(); // calls clobber fusion windows
            }
            CallIndirect(t) => {
                let ty = self.module.types[*t as usize].clone();
                self.height -= 1 + ty.params.len() as u32;
                self.ops
                    .push(Op::CallIndirect(self.type_canon[*t as usize]));
                if ty.result().is_some() {
                    self.height += 1;
                }
                self.set_barrier();
            }
            Drop => {
                self.height -= 1;
                if self.optimize {
                    // Dropping a just-pushed pure value: elide both.
                    if let Some(Op::Const(_) | Op::LocalGet(_) | Op::GlobalGet(_)) =
                        self.last_op_fusable()
                    {
                        self.ops.pop();
                        return;
                    }
                }
                self.ops.push(Op::Drop);
            }
            Select => {
                self.height -= 2;
                self.ops.push(Op::Select);
            }
            LocalGet(i) => {
                self.height += 1;
                self.ops.push(Op::LocalGet(*i));
            }
            LocalSet(i) => {
                self.height -= 1;
                self.emit_local_set(*i);
            }
            LocalTee(i) => {
                self.ops.push(Op::LocalTee(*i));
            }
            GlobalGet(i) => {
                self.height += 1;
                self.ops.push(Op::GlobalGet(*i));
            }
            GlobalSet(i) => {
                self.height -= 1;
                self.ops.push(Op::GlobalSet(*i));
            }
            I32Const(v) => {
                self.height += 1;
                self.ops.push(Op::Const(*v as u32 as u64));
            }
            I64Const(v) => {
                self.height += 1;
                self.ops.push(Op::Const(*v as u64));
            }
            F32Const(v) => {
                self.height += 1;
                self.ops.push(Op::Const(v.to_bits() as u64));
            }
            F64Const(v) => {
                self.height += 1;
                self.ops.push(Op::Const(v.to_bits()));
            }
            MemorySize => {
                self.height += 1;
                self.ops.push(Op::MemorySize);
            }
            MemoryGrow => {
                self.ops.push(Op::MemoryGrow);
            }
            other => {
                // Loads, stores, and pure numeric instructions.
                if let Some((kind, off)) = load_kind(other) {
                    self.emit_load(kind, off);
                } else if let Some((kind, off)) = store_kind(other) {
                    self.height -= 2;
                    self.ops.push(Op::Store(kind, off));
                } else if let Some(nb) = num_bin(other) {
                    self.height -= 1;
                    self.emit_bin(nb);
                } else if let Some(nu) = num_un(other) {
                    self.ops.push(Op::Un(nu));
                } else {
                    unreachable!("unhandled instruction {other:?}");
                }
            }
        }
    }

    fn begin_else(&mut self) {
        let (else_fixup, was_unreachable, height, has_result) = {
            let c = self.ctrl.last_mut().expect("else inside if");
            debug_assert_eq!(c.kind, CtrlKind::If);
            let ef = c.else_fixup.take().expect("if has pending else fixup");
            let wu = c.unreachable;
            c.unreachable = false;
            (ef, wu, c.height, c.has_result)
        };
        // Terminate the then-arm with a jump to the end (skipped if the arm
        // already ended unreachable).
        if !was_unreachable {
            let br = Branch {
                target: u32::MAX,
                height,
                keep: has_result,
            };
            self.ops.push(Op::Br(br));
            let pos = self.ops.len() - 1;
            self.ctrl
                .last_mut()
                .expect("if frame")
                .fixups
                .push(Fixup::Br(pos));
        }
        // The BrIfZ lands here: start of the else arm.
        let target = self.ops.len() as u32;
        self.patch(vec![Fixup::Br(else_fixup)], target);
        self.set_barrier();
        self.height = height;
    }

    fn end_frame(&mut self) {
        let c = self.ctrl.pop().expect("end with open frame");
        debug_assert!(!c.skipped);
        let end_pos = self.ops.len() as u32;
        if self.ctrl.is_empty() {
            // Function-level end: fall-through return. Patch any branches
            // to the function label to the Return we emit here.
            self.ops.push(Op::Return);
            self.patch(c.fixups, end_pos);
            self.height = 0;
            return;
        }
        // `if` without `else`: the BrIfZ lands at the end.
        if let Some(pos) = c.else_fixup {
            self.patch(vec![Fixup::Br(pos)], end_pos);
        }
        self.patch(c.fixups, end_pos);
        self.set_barrier();
        self.height = c.height + c.has_result as u32;
    }

    fn mark_unreachable(&mut self) {
        let c = self.ctrl.last_mut().expect("frame");
        c.unreachable = true;
        self.height = c.height;
    }
}

fn load_kind(i: &Instr) -> Option<(LoadKind, u32)> {
    use Instr::*;
    Some(match i {
        I32Load(m) => (LoadKind::I32, m.offset),
        I64Load(m) => (LoadKind::I64, m.offset),
        F32Load(m) => (LoadKind::F32, m.offset),
        F64Load(m) => (LoadKind::F64, m.offset),
        I32Load8S(m) => (LoadKind::I32S8, m.offset),
        I32Load8U(m) => (LoadKind::I32U8, m.offset),
        I32Load16S(m) => (LoadKind::I32S16, m.offset),
        I32Load16U(m) => (LoadKind::I32U16, m.offset),
        I64Load8S(m) => (LoadKind::I64S8, m.offset),
        I64Load8U(m) => (LoadKind::I64U8, m.offset),
        I64Load16S(m) => (LoadKind::I64S16, m.offset),
        I64Load16U(m) => (LoadKind::I64U16, m.offset),
        I64Load32S(m) => (LoadKind::I64S32, m.offset),
        I64Load32U(m) => (LoadKind::I64U32, m.offset),
        _ => return None,
    })
}

fn store_kind(i: &Instr) -> Option<(StoreKind, u32)> {
    use Instr::*;
    Some(match i {
        I32Store(m) => (StoreKind::I32, m.offset),
        I64Store(m) => (StoreKind::I64, m.offset),
        F32Store(m) => (StoreKind::F32, m.offset),
        F64Store(m) => (StoreKind::F64, m.offset),
        I32Store8(m) => (StoreKind::B8From32, m.offset),
        I32Store16(m) => (StoreKind::B16From32, m.offset),
        I64Store8(m) => (StoreKind::B8From64, m.offset),
        I64Store16(m) => (StoreKind::B16From64, m.offset),
        I64Store32(m) => (StoreKind::B32From64, m.offset),
        _ => return None,
    })
}

fn num_bin(i: &Instr) -> Option<NumBin> {
    use Instr as I;
    use NumBin as N;
    Some(match i {
        I::I32Add => N::I32Add,
        I::I32Sub => N::I32Sub,
        I::I32Mul => N::I32Mul,
        I::I32DivS => N::I32DivS,
        I::I32DivU => N::I32DivU,
        I::I32RemS => N::I32RemS,
        I::I32RemU => N::I32RemU,
        I::I32And => N::I32And,
        I::I32Or => N::I32Or,
        I::I32Xor => N::I32Xor,
        I::I32Shl => N::I32Shl,
        I::I32ShrS => N::I32ShrS,
        I::I32ShrU => N::I32ShrU,
        I::I32Rotl => N::I32Rotl,
        I::I32Rotr => N::I32Rotr,
        I::I32Eq => N::I32Eq,
        I::I32Ne => N::I32Ne,
        I::I32LtS => N::I32LtS,
        I::I32LtU => N::I32LtU,
        I::I32GtS => N::I32GtS,
        I::I32GtU => N::I32GtU,
        I::I32LeS => N::I32LeS,
        I::I32LeU => N::I32LeU,
        I::I32GeS => N::I32GeS,
        I::I32GeU => N::I32GeU,
        I::I64Add => N::I64Add,
        I::I64Sub => N::I64Sub,
        I::I64Mul => N::I64Mul,
        I::I64DivS => N::I64DivS,
        I::I64DivU => N::I64DivU,
        I::I64RemS => N::I64RemS,
        I::I64RemU => N::I64RemU,
        I::I64And => N::I64And,
        I::I64Or => N::I64Or,
        I::I64Xor => N::I64Xor,
        I::I64Shl => N::I64Shl,
        I::I64ShrS => N::I64ShrS,
        I::I64ShrU => N::I64ShrU,
        I::I64Rotl => N::I64Rotl,
        I::I64Rotr => N::I64Rotr,
        I::I64Eq => N::I64Eq,
        I::I64Ne => N::I64Ne,
        I::I64LtS => N::I64LtS,
        I::I64LtU => N::I64LtU,
        I::I64GtS => N::I64GtS,
        I::I64GtU => N::I64GtU,
        I::I64LeS => N::I64LeS,
        I::I64LeU => N::I64LeU,
        I::I64GeS => N::I64GeS,
        I::I64GeU => N::I64GeU,
        I::F32Eq => N::F32Eq,
        I::F32Ne => N::F32Ne,
        I::F32Lt => N::F32Lt,
        I::F32Gt => N::F32Gt,
        I::F32Le => N::F32Le,
        I::F32Ge => N::F32Ge,
        I::F64Eq => N::F64Eq,
        I::F64Ne => N::F64Ne,
        I::F64Lt => N::F64Lt,
        I::F64Gt => N::F64Gt,
        I::F64Le => N::F64Le,
        I::F64Ge => N::F64Ge,
        I::F32Add => N::F32Add,
        I::F32Sub => N::F32Sub,
        I::F32Mul => N::F32Mul,
        I::F32Div => N::F32Div,
        I::F32Min => N::F32Min,
        I::F32Max => N::F32Max,
        I::F32Copysign => N::F32Copysign,
        I::F64Add => N::F64Add,
        I::F64Sub => N::F64Sub,
        I::F64Mul => N::F64Mul,
        I::F64Div => N::F64Div,
        I::F64Min => N::F64Min,
        I::F64Max => N::F64Max,
        I::F64Copysign => N::F64Copysign,
        _ => return None,
    })
}

fn num_un(i: &Instr) -> Option<NumUn> {
    use Instr as I;
    use NumUn as N;
    Some(match i {
        I::I32Eqz => N::I32Eqz,
        I::I64Eqz => N::I64Eqz,
        I::I32Clz => N::I32Clz,
        I::I32Ctz => N::I32Ctz,
        I::I32Popcnt => N::I32Popcnt,
        I::I64Clz => N::I64Clz,
        I::I64Ctz => N::I64Ctz,
        I::I64Popcnt => N::I64Popcnt,
        I::F32Abs => N::F32Abs,
        I::F32Neg => N::F32Neg,
        I::F32Ceil => N::F32Ceil,
        I::F32Floor => N::F32Floor,
        I::F32Trunc => N::F32Trunc,
        I::F32Nearest => N::F32Nearest,
        I::F32Sqrt => N::F32Sqrt,
        I::F64Abs => N::F64Abs,
        I::F64Neg => N::F64Neg,
        I::F64Ceil => N::F64Ceil,
        I::F64Floor => N::F64Floor,
        I::F64Trunc => N::F64Trunc,
        I::F64Nearest => N::F64Nearest,
        I::F64Sqrt => N::F64Sqrt,
        I::I32WrapI64 => N::I32WrapI64,
        I::I32TruncF32S => N::I32TruncF32S,
        I::I32TruncF32U => N::I32TruncF32U,
        I::I32TruncF64S => N::I32TruncF64S,
        I::I32TruncF64U => N::I32TruncF64U,
        I::I64ExtendI32S => N::I64ExtendI32S,
        I::I64ExtendI32U => N::I64ExtendI32U,
        I::I64TruncF32S => N::I64TruncF32S,
        I::I64TruncF32U => N::I64TruncF32U,
        I::I64TruncF64S => N::I64TruncF64S,
        I::I64TruncF64U => N::I64TruncF64U,
        I::F32ConvertI32S => N::F32ConvertI32S,
        I::F32ConvertI32U => N::F32ConvertI32U,
        I::F32ConvertI64S => N::F32ConvertI64S,
        I::F32ConvertI64U => N::F32ConvertI64U,
        I::F32DemoteF64 => N::F32DemoteF64,
        I::F64ConvertI32S => N::F64ConvertI32S,
        I::F64ConvertI32U => N::F64ConvertI32U,
        I::F64ConvertI64S => N::F64ConvertI64S,
        I::F64ConvertI64U => N::F64ConvertI64U,
        I::F64PromoteF32 => N::F64PromoteF32,
        I::I32ReinterpretF32 => N::I32ReinterpretF32,
        I::I64ReinterpretF64 => N::I64ReinterpretF64,
        I::F32ReinterpretI32 => N::F32ReinterpretI32,
        I::F64ReinterpretI64 => N::F64ReinterpretI64,
        I::I32Extend8S => N::I32Extend8S,
        I::I32Extend16S => N::I32Extend16S,
        I::I64Extend8S => N::I64Extend8S,
        I::I64Extend16S => N::I64Extend16S,
        I::I64Extend32S => N::I64Extend32S,
        _ => return None,
    })
}
