//! Call-graph-closed effect analysis: which host imports each function can
//! reach, and an interval over-approximation of every byte of linear memory
//! it can store to.
//!
//! # Capability sets
//!
//! Per-function *direct* effects come from a syntactic op scan: `CallHost`
//! adds that import, and `call_indirect` adds every **host import resident in
//! the table with a matching type id** (local table residents are already
//! edges in the call graph). Direct effects are then closed transitively
//! over the call graph — `call_indirect` to local functions is covered
//! because [`CallGraph`] over-approximates indirect calls by type-compatible
//! table residency. The result is sound: the closed set is a superset of the
//! imports any concrete execution of the function can invoke.
//!
//! # Write footprints
//!
//! Per-function direct footprints come from the interval analysis in
//! [`range`](super::range) (every `store` site's abstract address interval,
//! joined), degraded to [`WriteFootprint::Unbounded`] whenever that analysis
//! bails out on a function containing stores. Closure joins callee
//! footprints in. `memory.grow` does not widen the interval itself — store
//! addresses are static regardless of the memory size — but it is tracked
//! as [`FuncEffect::may_grow`] because growth invalidates the cheap
//! reset-elision contract (see `CompiledModule::reset_policy`).
//!
//! A function is [`FuncEffect::pure`] when its closed footprint is `Empty`
//! and it cannot grow memory: it provably performs **no** guest store at
//! all. This is deliberately stricter than "writes nothing outside the
//! template image": the runtime high-water mark cannot distinguish writes
//! *inside* the template span, so only the no-stores-at-all verdict lets the
//! pool skip the memory reset entirely.

use super::stack::CallGraph;
use super::{Diagnostic, Severity};
use crate::code::{CompiledModule, HostImport, Op};
use std::collections::{BTreeSet, HashSet};

/// Interval over-approximation of a function's stores into linear memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteFootprint {
    /// Provably performs no store.
    #[default]
    Empty,
    /// Every store lands in `[lo, hi)` (byte addresses).
    Span { lo: u64, hi: u64 },
    /// At least one store whose address could not be bounded.
    Unbounded,
}

impl WriteFootprint {
    /// Lattice join (interval hull).
    pub fn join(self, other: WriteFootprint) -> WriteFootprint {
        use WriteFootprint::*;
        match (self, other) {
            (Empty, x) | (x, Empty) => x,
            (Unbounded, _) | (_, Unbounded) => Unbounded,
            (Span { lo: a, hi: b }, Span { lo: c, hi: d }) => Span {
                lo: a.min(c),
                hi: b.max(d),
            },
        }
    }

    /// Exclusive upper bound of the footprint in bytes: 0 for `Empty`,
    /// `hi` for a span, `None` when unbounded.
    pub fn bytes(self) -> Option<u64> {
        match self {
            WriteFootprint::Empty => Some(0),
            WriteFootprint::Span { hi, .. } => Some(hi),
            WriteFootprint::Unbounded => None,
        }
    }
}

impl std::fmt::Display for WriteFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteFootprint::Empty => f.write_str("empty"),
            WriteFootprint::Span { lo, hi } => write!(f, "[{lo}, {hi})"),
            WriteFootprint::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// Call-graph-closed effects of one local function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncEffect {
    /// Export/debug name, if known.
    pub name: Option<String>,
    /// Reachable host imports (indices into [`EffectReport::imports`]),
    /// sorted, closed over the call graph and type-compatible
    /// `call_indirect` targets.
    pub hostcalls: Vec<u32>,
    /// Closed static write footprint.
    pub footprint: WriteFootprint,
    /// Whether any reachable code can execute `memory.grow`.
    pub may_grow: bool,
    /// Whether any reachable code can write a module global.
    pub writes_globals: bool,
    /// Proven to perform no guest store at all (`Empty` footprint and no
    /// `memory.grow`). Globals may still be written; the pool restores
    /// globals unconditionally, so purity only gates the *memory* reset.
    pub pure: bool,
}

/// The effect certificate for a whole module, cached on
/// [`AnalysisReport::effects`](super::AnalysisReport::effects).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EffectReport {
    /// Qualified host-import names (`module::name`), parallel to
    /// `CompiledModule::host_funcs` — the report is self-contained so policy
    /// checks need no module access.
    pub imports: Vec<String>,
    /// One entry per local function, parallel to
    /// [`AnalysisReport::funcs`](super::AnalysisReport::funcs).
    pub funcs: Vec<FuncEffect>,
}

/// Does `allowed` grant the qualified import name `qname` (`module::name`)?
/// A grant matches the full qualified name or the bare field name.
fn grants(allowed: &[String], qname: &str) -> bool {
    allowed.iter().any(|a| {
        a == qname
            || qname
                .rsplit_once("::")
                .map(|(_, bare)| a == bare)
                .unwrap_or(false)
    })
}

impl EffectReport {
    /// Capability set and footprint of an entry point given in *module
    /// space* (imports first). An entry that is itself a re-exported import
    /// has exactly that one capability and writes nothing.
    pub fn entry_effect(&self, entry_idx: u32) -> Option<(Vec<u32>, WriteFootprint, bool)> {
        let ni = self.imports.len() as u32;
        if entry_idx < ni {
            return Some((vec![entry_idx], WriteFootprint::Empty, false));
        }
        let fe = self.funcs.get((entry_idx - ni) as usize)?;
        Some((fe.hostcalls.clone(), fe.footprint, fe.may_grow))
    }

    /// Deny-by-default host-call policy: every import reachable from the
    /// entry must be granted by `allowed`. Returns an `Error` diagnostic
    /// listing the violations, or `None` when the policy holds.
    pub fn check_hostcalls(&self, entry_idx: u32, allowed: &[String]) -> Option<Diagnostic> {
        let (hostcalls, _, _) = self.entry_effect(entry_idx)?;
        let denied: Vec<&str> = hostcalls
            .iter()
            .filter_map(|&h| {
                let qname = self.imports.get(h as usize)?.as_str();
                (!grants(allowed, qname)).then_some(qname)
            })
            .collect();
        if denied.is_empty() {
            return None;
        }
        Some(Diagnostic {
            severity: Severity::Error,
            func: None,
            pc: None,
            message: format!(
                "capability violation: entry point reaches host call(s) [{}] not in \
                 the allowed set [{}]",
                denied.join(", "),
                allowed.join(", ")
            ),
        })
    }

    /// Write-footprint policy: the entry's static footprint must be bounded
    /// and its exclusive upper bound must not exceed `max_bytes`.
    pub fn check_write_footprint(&self, entry_idx: u32, max_bytes: u64) -> Option<Diagnostic> {
        let (_, footprint, _) = self.entry_effect(entry_idx)?;
        match footprint.bytes() {
            Some(hi) if hi <= max_bytes => None,
            Some(hi) => Some(Diagnostic {
                severity: Severity::Error,
                func: None,
                pc: None,
                message: format!(
                    "capability violation: static write footprint extends to byte {hi}, \
                     over the {max_bytes}-byte policy"
                ),
            }),
            None => Some(Diagnostic {
                severity: Severity::Error,
                func: None,
                pc: None,
                message: format!(
                    "capability violation: write footprint is statically unbounded \
                     (policy allows {max_bytes} bytes)"
                ),
            }),
        }
    }

    /// Grants wider than the module needs: allowed host calls the entry can
    /// never reach. Returns a `Warn` diagnostic, or `None` when every grant
    /// is exercised.
    pub fn unused_grants(&self, entry_idx: u32, allowed: &[String]) -> Option<Diagnostic> {
        let (hostcalls, _, _) = self.entry_effect(entry_idx)?;
        let reachable: Vec<&str> = hostcalls
            .iter()
            .filter_map(|&h| self.imports.get(h as usize).map(String::as_str))
            .collect();
        let unused: Vec<&str> = allowed
            .iter()
            .map(String::as_str)
            .filter(|a| {
                !reachable.iter().any(|q| {
                    q == a
                        || q.rsplit_once("::")
                            .map(|(_, bare)| bare == *a)
                            .unwrap_or(false)
                })
            })
            .collect();
        if unused.is_empty() {
            return None;
        }
        Some(Diagnostic {
            severity: Severity::Warn,
            func: None,
            pc: None,
            message: format!(
                "capability policy wider than needed: allowed host call(s) [{}] are \
                 unreachable from the entry point",
                unused.join(", ")
            ),
        })
    }
}

fn qualified(imp: &HostImport) -> String {
    format!("{}::{}", imp.module, imp.name)
}

/// Compute the module's effect certificate. `footprints` holds each local
/// function's *direct* store footprint from the interval analysis, parallel
/// to `m.funcs`.
pub(super) fn compute(
    m: &CompiledModule,
    graph: &CallGraph,
    footprints: &[WriteFootprint],
) -> EffectReport {
    let ni = m.num_imports();
    // Host imports resident in the table, by type id: the over-approximated
    // host-side target set of a `call_indirect` (the local side is already
    // in the call graph's edges).
    let mut table_hosts_by_type: Vec<(u32, u32)> = Vec::new(); // (type_id, import idx)
    for entry in m.table.iter().flatten() {
        if *entry < ni {
            let tid = m.host_funcs[*entry as usize].type_id;
            if !table_hosts_by_type.contains(&(tid, *entry)) {
                table_hosts_by_type.push((tid, *entry));
            }
        }
    }

    // Direct effects per function.
    let mut hostcalls: Vec<BTreeSet<u32>> = Vec::with_capacity(m.funcs.len());
    let mut footprint: Vec<WriteFootprint> = footprints.to_vec();
    let mut may_grow: Vec<bool> = Vec::with_capacity(m.funcs.len());
    let mut writes_globals: Vec<bool> = Vec::with_capacity(m.funcs.len());
    for func in &m.funcs {
        let mut hc = BTreeSet::new();
        let mut grow = false;
        let mut globals = false;
        for op in &func.code {
            match op {
                Op::CallHost(h) => {
                    hc.insert(*h);
                }
                Op::CallIndirect(tid) => {
                    for &(t, h) in &table_hosts_by_type {
                        if t == *tid {
                            hc.insert(h);
                        }
                    }
                }
                Op::MemoryGrow => grow = true,
                Op::GlobalSet(_) => globals = true,
                _ => {}
            }
        }
        hostcalls.push(hc);
        may_grow.push(grow);
        writes_globals.push(globals);
    }

    // Transitive closure over the call graph: monotone joins on finite
    // lattices, iterated to fixpoint.
    let callees = graph.callees();
    loop {
        let mut changed = false;
        for f in 0..m.funcs.len() {
            for &c in &callees[f] {
                let c = c as usize;
                if !hostcalls[c].is_empty() {
                    let add: Vec<u32> = hostcalls[c]
                        .iter()
                        .copied()
                        .filter(|h| !hostcalls[f].contains(h))
                        .collect();
                    if !add.is_empty() {
                        hostcalls[f].extend(add);
                        changed = true;
                    }
                }
                let joined = footprint[f].join(footprint[c]);
                if joined != footprint[f] {
                    footprint[f] = joined;
                    changed = true;
                }
                if may_grow[c] && !may_grow[f] {
                    may_grow[f] = true;
                    changed = true;
                }
                if writes_globals[c] && !writes_globals[f] {
                    writes_globals[f] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    EffectReport {
        imports: m.host_funcs.iter().map(qualified).collect(),
        funcs: m
            .funcs
            .iter()
            .enumerate()
            .map(|(f, func)| FuncEffect {
                name: func.name.clone(),
                hostcalls: hostcalls[f].iter().copied().collect(),
                footprint: footprint[f],
                may_grow: may_grow[f],
                writes_globals: writes_globals[f],
                pure: footprint[f] == WriteFootprint::Empty && !may_grow[f],
            })
            .collect(),
    }
}

/// Effect-aware lints:
///
/// * **dead host import** — an import no reachable function can invoke,
///   directly, transitively, or through any type-compatible table slot, and
///   that is not itself re-exported;
/// * **template-gap write before first read** — an exact-constant store into
///   the template image span that no data segment initialized, appearing
///   before any load in the function (a common symptom of a miscomputed
///   static address).
pub(super) fn lints(
    m: &CompiledModule,
    report: &EffectReport,
    reachable: &HashSet<u32>,
    out: &mut Vec<Diagnostic>,
) {
    let ni = m.num_imports();

    // (a) Dead host imports.
    let mut live: HashSet<u32> = HashSet::new();
    for (f, fe) in report.funcs.iter().enumerate() {
        if reachable.contains(&(f as u32)) {
            live.extend(fe.hostcalls.iter().copied());
        }
    }
    for &idx in m.exports.values() {
        if idx < ni {
            live.insert(idx);
        }
    }
    for (h, qname) in report.imports.iter().enumerate() {
        if !live.contains(&(h as u32)) {
            out.push(Diagnostic {
                severity: Severity::Warn,
                func: None,
                pc: None,
                message: format!(
                    "host import `{qname}` is unreachable from every export and \
                     table entry (dead capability)"
                ),
            });
        }
    }

    // (b) Template-gap writes before the first read. Only exact-constant
    // addresses are judged, so modules without data segments never trip.
    let template_len = m.template.image().len() as u64;
    if template_len == 0 {
        return;
    }
    let covered = |lo: u64, hi: u64| {
        m.data.iter().any(|(off, bytes)| {
            let s = *off as u64;
            lo >= s && hi <= s + bytes.len() as u64
        })
    };
    for (fidx, func) in m.funcs.iter().enumerate() {
        if !reachable.contains(&(fidx as u32)) {
            continue;
        }
        let mut seen_load = false;
        for (pc, op) in func.code.iter().enumerate() {
            match op {
                Op::Load(..) | Op::LoadL(..) | Op::LoadNc(..) | Op::LoadLNc(..) => {
                    seen_load = true;
                }
                Op::Store(kind, off) if !seen_load && pc >= 2 => {
                    // Pattern `const addr; const value; store`.
                    let (Op::Const(addr), Op::Const(_)) = (&func.code[pc - 2], &func.code[pc - 1])
                    else {
                        continue;
                    };
                    let lo = addr + *off as u64;
                    let hi = lo + super::range::store_len(*kind);
                    if hi <= template_len && !covered(lo, hi) {
                        out.push(Diagnostic {
                            severity: Severity::Warn,
                            func: Some(fidx as u32),
                            pc: Some(pc as u32),
                            message: format!(
                                "store into [{lo}, {hi}) hits the template image span but \
                                 no data segment initialized it, before any load runs — \
                                 suspicious static address"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}
