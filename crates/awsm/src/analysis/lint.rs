//! Structural lints that need no dataflow: functions that trap on entry,
//! functions no entry path can reach, branches whose condition is a
//! literal constant, and locals that are written but never read.

use super::{Diagnostic, Severity};
use crate::code::{CompiledModule, Op};
use std::collections::HashSet;

pub(super) fn structural(m: &CompiledModule, reachable: &HashSet<u32>, out: &mut Vec<Diagnostic>) {
    let ni = m.num_imports();
    let exported: HashSet<u32> = m
        .exports
        .values()
        .filter(|&&idx| idx >= ni)
        .map(|&idx| idx - ni)
        .collect();

    for (fidx, func) in m.funcs.iter().enumerate() {
        let fidx = fidx as u32;
        // `unreachable` as the first instruction: the function traps the
        // moment it is entered. Fatal if it is an entry point; otherwise it
        // may legitimately be a trap stub (e.g. an abort thunk), so warn.
        if matches!(func.code.first(), Some(Op::Unreachable)) {
            let name = func.name.as_deref().unwrap_or("<anon>");
            out.push(Diagnostic {
                severity: if exported.contains(&fidx) {
                    Severity::Error
                } else {
                    Severity::Warn
                },
                func: Some(fidx),
                pc: Some(0),
                message: if exported.contains(&fidx) {
                    format!("exported function `{name}` traps unconditionally on entry")
                } else {
                    format!("function `{name}` traps unconditionally on entry")
                },
            });
        }

        if !reachable.contains(&fidx) {
            let name = func.name.as_deref().unwrap_or("<anon>");
            out.push(Diagnostic {
                severity: Severity::Warn,
                func: Some(fidx),
                pc: None,
                message: format!(
                    "function `{name}` is unreachable from every export and table entry"
                ),
            });
        }
    }
}

/// Value-level lints that run on the pre-optimization code, so they flag
/// what the guest author wrote (the optimizer would erase the evidence):
/// constant-condition conditional branches and never-read locals.
pub(super) fn value_lints(m: &CompiledModule, out: &mut Vec<Diagnostic>) {
    for (fidx, func) in m.funcs.iter().enumerate() {
        let fidx = fidx as u32;
        let name = func.name.as_deref().unwrap_or("<anon>");

        // A literal constant feeding `br_if`/`br_if_z`: one arm of the
        // branch is statically dead.
        for (pc, win) in func.code.windows(2).enumerate() {
            if let [Op::Const(c), cond] = win {
                let taken = match cond {
                    Op::BrIf(_) => Some(*c as u32 != 0),
                    Op::BrIfZ(_) => Some(*c as u32 == 0),
                    _ => None,
                };
                if let Some(taken) = taken {
                    out.push(Diagnostic {
                        severity: Severity::Warn,
                        func: Some(fidx),
                        pc: Some(pc as u32 + 1),
                        message: format!(
                            "branch is statically dead: condition is always {} in `{name}`",
                            if taken { "taken" } else { "false" }
                        ),
                    });
                }
            }
        }

        // Declared locals written but never read. Parameters are exempt
        // (callers populate them; ignoring an argument is routine).
        let n = func.nlocals as usize;
        let mut read = vec![false; n];
        let mut written = vec![false; n];
        let mark = |v: &mut Vec<bool>, l: u32| {
            if let Some(slot) = v.get_mut(l as usize) {
                *slot = true;
            }
        };
        for op in &func.code {
            match op {
                Op::LocalGet(l) | Op::BinRL(_, l) | Op::LoadL(_, l, _) | Op::LoadLNc(_, l, _) => {
                    mark(&mut read, *l)
                }
                Op::LocalSet(l) => mark(&mut written, *l),
                Op::LocalTee(l) => mark(&mut written, *l),
                Op::IncI32(l, _) => {
                    mark(&mut read, *l);
                    mark(&mut written, *l);
                }
                Op::Bin2L(_, a, b) => {
                    mark(&mut read, *a);
                    mark(&mut read, *b);
                }
                Op::Bin2LS(_, a, b, d) => {
                    mark(&mut read, *a);
                    mark(&mut read, *b);
                    mark(&mut written, *d);
                }
                _ => {}
            }
        }
        for l in func.nparams as usize..n {
            if written[l] && !read[l] {
                out.push(Diagnostic {
                    severity: Severity::Warn,
                    func: Some(fidx),
                    pc: None,
                    message: format!("local {l} in `{name}` is written but never read"),
                });
            }
        }
    }
}
