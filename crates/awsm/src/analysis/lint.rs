//! Structural lints that need no dataflow: functions that trap on entry and
//! functions no entry path can reach.

use super::{Diagnostic, Severity};
use crate::code::{CompiledModule, Op};
use std::collections::HashSet;

pub(super) fn structural(m: &CompiledModule, reachable: &HashSet<u32>, out: &mut Vec<Diagnostic>) {
    let ni = m.num_imports();
    let exported: HashSet<u32> = m
        .exports
        .values()
        .filter(|&&idx| idx >= ni)
        .map(|&idx| idx - ni)
        .collect();

    for (fidx, func) in m.funcs.iter().enumerate() {
        let fidx = fidx as u32;
        // `unreachable` as the first instruction: the function traps the
        // moment it is entered. Fatal if it is an entry point; otherwise it
        // may legitimately be a trap stub (e.g. an abort thunk), so warn.
        if matches!(func.code.first(), Some(Op::Unreachable)) {
            let name = func.name.as_deref().unwrap_or("<anon>");
            out.push(Diagnostic {
                severity: if exported.contains(&fidx) {
                    Severity::Error
                } else {
                    Severity::Warn
                },
                func: Some(fidx),
                pc: Some(0),
                message: if exported.contains(&fidx) {
                    format!("exported function `{name}` traps unconditionally on entry")
                } else {
                    format!("function `{name}` traps unconditionally on entry")
                },
            });
        }

        if !reachable.contains(&fidx) {
            let name = func.name.as_deref().unwrap_or("<anon>");
            out.push(Diagnostic {
                severity: Severity::Warn,
                func: Some(fidx),
                pc: None,
                message: format!(
                    "function `{name}` is unreachable from every export and table entry"
                ),
            });
        }
    }
}
