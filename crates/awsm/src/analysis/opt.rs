//! Translate-time dataflow optimizer with translation-validation
//! certificates.
//!
//! The pipeline runs over the flat pre-resolved IR *before* fuel
//! instrumentation and rewrites each body in place:
//!
//! 1. **Sparse constant folding/propagation** through locals
//!    ([`const_prop_round`]): a block-local abstract stack plus a
//!    per-local constant lattice, iterated to a fixpoint over the same
//!    basic-block partition the cost pass uses. Folds only fire when
//!    [`crate::numeric`] evaluates the op without trapping, so a window
//!    that would trap is left untouched.
//! 2. **Constant-condition branch simplification**: `BrIf`/`BrIfZ` (and
//!    `BrTable`) whose operand is a known constant produced by the
//!    immediately preceding op become an unconditional `Br` or vanish.
//! 3. **Dead-code elimination** ([`dce`]): ops unreached by the stack
//!    height flow become `Nop(0)` and are later compacted away.
//! 4. **Fusion** ([`fuse`]): the classic super-instruction windows
//!    (`Bin2LS`, `IncI32`, `Bin2L`, `LoadL`, `BinRC`, `BinRL`,
//!    `i32.eqz`+`BrIf`) are re-formed on the optimized stream.
//! 5. **Dominating-check elimination** ([`elide_dominated`]): a forward
//!    must-analysis over memory-length facts converts bounds-checked
//!    accesses that are covered on every path into their `*Nc` forms,
//!    emitting one [`OptClaim`] per conversion.
//!
//! Every rewrite is **fuel-exact**: erased ops leave behind an
//! [`Op::Nop`] carrying the erased weight (zero-weight pads are removed
//! by compaction), so the naive tier charges the same fuel on the
//! optimized body as on the original along every executed path, and the
//! cost certificate is re-derived from the final stream rather than
//! patched.
//!
//! [`validate`] is the translation-validation half: an independent pass
//! that re-checks stack-effect consistency, reconstructs the fuel
//! instrumentation from scratch, re-derives coverage for every elision
//! claim, and cross-checks the `code`/`code_static` alignment. The
//! registry only accepts an optimized module when `validate` passes;
//! otherwise [`revert_optimizations`] restores the preserved
//! unoptimized bodies and re-runs the analysis with optimization off.

use std::collections::HashMap;

use super::cost;
use crate::code::{CompiledModule, NumBin, NumUn, Op};

// ---------------------------------------------------------------------------
// Certificate types
// ---------------------------------------------------------------------------

/// Why an elided bounds check is redundant: the dominating facts prove
/// `mem_len >= end` (absolute) or `mem_len >= value(local) + end`
/// (relative to a local still holding the same value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimBase {
    /// The access ends at a constant address: `mem_len >= end` held on
    /// every path reaching the site.
    Const { end: u64 },
    /// The access address is `local + (end - len)`: a dominating access
    /// through the same (unwritten) local proved `mem_len >= local + end`.
    Local { local: u32, end: u64 },
}

/// One elided bounds check in `code_static`, keyed by its
/// post-instrumentation pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptClaim {
    /// Pc of the `*Nc` op in the shipped `code_static`.
    pub pc: u32,
    /// The dominating fact that covers it.
    pub base: ClaimBase,
}

/// Per-function slice of the optimization certificate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptFuncReport {
    /// Flat ops before optimization (pre-instrumentation).
    pub ops_before: u32,
    /// Flat ops after optimization (pre-instrumentation).
    pub ops_after: u32,
    /// Constant folds applied (including `local.get` materializations).
    pub folded: u32,
    /// Constant-condition branches simplified.
    pub branches_simplified: u32,
    /// Dead ops removed.
    pub dce_ops: u32,
    /// Super-instruction windows fused.
    pub fused: u32,
    /// Dominated bounds checks elided from `code_static`.
    pub claims: Vec<OptClaim>,
    /// `Op::Fuel` sites the unoptimized body would carry.
    pub fuel_sites_before: u32,
    /// `Op::Fuel` sites the optimized body carries.
    pub fuel_sites_after: u32,
}

/// Module-level optimization certificate, stored in
/// [`AnalysisReport::opt`](super::AnalysisReport::opt).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptReport {
    /// One entry per local function, in index order.
    pub funcs: Vec<OptFuncReport>,
    /// Sum of [`OptFuncReport::ops_before`].
    pub ops_before: u32,
    /// Sum of [`OptFuncReport::ops_after`].
    pub ops_after: u32,
    /// Total constant folds.
    pub folded: u32,
    /// Total branch simplifications.
    pub branches_simplified: u32,
    /// Total dead ops removed.
    pub dce_ops: u32,
    /// Total fusion windows formed.
    pub fused: u32,
    /// Total dominated bounds checks elided.
    pub checks_elided: u32,
    /// Total fuel charge sites merged away relative to the unoptimized
    /// instrumentation.
    pub fuel_sites_merged: u32,
}

// ---------------------------------------------------------------------------
// Shared structural helpers
// ---------------------------------------------------------------------------

/// Call arities snapshotted from the module so the optimizer can walk
/// bodies while holding a mutable borrow on them.
pub(super) struct Arity {
    funcs: Vec<(u32, bool)>,
    hosts: Vec<(u32, bool)>,
    types: HashMap<u32, (u32, bool)>,
}

impl Arity {
    pub(super) fn build(m: &CompiledModule) -> Arity {
        let mut types = HashMap::new();
        for f in &m.funcs {
            types.insert(f.type_id, (f.nparams, f.has_result));
        }
        for h in &m.host_funcs {
            types.insert(h.type_id, (h.nparams, h.has_result));
        }
        Arity {
            funcs: m.funcs.iter().map(|f| (f.nparams, f.has_result)).collect(),
            hosts: m
                .host_funcs
                .iter()
                .map(|h| (h.nparams, h.has_result))
                .collect(),
            types,
        }
    }
}

/// `(pops, pushes)` of a non-control op. Control transfers and calls are
/// handled explicitly by the walkers.
fn stack_effect(op: &Op) -> (u32, u32) {
    match op {
        Op::Drop | Op::LocalSet(_) | Op::GlobalSet(_) => (1, 0),
        Op::Select => (3, 1),
        Op::LocalGet(_)
        | Op::GlobalGet(_)
        | Op::MemorySize
        | Op::Const(_)
        | Op::Bin2L(..)
        | Op::LoadL(..)
        | Op::LoadLNc(..) => (0, 1),
        Op::LocalTee(_)
        | Op::Load(..)
        | Op::LoadNc(..)
        | Op::MemoryGrow
        | Op::Un(_)
        | Op::BinRL(..)
        | Op::BinRC(..) => (1, 1),
        Op::Store(..) | Op::StoreNc(..) => (2, 0),
        Op::Bin(_) => (2, 1),
        Op::Bin2LS(..) | Op::IncI32(..) | Op::Fuel(_) | Op::Nop(_) => (0, 0),
        Op::Unreachable
        | Op::Br(_)
        | Op::BrIf(_)
        | Op::BrIfZ(_)
        | Op::BrTable(_)
        | Op::Return
        | Op::Call(_)
        | Op::CallHost(_)
        | Op::CallIndirect(_) => (0, 0),
    }
}

/// Basic-block leaders: entry, branch targets, and the op after any
/// terminator — the same partition [`cost::instrument`] charges over.
fn leaders(code: &[Op]) -> Vec<bool> {
    let n = code.len();
    let mut lead = vec![false; n];
    if n > 0 {
        lead[0] = true;
    }
    for (pc, op) in code.iter().enumerate() {
        if cost::is_terminator(op) && pc + 1 < n {
            lead[pc + 1] = true;
        }
        cost::for_each_target(op, |t| lead[t as usize] = true);
    }
    lead
}

fn remap_targets(code: &mut [Op], map: &[u32]) {
    for op in code {
        match op {
            Op::Br(b) | Op::BrIf(b) | Op::BrIfZ(b) => b.target = map[b.target as usize],
            Op::BrTable(p) => {
                for t in &mut p.targets {
                    t.target = map[t.target as usize];
                }
                p.default.target = map[p.default.target as usize];
            }
            _ => {}
        }
    }
}

/// Fallible operand-height dataflow, mirroring the trusted computation
/// in `analysis::stack` but reporting conflicts instead of asserting.
/// Returns the height *entering* each pc (None = unreachable) and the
/// maximum height observed.
fn flow_heights(
    code: &[Op],
    ar: &Arity,
    has_result: bool,
) -> Result<(Vec<Option<u32>>, u32), String> {
    let n = code.len();
    let mut heights: Vec<Option<u32>> = vec![None; n];
    let mut hmax = 0u32;
    if n == 0 {
        return Ok((heights, 0));
    }
    let mut work: Vec<usize> = Vec::new();
    let flow = |pc: usize,
                h: u32,
                heights: &mut Vec<Option<u32>>,
                work: &mut Vec<usize>|
     -> Result<(), String> {
        if pc >= n {
            return Ok(());
        }
        match heights[pc] {
            Some(prev) if prev != h => {
                Err(format!("operand height conflict at pc {pc}: {prev} vs {h}"))
            }
            Some(_) => Ok(()),
            None => {
                heights[pc] = Some(h);
                work.push(pc);
                Ok(())
            }
        }
    };
    flow(0, 0, &mut heights, &mut work)?;
    while let Some(pc) = work.pop() {
        let h = heights[pc].unwrap();
        hmax = hmax.max(h);
        let under = |need: u32| -> Result<(), String> {
            if h < need {
                Err(format!(
                    "operand underflow at pc {pc}: have {h}, need {need}"
                ))
            } else {
                Ok(())
            }
        };
        match &code[pc] {
            Op::Unreachable => {}
            Op::Return => under(has_result as u32)?,
            Op::Br(b) => {
                flow(
                    b.target as usize,
                    b.height + b.keep as u32,
                    &mut heights,
                    &mut work,
                )?;
            }
            Op::BrIf(b) | Op::BrIfZ(b) => {
                under(1)?;
                flow(
                    b.target as usize,
                    b.height + b.keep as u32,
                    &mut heights,
                    &mut work,
                )?;
                flow(pc + 1, h - 1, &mut heights, &mut work)?;
            }
            Op::BrTable(p) => {
                under(1)?;
                for t in p.targets.iter().chain(std::iter::once(&p.default)) {
                    flow(
                        t.target as usize,
                        t.height + t.keep as u32,
                        &mut heights,
                        &mut work,
                    )?;
                }
            }
            Op::Call(f) => {
                let (np, res) = *ar
                    .funcs
                    .get(*f as usize)
                    .ok_or_else(|| format!("call to unknown function {f}"))?;
                under(np)?;
                flow(pc + 1, h - np + res as u32, &mut heights, &mut work)?;
            }
            Op::CallHost(hf) => {
                let (np, res) = *ar
                    .hosts
                    .get(*hf as usize)
                    .ok_or_else(|| format!("call to unknown host function {hf}"))?;
                under(np)?;
                flow(pc + 1, h - np + res as u32, &mut heights, &mut work)?;
            }
            Op::CallIndirect(tid) => {
                under(1)?;
                // Unknown type id: no compatible callee can exist, the
                // call traps — no fallthrough edge (mirrors `stack.rs`).
                if let Some(&(np, res)) = ar.types.get(tid) {
                    under(np + 1)?;
                    flow(pc + 1, h - np - 1 + res as u32, &mut heights, &mut work)?;
                }
            }
            op => {
                let (pops, pushes) = stack_effect(op);
                under(pops)?;
                let after = h - pops + pushes;
                hmax = hmax.max(after);
                flow(pc + 1, after, &mut heights, &mut work)?;
            }
        }
    }
    Ok((heights, hmax))
}

// ---------------------------------------------------------------------------
// Sparse constant propagation
// ---------------------------------------------------------------------------

/// Per-local constant lattice. Unvisited blocks are absent from the
/// state map entirely, so no bottom element is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LV {
    K(u64),
    Top,
}

impl LV {
    fn join(self, other: LV) -> LV {
        match (self, other) {
            (LV::K(a), LV::K(b)) if a == b => LV::K(a),
            _ => LV::Top,
        }
    }
    fn as_k(self) -> Option<u64> {
        match self {
            LV::K(c) => Some(c),
            LV::Top => None,
        }
    }
}

/// Abstract stack slot: a possibly-known value, plus the pc of the
/// `Const` op that pushed it (when that op is still in place and inside
/// the current block), so rewrites can erase the producer.
#[derive(Debug, Clone, Copy)]
struct SV {
    k: Option<u64>,
    cpc: Option<usize>,
}

impl SV {
    const UNKNOWN: SV = SV { k: None, cpc: None };
}

#[derive(Default)]
struct RoundStats {
    folded: u32,
    branches: u32,
}

fn pop(stack: &mut Vec<SV>) -> SV {
    stack.pop().unwrap_or(SV::UNKNOWN)
}

/// Walk one basic block from `start`, transferring `locals` through it.
/// In rewrite mode, apply fuel-exact strength reductions in place.
/// Returns the block starts this block flows into (ignored in rewrite
/// mode).
fn walk_block(
    code: &mut [Op],
    start: usize,
    lead: &[bool],
    locals: &mut [LV],
    rewrite: bool,
    stats: &mut RoundStats,
    ar: &Arity,
) -> Vec<usize> {
    let n = code.len();
    let mut stack: Vec<SV> = Vec::new();
    let mut pc = start;
    loop {
        let op = code[pc].clone();
        match op {
            // -- terminators: emit edges and stop -------------------------
            Op::Unreachable | Op::Return => return Vec::new(),
            Op::Br(b) => return vec![b.target as usize],
            Op::BrIf(ref b) | Op::BrIfZ(ref b) => {
                let c = pop(&mut stack);
                if rewrite && pc >= 1 && c.cpc == Some(pc - 1) {
                    if let Some(cv) = c.k {
                        let taken = match op {
                            Op::BrIf(_) => cv as u32 != 0,
                            _ => cv as u32 == 0,
                        };
                        code[pc - 1] = Op::Nop(0);
                        // `BrIf` weighs 1; the untaken form keeps the
                        // charge on a live pad, the taken form moves it
                        // onto the equal-weight `Br`.
                        code[pc] = if taken { Op::Br(b.clone()) } else { Op::Nop(1) };
                        stats.branches += 1;
                    }
                }
                let mut edges = vec![b.target as usize];
                if pc + 1 < n {
                    edges.push(pc + 1);
                }
                return edges;
            }
            Op::BrTable(ref p) => {
                let c = pop(&mut stack);
                if rewrite && pc >= 1 && c.cpc == Some(pc - 1) {
                    if let Some(cv) = c.k {
                        let chosen = p
                            .targets
                            .get(cv as u32 as usize)
                            .unwrap_or(&p.default)
                            .clone();
                        // `Const`(0) + `BrTable`(2) becomes
                        // `Nop`(1) + `Br`(1): totals preserved.
                        code[pc - 1] = Op::Nop(1);
                        code[pc] = Op::Br(chosen);
                        stats.branches += 1;
                    }
                }
                let mut edges: Vec<usize> = p.targets.iter().map(|t| t.target as usize).collect();
                edges.push(p.default.target as usize);
                return edges;
            }
            Op::Call(f) => {
                let (np, res) = ar.funcs[f as usize];
                for _ in 0..np {
                    pop(&mut stack);
                }
                let _ = res;
                return if pc + 1 < n { vec![pc + 1] } else { Vec::new() };
            }
            Op::CallHost(hf) => {
                let (np, _) = ar.hosts[hf as usize];
                for _ in 0..np {
                    pop(&mut stack);
                }
                return if pc + 1 < n { vec![pc + 1] } else { Vec::new() };
            }
            Op::CallIndirect(tid) => {
                pop(&mut stack);
                if let Some(&(np, _)) = ar.types.get(&tid) {
                    for _ in 0..np {
                        pop(&mut stack);
                    }
                    return if pc + 1 < n { vec![pc + 1] } else { Vec::new() };
                }
                // Unknown type: the call can only trap.
                return Vec::new();
            }

            // -- straight-line transfer ----------------------------------
            Op::Const(c) => stack.push(SV {
                k: Some(c),
                cpc: Some(pc),
            }),
            Op::LocalGet(l) => {
                let known = locals[l as usize].as_k();
                if rewrite {
                    if let Some(c) = known {
                        // Both ops weigh 0; the materialized constant
                        // becomes an erasable producer for later folds.
                        code[pc] = Op::Const(c);
                        stats.folded += 1;
                        stack.push(SV {
                            k: Some(c),
                            cpc: Some(pc),
                        });
                    } else {
                        stack.push(SV::UNKNOWN);
                    }
                } else {
                    stack.push(SV {
                        k: known,
                        cpc: None,
                    });
                }
            }
            Op::LocalSet(l) => {
                let v = pop(&mut stack);
                locals[l as usize] = v.k.map(LV::K).unwrap_or(LV::Top);
            }
            Op::LocalTee(l) => {
                let v = pop(&mut stack);
                locals[l as usize] = v.k.map(LV::K).unwrap_or(LV::Top);
                // The value survives but its producer no longer feeds
                // the top of stack exclusively; drop the erase handle.
                stack.push(SV { k: v.k, cpc: None });
            }
            Op::Drop => {
                let v = pop(&mut stack);
                if rewrite && pc >= 1 && v.cpc == Some(pc - 1) {
                    code[pc - 1] = Op::Nop(0);
                    code[pc] = Op::Nop(0);
                    stats.folded += 1;
                }
            }
            Op::Select => {
                pop(&mut stack);
                pop(&mut stack);
                pop(&mut stack);
                stack.push(SV::UNKNOWN);
            }
            Op::GlobalGet(_) | Op::MemorySize => stack.push(SV::UNKNOWN),
            Op::GlobalSet(_) => {
                pop(&mut stack);
            }
            Op::Load(..) | Op::LoadNc(..) | Op::MemoryGrow => {
                pop(&mut stack);
                stack.push(SV::UNKNOWN);
            }
            Op::LoadL(..) | Op::LoadLNc(..) => stack.push(SV::UNKNOWN),
            Op::Store(..) | Op::StoreNc(..) => {
                pop(&mut stack);
                pop(&mut stack);
            }
            Op::Bin(b) => {
                let y = pop(&mut stack);
                let x = pop(&mut stack);
                let mut out = SV::UNKNOWN;
                if let (Some(xv), Some(yv)) = (x.k, y.k) {
                    if let Ok(r) = crate::numeric::bin(b, xv, yv) {
                        if rewrite && pc >= 2 && y.cpc == Some(pc - 1) && x.cpc == Some(pc - 2) {
                            code[pc - 2] = Op::Nop(0);
                            code[pc - 1] = Op::Nop(cost::bin_cost(b));
                            code[pc] = Op::Const(r);
                            stats.folded += 1;
                            out = SV {
                                k: Some(r),
                                cpc: Some(pc),
                            };
                        } else {
                            out = SV {
                                k: Some(r),
                                cpc: None,
                            };
                        }
                    }
                }
                stack.push(out);
            }
            Op::Un(u) => {
                let x = pop(&mut stack);
                let mut out = SV::UNKNOWN;
                if let Some(xv) = x.k {
                    if let Ok(r) = crate::numeric::un(u, xv) {
                        if rewrite && pc >= 1 && x.cpc == Some(pc - 1) {
                            code[pc - 1] = Op::Nop(cost::un_cost(u));
                            code[pc] = Op::Const(r);
                            stats.folded += 1;
                            out = SV {
                                k: Some(r),
                                cpc: Some(pc),
                            };
                        } else {
                            out = SV {
                                k: Some(r),
                                cpc: None,
                            };
                        }
                    }
                }
                stack.push(out);
            }
            Op::BinRC(b, c) => {
                let x = pop(&mut stack);
                let mut out = SV::UNKNOWN;
                if let Some(xv) = x.k {
                    if let Ok(r) = crate::numeric::bin(b, xv, c) {
                        if rewrite && pc >= 1 && x.cpc == Some(pc - 1) {
                            code[pc - 1] = Op::Nop(cost::bin_cost(b));
                            code[pc] = Op::Const(r);
                            stats.folded += 1;
                            out = SV {
                                k: Some(r),
                                cpc: Some(pc),
                            };
                        } else {
                            out = SV {
                                k: Some(r),
                                cpc: None,
                            };
                        }
                    }
                }
                stack.push(out);
            }
            Op::BinRL(b, l) => {
                let x = pop(&mut stack);
                let mut out = SV::UNKNOWN;
                if let (Some(xv), Some(lv)) = (x.k, locals[l as usize].as_k()) {
                    if let Ok(r) = crate::numeric::bin(b, xv, lv) {
                        if rewrite && pc >= 1 && x.cpc == Some(pc - 1) {
                            code[pc - 1] = Op::Nop(cost::bin_cost(b));
                            code[pc] = Op::Const(r);
                            stats.folded += 1;
                            out = SV {
                                k: Some(r),
                                cpc: Some(pc),
                            };
                        } else {
                            out = SV {
                                k: Some(r),
                                cpc: None,
                            };
                        }
                    }
                }
                stack.push(out);
            }
            Op::Bin2L(b, la, lb) => {
                let mut out = SV::UNKNOWN;
                if let (Some(a), Some(bb)) =
                    (locals[la as usize].as_k(), locals[lb as usize].as_k())
                {
                    if let Ok(r) = crate::numeric::bin(b, a, bb) {
                        // No cost-preserving single-slot rewrite exists
                        // (`Bin2L` carries the bin weight); fold the
                        // lattice only.
                        out = SV {
                            k: Some(r),
                            cpc: None,
                        };
                    }
                }
                stack.push(out);
            }
            Op::Bin2LS(b, la, lb, d) => {
                let mut v = LV::Top;
                if let (Some(a), Some(bb)) =
                    (locals[la as usize].as_k(), locals[lb as usize].as_k())
                {
                    if let Ok(r) = crate::numeric::bin(b, a, bb) {
                        v = LV::K(r);
                    }
                }
                locals[d as usize] = v;
            }
            Op::IncI32(l, delta) => {
                locals[l as usize] = match locals[l as usize] {
                    LV::K(v) => LV::K((v as u32).wrapping_add(delta as u32) as u64),
                    LV::Top => LV::Top,
                };
            }
            Op::Fuel(_) | Op::Nop(_) => {}
        }
        // Straight-line op: stop at block boundaries.
        if pc + 1 >= n {
            return Vec::new();
        }
        if lead[pc + 1] {
            return vec![pc + 1];
        }
        pc += 1;
    }
}

/// One round of constant propagation: a fixpoint over per-block local
/// states, then a pc-ordered rewrite sweep over the reachable blocks
/// using the converged states. Returns `(folds, branches_simplified)`.
fn const_prop_round(code: &mut [Op], ar: &Arity, nparams: u32, nlocals: u32) -> (u32, u32) {
    let n = code.len();
    if n == 0 {
        return (0, 0);
    }
    let lead = leaders(code);
    let mut entry = vec![LV::Top; nparams as usize];
    // Declared locals are zero-initialized by the engine.
    entry.resize(nlocals as usize, LV::K(0));

    let mut states: HashMap<usize, Vec<LV>> = HashMap::new();
    let mut work = vec![0usize];
    states.insert(0, entry);
    let mut scratch = RoundStats::default();
    while let Some(b) = work.pop() {
        let mut locals = states[&b].clone();
        let edges = walk_block(code, b, &lead, &mut locals, false, &mut scratch, ar);
        for t in edges {
            match states.get_mut(&t) {
                None => {
                    states.insert(t, locals.clone());
                    work.push(t);
                }
                Some(prev) => {
                    let mut changed = false;
                    for (p, l) in prev.iter_mut().zip(locals.iter()) {
                        let j = p.join(*l);
                        if j != *p {
                            *p = j;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(t);
                    }
                }
            }
        }
    }

    let mut stats = RoundStats::default();
    let mut starts: Vec<usize> = states.keys().copied().collect();
    starts.sort_unstable();
    for b in starts {
        let mut locals = states[&b].clone();
        walk_block(code, b, &lead, &mut locals, true, &mut stats, ar);
    }
    (stats.folded, stats.branches)
}

// ---------------------------------------------------------------------------
// Dead-code elimination and compaction
// ---------------------------------------------------------------------------

/// Replace every op the height flow cannot reach with `Nop(0)`. Dead
/// ops only occur in whole dead blocks (block interiors flow linearly
/// from their leader), so this never changes the fuel charged on any
/// executed path.
fn dce(code: &mut [Op], ar: &Arity, has_result: bool) -> u32 {
    if code.is_empty() {
        return 0;
    }
    let Ok((heights, _)) = flow_heights(code, ar, has_result) else {
        return 0;
    };
    let mut count = 0;
    for (pc, h) in heights.iter().enumerate() {
        if h.is_none() && !matches!(code[pc], Op::Nop(0)) {
            code[pc] = Op::Nop(0);
            count += 1;
        }
    }
    count
}

/// Remove zero-weight pads. The final op is always kept so every branch
/// target still maps to a valid pc; removed pcs remap to the next
/// survivor, which is semantically identical (a `Nop(0)` only falls
/// through).
fn compact(code: &mut Vec<Op>) {
    let n = code.len();
    if n == 0 {
        return;
    }
    let mut map = vec![0u32; n];
    let mut keep = vec![true; n];
    let mut idx = 0u32;
    for pc in 0..n {
        keep[pc] = !(matches!(code[pc], Op::Nop(0)) && pc + 1 < n);
        map[pc] = idx;
        if keep[pc] {
            idx += 1;
        }
    }
    let mut out: Vec<Op> = Vec::with_capacity(idx as usize);
    for pc in 0..n {
        if keep[pc] {
            out.push(code[pc].clone());
        }
    }
    remap_targets(&mut out, &map);
    *code = out;
}

// ---------------------------------------------------------------------------
// Super-instruction fusion
// ---------------------------------------------------------------------------

/// Re-form the fused super-instructions on the optimized stream. The
/// fused op lands on the window's last pc (pads before it), so a branch
/// into the window start still observes an equivalent prefix; interior
/// positions must not be leaders.
fn fuse(code: &mut [Op]) -> u32 {
    let n = code.len();
    let lead = leaders(code);
    let clear = |pc: usize, len: usize| (1..len).all(|i| pc + i < n && !lead[pc + i]);
    let mut fused = 0u32;
    let mut pc = 0;
    while pc < n {
        // Window length 4.
        if pc + 3 < n && clear(pc, 4) {
            if let (Op::LocalGet(a), Op::LocalGet(b), Op::Bin(op), Op::LocalSet(d)) =
                (&code[pc], &code[pc + 1], &code[pc + 2], &code[pc + 3])
            {
                let (a, b, op, d) = (*a, *b, *op, *d);
                code[pc] = Op::Nop(0);
                code[pc + 1] = Op::Nop(0);
                code[pc + 2] = Op::Nop(0);
                code[pc + 3] = Op::Bin2LS(op, a, b, d);
                fused += 1;
                pc += 4;
                continue;
            }
            if let (Op::LocalGet(l), Op::Const(c), Op::Bin(NumBin::I32Add), Op::LocalSet(l2)) =
                (&code[pc], &code[pc + 1], &code[pc + 2], &code[pc + 3])
            {
                if l == l2 && *c <= u32::MAX as u64 {
                    let (l, c) = (*l, *c);
                    code[pc] = Op::Nop(0);
                    code[pc + 1] = Op::Nop(0);
                    code[pc + 2] = Op::Nop(0);
                    code[pc + 3] = Op::IncI32(l, c as u32 as i32);
                    fused += 1;
                    pc += 4;
                    continue;
                }
            }
        }
        // Window length 3.
        if pc + 2 < n && clear(pc, 3) {
            if let (Op::LocalGet(a), Op::LocalGet(b), Op::Bin(op)) =
                (&code[pc], &code[pc + 1], &code[pc + 2])
            {
                let (a, b, op) = (*a, *b, *op);
                code[pc] = Op::Nop(0);
                code[pc + 1] = Op::Nop(0);
                code[pc + 2] = Op::Bin2L(op, a, b);
                fused += 1;
                pc += 3;
                continue;
            }
        }
        // Window length 2.
        if pc + 1 < n && clear(pc, 2) {
            let replacement = match (&code[pc], &code[pc + 1]) {
                (Op::LocalGet(l), Op::Load(k, off)) => Some(Op::LoadL(*k, *l, *off)),
                (Op::Const(c), Op::Bin(op)) => Some(Op::BinRC(*op, *c)),
                (Op::LocalGet(l), Op::Bin(op)) => Some(Op::BinRL(*op, *l)),
                // `i32.eqz` weighs 0 and both conditional forms weigh 1.
                (Op::Un(NumUn::I32Eqz), Op::BrIf(b)) => Some(Op::BrIfZ(b.clone())),
                (Op::Un(NumUn::I32Eqz), Op::BrIfZ(b)) => Some(Op::BrIf(b.clone())),
                _ => None,
            };
            if let Some(r) = replacement {
                code[pc] = Op::Nop(0);
                code[pc + 1] = r;
                fused += 1;
                pc += 2;
                continue;
            }
        }
        pc += 1;
    }
    fused
}

// ---------------------------------------------------------------------------
// Dominating-check elimination
// ---------------------------------------------------------------------------

/// Must-facts about memory length at a program point: `mem_len >= hi`,
/// and for each mapped local `l`, `mem_len >= value(l) as u32 + rel[l]`.
#[derive(Debug, Clone, PartialEq)]
struct Cov {
    hi: u64,
    rel: HashMap<u32, u64>,
}

impl Cov {
    fn join_from(&mut self, other: &Cov) -> bool {
        let mut changed = false;
        let hi = self.hi.min(other.hi);
        if hi != self.hi {
            self.hi = hi;
            changed = true;
        }
        let before = self.rel.len();
        self.rel.retain(|l, v| match other.rel.get(l) {
            Some(&o) => {
                if o < *v {
                    *v = o;
                    changed = true;
                }
                true
            }
            None => false,
        });
        changed || self.rel.len() != before
    }
}

/// Block-local abstract address slot for the coverage walk.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ASlot {
    K(u64),
    L(u32),
    U,
}

fn apop(stack: &mut Vec<ASlot>) -> ASlot {
    stack.pop().unwrap_or(ASlot::U)
}

/// Walk one block for the coverage analysis, reporting every memory
/// access (checked or not) as `(pc, provable base, covered-before-gen)`.
fn cov_walk(
    code: &[Op],
    start: usize,
    lead: &[bool],
    state: &mut Cov,
    ar: &Arity,
    mut on_access: impl FnMut(usize, Option<ClaimBase>, bool),
) -> Vec<usize> {
    let n = code.len();
    let mut stack: Vec<ASlot> = Vec::new();
    let kill = |l: u32, state: &mut Cov, stack: &mut Vec<ASlot>| {
        state.rel.remove(&l);
        for s in stack.iter_mut() {
            if *s == ASlot::L(l) {
                *s = ASlot::U;
            }
        }
    };
    let access = |pc: usize,
                  addr: ASlot,
                  off: u32,
                  len: u64,
                  state: &mut Cov,
                  on_access: &mut dyn FnMut(usize, Option<ClaimBase>, bool)| {
        match addr {
            ASlot::K(c) => {
                let end = (c as u32 as u64) + off as u64 + len;
                let covered = end <= state.hi;
                on_access(pc, Some(ClaimBase::Const { end }), covered);
                state.hi = state.hi.max(end);
            }
            ASlot::L(l) => {
                let end = off as u64 + len;
                let covered = state.rel.get(&l).is_some_and(|&y| y >= end);
                on_access(pc, Some(ClaimBase::Local { local: l, end }), covered);
                let e = state.rel.entry(l).or_insert(0);
                *e = (*e).max(end);
            }
            ASlot::U => on_access(pc, None, false),
        }
    };
    let mut pc = start;
    loop {
        let op = &code[pc];
        match op {
            Op::Unreachable | Op::Return => return Vec::new(),
            Op::Br(b) => return vec![b.target as usize],
            Op::BrIf(b) | Op::BrIfZ(b) => {
                apop(&mut stack);
                let mut edges = vec![b.target as usize];
                if pc + 1 < n {
                    edges.push(pc + 1);
                }
                return edges;
            }
            Op::BrTable(p) => {
                apop(&mut stack);
                let mut edges: Vec<usize> = p.targets.iter().map(|t| t.target as usize).collect();
                edges.push(p.default.target as usize);
                return edges;
            }
            // Calls cannot shrink memory and locals are frame-private:
            // no facts die across the boundary.
            Op::Call(f) => {
                let (np, _) = ar.funcs[*f as usize];
                for _ in 0..np {
                    apop(&mut stack);
                }
                return if pc + 1 < n { vec![pc + 1] } else { Vec::new() };
            }
            Op::CallHost(h) => {
                let (np, _) = ar.hosts[*h as usize];
                for _ in 0..np {
                    apop(&mut stack);
                }
                return if pc + 1 < n { vec![pc + 1] } else { Vec::new() };
            }
            Op::CallIndirect(tid) => {
                apop(&mut stack);
                if let Some(&(np, _)) = ar.types.get(tid) {
                    for _ in 0..np {
                        apop(&mut stack);
                    }
                    return if pc + 1 < n { vec![pc + 1] } else { Vec::new() };
                }
                return Vec::new();
            }

            Op::Const(c) => stack.push(ASlot::K(*c)),
            Op::LocalGet(l) => stack.push(ASlot::L(*l)),
            Op::LocalSet(l) => {
                apop(&mut stack);
                kill(*l, state, &mut stack);
            }
            Op::LocalTee(l) => {
                let v = apop(&mut stack);
                kill(*l, state, &mut stack);
                // After the tee, the top equals the new value of `l`.
                stack.push(match v {
                    ASlot::K(c) => ASlot::K(c),
                    _ => ASlot::L(*l),
                });
            }
            Op::IncI32(l, _) => kill(*l, state, &mut stack),
            Op::Bin2LS(_, _, _, d) => kill(*d, state, &mut stack),
            Op::Load(k, off) | Op::LoadNc(k, off) => {
                let a = apop(&mut stack);
                access(
                    pc,
                    a,
                    *off,
                    super::range::load_len(*k),
                    state,
                    &mut on_access,
                );
                stack.push(ASlot::U);
            }
            Op::LoadL(k, l, off) | Op::LoadLNc(k, l, off) => {
                access(
                    pc,
                    ASlot::L(*l),
                    *off,
                    super::range::load_len(*k),
                    state,
                    &mut on_access,
                );
                stack.push(ASlot::U);
            }
            Op::Store(k, off) | Op::StoreNc(k, off) => {
                apop(&mut stack); // value
                let a = apop(&mut stack);
                access(
                    pc,
                    a,
                    *off,
                    super::range::store_len(*k),
                    state,
                    &mut on_access,
                );
            }
            // Memory only grows; existing lower bounds stay valid.
            Op::MemoryGrow => {
                apop(&mut stack);
                stack.push(ASlot::U);
            }
            other => {
                let (pops, pushes) = stack_effect(other);
                for _ in 0..pops {
                    apop(&mut stack);
                }
                for _ in 0..pushes {
                    stack.push(ASlot::U);
                }
            }
        }
        if pc + 1 >= n {
            return Vec::new();
        }
        if lead[pc + 1] {
            return vec![pc + 1];
        }
        pc += 1;
    }
}

/// All-paths coverage: which access sites are dominated by facts that
/// already prove them in-bounds. Runs identically on pre- and
/// post-instrumentation code (`Fuel`/`Nop` are transparent and the
/// block partition is preserved by instrumentation).
fn covered_accesses(code: &[Op], min_bytes: u64, ar: &Arity) -> HashMap<usize, ClaimBase> {
    let n = code.len();
    let mut out = HashMap::new();
    if n == 0 {
        return out;
    }
    let lead = leaders(code);
    let entry = Cov {
        hi: min_bytes,
        rel: HashMap::new(),
    };
    let mut states: HashMap<usize, Cov> = HashMap::new();
    states.insert(0, entry);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut state = states[&b].clone();
        let edges = cov_walk(code, b, &lead, &mut state, ar, |_, _, _| {});
        for t in edges {
            match states.get_mut(&t) {
                None => {
                    states.insert(t, state.clone());
                    work.push(t);
                }
                Some(prev) => {
                    if prev.join_from(&state) {
                        work.push(t);
                    }
                }
            }
        }
    }
    let mut starts: Vec<usize> = states.keys().copied().collect();
    starts.sort_unstable();
    for b in starts {
        let mut state = states[&b].clone();
        cov_walk(code, b, &lead, &mut state, ar, |pc, base, covered| {
            if covered {
                if let Some(base) = base {
                    out.insert(pc, base);
                }
            }
        });
    }
    out
}

/// Convert every dominated, still-checked access in `code` to its
/// unchecked form and return one claim per conversion (pre-
/// instrumentation pcs; the caller relocates them after instrumenting).
pub(super) fn elide_dominated(code: &mut [Op], min_bytes: u64, ar: &Arity) -> Vec<OptClaim> {
    let cov = covered_accesses(code, min_bytes, ar);
    let mut pcs: Vec<usize> = cov.keys().copied().collect();
    pcs.sort_unstable();
    let mut claims = Vec::new();
    for pc in pcs {
        let converted = match &code[pc] {
            Op::Load(k, off) => Some(Op::LoadNc(*k, *off)),
            Op::LoadL(k, l, off) => Some(Op::LoadLNc(*k, *l, *off)),
            Op::Store(k, off) => Some(Op::StoreNc(*k, *off)),
            _ => None,
        };
        if let Some(nc) = converted {
            code[pc] = nc;
            claims.push(OptClaim {
                pc: pc as u32,
                base: cov[&pc].clone(),
            });
        }
    }
    claims
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Counters from optimizing one body.
#[derive(Debug, Default, Clone, Copy)]
pub(super) struct FuncOptStats {
    pub folded: u32,
    pub branches: u32,
    pub dce_ops: u32,
    pub fused: u32,
}

/// Optimize one body in place: constant propagation + branch
/// simplification + DCE to a (bounded) fixpoint, then compaction and
/// fusion. The body must be pre-instrumentation (no `Fuel` ops).
pub(super) fn optimize_func(
    code: &mut Vec<Op>,
    ar: &Arity,
    nparams: u32,
    nlocals: u32,
    has_result: bool,
) -> FuncOptStats {
    let mut stats = FuncOptStats::default();
    for _ in 0..3 {
        let (folded, branches) = const_prop_round(code, ar, nparams, nlocals);
        let dced = dce(code, ar, has_result);
        stats.folded += folded;
        stats.branches += branches;
        stats.dce_ops += dced;
        if folded == 0 && branches == 0 {
            break;
        }
    }
    compact(code);
    stats.fused = fuse(code);
    compact(code);
    stats
}

// ---------------------------------------------------------------------------
// Translation validation
// ---------------------------------------------------------------------------

/// Remove `Op::Fuel` charges, remapping branch targets onto the op that
/// followed them. Exact inverse of [`cost::instrument`] on instrumented
/// code: targets only ever point at chunk entries, and a chunk entry's
/// `Fuel` maps to the chunk's first real op.
pub(super) fn strip_fuel(code: &[Op]) -> Vec<Op> {
    let mut out: Vec<Op> = Vec::with_capacity(code.len());
    let mut map = vec![0u32; code.len()];
    for (pc, op) in code.iter().enumerate() {
        map[pc] = out.len() as u32;
        if !matches!(op, Op::Fuel(_)) {
            out.push(op.clone());
        }
    }
    remap_targets(&mut out, &map);
    out
}

/// Translation-validation certificate check. Independent of the
/// optimizer's own bookkeeping, this proves for every function:
///
/// * the shipped bodies are stack-effect consistent and stay within the
///   recorded operand bound;
/// * stripping `Fuel` and re-instrumenting reproduces the shipped body
///   bit-for-bit with the recorded cost certificate, so the preemption
///   bound (`max_check_gap`) is re-derived, never assumed;
/// * `code` and `code_static` are aligned op-for-op, differing only in
///   checked→unchecked access forms, each accounted to either the range
///   pass or an [`OptClaim`];
/// * every claim's site is re-proven covered by an independent run of
///   the dominating-fact analysis on the shipped `code_static`.
///
/// Returns `Err` with the first violation; the registry treats that as
/// "discard the optimization" and falls back via
/// [`revert_optimizations`].
pub fn validate(m: &CompiledModule) -> Result<(), String> {
    let report = &m.analysis;
    let Some(opt) = &report.opt else {
        return Ok(());
    };
    let cost_report = report
        .cost
        .as_ref()
        .ok_or("optimized module lacks a cost certificate")?;
    if opt.funcs.len() != m.funcs.len() || report.funcs.len() != m.funcs.len() {
        return Err("certificate function count mismatch".into());
    }
    if cost_report.funcs.len() != m.funcs.len() {
        return Err("cost certificate function count mismatch".into());
    }
    let ar = Arity::build(m);
    let min_bytes = m.memory.map(|s| s.min_pages as u64 * 65536).unwrap_or(0);
    let gap_limit = cost_report.max_check_gap.max(cost::MAX_SINGLE_OP_COST);

    for (fidx, func) in m.funcs.iter().enumerate() {
        let fname = || func.name.clone().unwrap_or_else(|| format!("func[{fidx}]"));
        let fr = &opt.funcs[fidx];
        let summary = &report.funcs[fidx];

        // (a) Stack-effect / type consistency, within the stored bound.
        let (_, hmax) = flow_heights(&func.code, &ar, func.has_result)
            .map_err(|e| format!("{}: {e}", fname()))?;
        if hmax > summary.max_operand_slots {
            return Err(format!(
                "{}: optimized body needs {hmax} operand slots, certificate says {}",
                fname(),
                summary.max_operand_slots
            ));
        }
        if let Some(cs) = &func.code_static {
            let (_, hmax2) = flow_heights(cs, &ar, func.has_result)
                .map_err(|e| format!("{} (static): {e}", fname()))?;
            if hmax2 > summary.max_operand_slots {
                return Err(format!("{} (static): operand bound exceeded", fname()));
            }
        }

        // (b) Fuel instrumentation reconstructs bit-for-bit.
        let stripped = strip_fuel(&func.code);
        let (re, mut fc, _) = cost::instrument(&stripped, cost_report.max_check_gap);
        if re != func.code {
            return Err(format!(
                "{}: fuel instrumentation does not reconstruct the shipped body",
                fname()
            ));
        }
        let stored = &cost_report.funcs[fidx];
        fc.name = stored.name.clone();
        if &fc != stored {
            return Err(format!("{}: cost certificate mismatch", fname()));
        }
        if fc.max_gap > gap_limit {
            return Err(format!(
                "{}: check gap {} exceeds limit {gap_limit}",
                fname(),
                fc.max_gap
            ));
        }

        // (c)+(d) Body alignment and unchecked-access accounting.
        match &func.code_static {
            Some(cs) => {
                if cs.len() != func.code.len() {
                    return Err(format!("{}: static body length mismatch", fname()));
                }
                let mut nc = 0u32;
                for (a, b) in func.code.iter().zip(cs.iter()) {
                    match (a, b) {
                        (x, y) if x == y => {}
                        (Op::Load(k, o), Op::LoadNc(k2, o2)) if k == k2 && o == o2 => nc += 1,
                        (Op::LoadL(k, l, o), Op::LoadLNc(k2, l2, o2))
                            if k == k2 && l == l2 && o == o2 =>
                        {
                            nc += 1
                        }
                        (Op::Store(k, o), Op::StoreNc(k2, o2)) if k == k2 && o == o2 => nc += 1,
                        _ => {
                            return Err(format!(
                                "{}: static body diverges beyond check elision",
                                fname()
                            ))
                        }
                    }
                }
                if nc as usize != summary.elided_sites as usize + fr.claims.len() {
                    return Err(format!(
                        "{}: {nc} unchecked sites but {} range-proven + {} claimed",
                        fname(),
                        summary.elided_sites,
                        fr.claims.len()
                    ));
                }
                // (e) Every claim re-proves under an independent
                // coverage run on the shipped static body.
                if !fr.claims.is_empty() {
                    let cov = covered_accesses(cs, min_bytes, &ar);
                    for claim in &fr.claims {
                        let pc = claim.pc as usize;
                        let is_nc = matches!(
                            cs.get(pc),
                            Some(Op::LoadNc(..) | Op::LoadLNc(..) | Op::StoreNc(..))
                        );
                        if !is_nc {
                            return Err(format!(
                                "{}: claim at pc {pc} is not an unchecked access",
                                fname()
                            ));
                        }
                        match cov.get(&pc) {
                            Some(base) if *base == claim.base => {}
                            _ => {
                                return Err(format!(
                                    "{}: claim at pc {pc} is not dominated by a covering check",
                                    fname()
                                ))
                            }
                        }
                    }
                }
            }
            None => {
                if !fr.claims.is_empty() {
                    return Err(format!(
                        "{}: claims recorded but no static body shipped",
                        fname()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Discard every optimization: restore the preserved unoptimized
/// bodies, drop the static variants, and re-run the full analysis with
/// optimization off so no certificate derived from the rejected bodies
/// survives.
pub fn revert_optimizations(m: &mut CompiledModule, max_check_gap: u32) {
    for f in &mut m.funcs {
        if let Some(orig) = f.code_unopt.take() {
            f.code = orig;
        }
        f.code_static = None;
    }
    m.analysis = Default::default();
    super::analyze(m, max_check_gap, false);
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{Branch, LoadKind, StoreKind};

    fn arity0() -> Arity {
        Arity {
            funcs: Vec::new(),
            hosts: Vec::new(),
            types: HashMap::new(),
        }
    }

    fn total_cost(code: &[Op]) -> u64 {
        code.iter().map(|op| cost::op_cost(op) as u64).sum()
    }

    #[test]
    fn folds_through_locals_cost_exact() {
        // local0 = 2; return local0 + 3
        let mut code = vec![
            Op::Const(2),
            Op::LocalSet(0),
            Op::LocalGet(0),
            Op::Const(3),
            Op::Bin(NumBin::I32Add),
            Op::Return,
        ];
        let before = total_cost(&code);
        let ar = arity0();
        let stats = optimize_func(&mut code, &ar, 0, 1, true);
        assert!(stats.folded > 0);
        assert!(code.contains(&Op::Const(5)), "folded to 5: {code:?}");
        assert!(
            !code.iter().any(|op| matches!(op, Op::Bin(_))),
            "add folded away: {code:?}"
        );
        assert_eq!(total_cost(&code), before, "fuel-exact rewrite");
    }

    #[test]
    fn simplifies_constant_branch_and_removes_dead_block() {
        // br_if(1) over a dead chunk. The dead body reads a parameter so
        // the constant folder cannot erase it first — removal must come
        // from the reachability pass.
        let mut code = vec![
            Op::Const(1),
            Op::BrIf(Branch {
                target: 4,
                height: 0,
                keep: false,
            }),
            Op::LocalGet(0),
            Op::Drop,
            Op::Return,
        ];
        let ar = arity0();
        let stats = optimize_func(&mut code, &ar, 1, 1, false);
        assert!(stats.branches >= 1);
        assert!(stats.dce_ops >= 1);
        assert_eq!(
            code,
            vec![
                Op::Br(Branch {
                    target: 1,
                    height: 0,
                    keep: false
                }),
                Op::Return
            ],
            "dead path removed, branch now unconditional"
        );
        assert_eq!(total_cost(&code), 2, "BrIf(1)+Return(1) preserved");
    }

    #[test]
    fn untaken_branch_keeps_its_charge() {
        let mut code = vec![
            Op::Const(0),
            Op::BrIf(Branch {
                target: 2,
                height: 0,
                keep: false,
            }),
            Op::Return,
        ];
        let before = total_cost(&code);
        let ar = arity0();
        optimize_func(&mut code, &ar, 0, 0, false);
        assert_eq!(total_cost(&code), before);
        assert!(
            !code.iter().any(|op| matches!(op, Op::BrIf(_))),
            "constant condition gone: {code:?}"
        );
    }

    #[test]
    fn fuses_bin2ls_window() {
        let mut code = vec![
            Op::LocalGet(0),
            Op::LocalGet(1),
            Op::Bin(NumBin::I32Add),
            Op::LocalSet(0),
            Op::Return,
        ];
        let before = total_cost(&code);
        let ar = arity0();
        let stats = optimize_func(&mut code, &ar, 2, 2, false);
        assert_eq!(stats.fused, 1);
        assert_eq!(code, vec![Op::Bin2LS(NumBin::I32Add, 0, 1, 0), Op::Return]);
        assert_eq!(total_cost(&code), before);
    }

    #[test]
    fn covered_accesses_const_and_relative() {
        let ar = arity0();
        // store [100..104); load [100..104) — second covered by first.
        let code = vec![
            Op::Const(100),
            Op::Const(7),
            Op::Store(StoreKind::I32, 0),
            Op::Const(100),
            Op::Load(LoadKind::I32, 0),
            Op::Drop,
            Op::Return,
        ];
        let cov = covered_accesses(&code, 0, &ar);
        assert_eq!(cov.get(&4), Some(&ClaimBase::Const { end: 104 }));
        assert!(!cov.contains_key(&2));

        // Relative: load local+4 first proves local+8 ≥ ... no — the
        // wider access (off 4) dominates the narrower (off 0).
        let code = vec![
            Op::LocalGet(0),
            Op::Load(LoadKind::I32, 4),
            Op::Drop,
            Op::LocalGet(0),
            Op::Load(LoadKind::I32, 0),
            Op::Drop,
            Op::Return,
        ];
        let cov = covered_accesses(&code, 0, &ar);
        assert_eq!(cov.get(&4), Some(&ClaimBase::Local { local: 0, end: 4 }));
        assert!(!cov.contains_key(&1));

        // Writing the local kills the fact.
        let code = vec![
            Op::LocalGet(0),
            Op::Load(LoadKind::I32, 4),
            Op::Drop,
            Op::Const(0),
            Op::LocalSet(0),
            Op::LocalGet(0),
            Op::Load(LoadKind::I32, 0),
            Op::Drop,
            Op::Return,
        ];
        let cov = covered_accesses(&code, 0, &ar);
        assert!(!cov.contains_key(&6), "killed by local.set: {cov:?}");
    }

    #[test]
    fn elide_dominated_converts_and_claims() {
        let ar = arity0();
        let mut code = vec![
            Op::LocalGet(0),
            Op::Load(LoadKind::I64, 0),
            Op::Drop,
            Op::LocalGet(0),
            Op::Load(LoadKind::I32, 0),
            Op::Drop,
            Op::Return,
        ];
        let claims = elide_dominated(&mut code, 0, &ar);
        assert_eq!(claims.len(), 1);
        assert_eq!(claims[0].pc, 4);
        assert_eq!(claims[0].base, ClaimBase::Local { local: 0, end: 4 });
        assert!(matches!(code[4], Op::LoadNc(LoadKind::I32, 0)));
        assert!(
            matches!(code[1], Op::Load(LoadKind::I64, 0)),
            "dominator keeps its check"
        );
    }

    #[test]
    fn strip_fuel_round_trips_instrumentation() {
        let code = vec![
            Op::Const(1),
            Op::BinRC(NumBin::I32Add, 2),
            Op::Drop,
            Op::Br(Branch {
                target: 0,
                height: 0,
                keep: false,
            }),
        ];
        let (inst, fc, _) = cost::instrument(&code, 4);
        let stripped = strip_fuel(&inst);
        assert_eq!(stripped, code);
        let (reinst, fc2, _) = cost::instrument(&stripped, 4);
        assert_eq!(reinst, inst);
        assert_eq!(fc, fc2);
    }

    #[test]
    fn dce_only_lowers_heights() {
        let ar = arity0();
        let mut code = vec![
            Op::Return,
            Op::Const(1),
            Op::Const(2),
            Op::Bin(NumBin::I32Add),
            Op::Drop,
            Op::Return,
        ];
        let n = dce(&mut code, &ar, false);
        assert_eq!(n, 5);
        compact(&mut code);
        assert_eq!(code, vec![Op::Return, Op::Nop(0)]);
    }
}
