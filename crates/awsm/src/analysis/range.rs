//! Intra-procedural interval analysis over the flat IR, used for
//! bounds-check elision and value lints (constant div-by-zero, constant
//! out-of-bounds access, doomed `call_indirect`).
//!
//! # Abstract domain
//!
//! Values are untyped 64-bit slots, so the domain is type-free:
//! `R(lo, hi)` claims the *full slot value* lies in `[lo, hi]` with
//! `hi ≤ u32::MAX`; everything else is `Top`. Under this invariant i32 and
//! i64 arithmetic share transfer functions whenever the result provably
//! stays ≤ `u32::MAX` (no wrapping in either width).
//!
//! # Branch refinement
//!
//! Comparison results carry *provenance* — which local was compared against
//! which constant — so `br_if`/`br_if_z` can refine that local's interval on
//! each outgoing edge. Signed comparisons refine only when both the constant
//! and the incoming interval are provably non-negative (`≤ i32::MAX`), where
//! signed and unsigned order coincide.
//!
//! # Widening
//!
//! Plain interval iteration on a `for i in 0..N` loop grows the head join by
//! one per round and widening straight to `Top` destroys the signed
//! refinement that makes loop bodies provable. Instead, after a few joins an
//! interval is widened to the nearest *landmark* — a constant appearing in
//! the function — which lands loop heads exactly on `[0, N]`. A hard-`Top`
//! backstop and a global step budget bound the analysis on adversarial
//! control flow; the budget bails out to "no elision" without affecting the
//! stack verifier.

use super::effects::WriteFootprint;
use super::{Diagnostic, Severity};
use crate::code::{CompiledFunc, CompiledModule, LoadKind, NumBin, NumUn, Op, StoreKind};
use std::collections::{HashMap, HashSet, VecDeque};

const U32MAX: u32 = u32::MAX;
/// Joins at one branch target before landmark widening kicks in.
const WIDEN_AFTER: u32 = 8;
/// Joins at one branch target before widening hard to `Top`.
const TOP_AFTER: u32 = 24;

/// Result of analyzing one function.
pub(super) struct FuncRange {
    /// Syntactic load/store sites in the function.
    pub mem_sites: u32,
    /// Sites (pcs) proven in-bounds for every reachable memory size.
    pub proven: Vec<u32>,
    /// Interval over-approximation of every store this function performs
    /// directly (before call-graph closure). Whenever the interval analysis
    /// bails out, this degrades soundly to `Unbounded` if the function
    /// contains any store, `Empty` otherwise.
    pub footprint: WriteFootprint,
}

/// Abstract slot value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    Top,
    /// Full slot value in `[lo, hi]`, `hi ≤ u32::MAX`.
    R(u32, u32),
}

impl AVal {
    fn from_const(c: u64) -> AVal {
        if c <= U32MAX as u64 {
            AVal::R(c as u32, c as u32)
        } else {
            AVal::Top
        }
    }

    fn exact(self) -> Option<u32> {
        match self {
            AVal::R(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    fn join(self, other: AVal) -> AVal {
        match (self, other) {
            (AVal::R(al, ah), AVal::R(bl, bh)) => AVal::R(al.min(bl), ah.max(bh)),
            _ => AVal::Top,
        }
    }
}

/// Where a stack value came from, for branch refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prov {
    None,
    /// A copy of a local's current value.
    Local(u32),
    /// The 0/1 result of comparing a local against a constant.
    /// `swapped` means the constant was the *left* operand (`k op local`).
    Cmp {
        op: NumBin,
        local: u32,
        swapped: bool,
        k: u32,
    },
}

impl Prov {
    fn mentions(self, l: u32) -> bool {
        match self {
            Prov::None => false,
            Prov::Local(x) => x == l,
            Prov::Cmp { local, .. } => local == l,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    val: AVal,
    prov: Prov,
}

impl Slot {
    fn anon(val: AVal) -> Slot {
        Slot {
            val,
            prov: Prov::None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    stack: Vec<Slot>,
    locals: Vec<AVal>,
}

/// Comparison relation, normalized so refinement only handles "true".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rel {
    Eq,
    Ne,
    LtU,
    LeU,
    GtU,
    GeU,
    LtS,
    LeS,
    GtS,
    GeS,
}

/// `(relation, is-32-bit)` for integer comparisons; `None` for everything
/// else (float comparisons yield 0/1 but never refine).
fn rel_of(op: NumBin) -> Option<(Rel, bool)> {
    use NumBin::*;
    Some(match op {
        I32Eq => (Rel::Eq, true),
        I32Ne => (Rel::Ne, true),
        I32LtU => (Rel::LtU, true),
        I32LeU => (Rel::LeU, true),
        I32GtU => (Rel::GtU, true),
        I32GeU => (Rel::GeU, true),
        I32LtS => (Rel::LtS, true),
        I32LeS => (Rel::LeS, true),
        I32GtS => (Rel::GtS, true),
        I32GeS => (Rel::GeS, true),
        I64Eq => (Rel::Eq, false),
        I64Ne => (Rel::Ne, false),
        I64LtU => (Rel::LtU, false),
        I64LeU => (Rel::LeU, false),
        I64GtU => (Rel::GtU, false),
        I64GeU => (Rel::GeU, false),
        I64LtS => (Rel::LtS, false),
        I64LeS => (Rel::LeS, false),
        I64GtS => (Rel::GtS, false),
        I64GeS => (Rel::GeS, false),
        _ => return None,
    })
}

/// Does the op produce an i32 0/1 comparison result?
fn is_cmp(op: NumBin) -> bool {
    use NumBin::*;
    rel_of(op).is_some()
        || matches!(
            op,
            F32Eq
                | F32Ne
                | F32Lt
                | F32Gt
                | F32Le
                | F32Ge
                | F64Eq
                | F64Ne
                | F64Lt
                | F64Gt
                | F64Le
                | F64Ge
        )
}

fn is_div_rem(op: NumBin) -> bool {
    use NumBin::*;
    matches!(
        op,
        I32DivS | I32DivU | I32RemS | I32RemU | I64DivS | I64DivU | I64RemS | I64RemU
    )
}

/// Mirror the relation for `k op local` → `local op' k`.
fn rel_swap(r: Rel) -> Rel {
    match r {
        Rel::LtU => Rel::GtU,
        Rel::GtU => Rel::LtU,
        Rel::LeU => Rel::GeU,
        Rel::GeU => Rel::LeU,
        Rel::LtS => Rel::GtS,
        Rel::GtS => Rel::LtS,
        Rel::LeS => Rel::GeS,
        Rel::GeS => Rel::LeS,
        r => r,
    }
}

/// Logical negation, for the not-taken edge.
fn rel_negate(r: Rel) -> Rel {
    match r {
        Rel::Eq => Rel::Ne,
        Rel::Ne => Rel::Eq,
        Rel::LtU => Rel::GeU,
        Rel::GeU => Rel::LtU,
        Rel::GtU => Rel::LeU,
        Rel::LeU => Rel::GtU,
        Rel::LtS => Rel::GeS,
        Rel::GeS => Rel::LtS,
        Rel::GtS => Rel::LeS,
        Rel::LeS => Rel::GtS,
    }
}

/// Refine `val` under `val REL k == true`. `None` means the edge is
/// infeasible. Unsound refinements are skipped, not guessed:
///
/// * signed relations apply only when `k` and the incoming interval are both
///   provably non-negative (then signed order == unsigned order); `Top`
///   never refines under a signed relation (slots ≥ 2³¹ are negative i32s);
/// * a `Top` operand of a *64-bit* comparison may exceed `u32::MAX`, so only
///   refinements that impose a real upper bound ≤ `u32::MAX` apply; a `Top`
///   operand of a *32-bit* comparison is a validated i32 slot and can be
///   treated as `[0, u32::MAX]`.
fn refine_true(val: AVal, rel: Rel, k: u32, is32: bool) -> Option<AVal> {
    let rel = match rel {
        Rel::LtS | Rel::LeS | Rel::GtS | Rel::GeS => {
            let in_range = match val {
                AVal::R(_, hi) => hi <= i32::MAX as u32,
                AVal::Top => false,
            };
            if k <= i32::MAX as u32 && in_range {
                match rel {
                    Rel::LtS => Rel::LtU,
                    Rel::LeS => Rel::LeU,
                    Rel::GtS => Rel::GtU,
                    Rel::GeS => Rel::GeU,
                    _ => unreachable!(),
                }
            } else {
                return Some(val);
            }
        }
        r => r,
    };

    if val == AVal::Top && !is32 {
        return Some(match rel {
            Rel::Eq => AVal::R(k, k),
            Rel::LtU => {
                if k == 0 {
                    return None;
                }
                AVal::R(0, k - 1)
            }
            Rel::LeU => AVal::R(0, k),
            _ => AVal::Top,
        });
    }

    let (lo, hi) = match val {
        AVal::R(lo, hi) => (lo, hi),
        AVal::Top => (0, U32MAX),
    };
    let (mut nlo, mut nhi) = (lo, hi);
    match rel {
        Rel::Eq => {
            nlo = nlo.max(k);
            nhi = nhi.min(k);
        }
        Rel::Ne => {
            if lo == hi && lo == k {
                return None;
            }
            if lo == k {
                nlo = k + 1;
            } else if hi == k {
                nhi = k - 1;
            }
        }
        Rel::LtU => {
            if k == 0 {
                return None;
            }
            nhi = nhi.min(k - 1);
        }
        Rel::LeU => nhi = nhi.min(k),
        Rel::GtU => {
            if k == U32MAX {
                return None;
            }
            nlo = nlo.max(k + 1);
        }
        Rel::GeU => nlo = nlo.max(k),
        _ => unreachable!("signed handled above"),
    }
    if nlo > nhi {
        return None;
    }
    Some(AVal::R(nlo, nhi))
}

/// Access width in bytes.
pub(super) fn load_len(k: LoadKind) -> u64 {
    use LoadKind::*;
    match k {
        I32U8 | I32S8 | I64U8 | I64S8 => 1,
        I32U16 | I32S16 | I64U16 | I64S16 => 2,
        I32 | F32 | I64U32 | I64S32 => 4,
        I64 | F64 => 8,
    }
}

pub(super) fn store_len(k: StoreKind) -> u64 {
    use StoreKind::*;
    match k {
        B8From32 | B8From64 => 1,
        B16From32 | B16From64 => 2,
        I32 | F32 | B32From64 => 4,
        I64 | F64 => 8,
    }
}

/// Abstract result of a load, by width/signedness.
fn load_result(k: LoadKind) -> AVal {
    use LoadKind::*;
    match k {
        I32U8 | I64U8 => AVal::R(0, 255),
        I32U16 | I64U16 => AVal::R(0, 65535),
        I32 | F32 | I32S8 | I32S16 | I64U32 => AVal::R(0, U32MAX),
        I64 | F64 | I64S8 | I64S16 | I64S32 => AVal::Top,
    }
}

/// Sound fallback for a binary op: 32-bit-slot results are at worst
/// `[0, u32::MAX]`; 64-bit results are `Top`.
fn bin_default(op: NumBin) -> AVal {
    use NumBin::*;
    match op {
        I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
        | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr | F32Add | F32Sub | F32Mul
        | F32Div | F32Min | F32Max | F32Copysign => AVal::R(0, U32MAX),
        _ => AVal::Top,
    }
}

fn bound_of(v: AVal, is32: bool) -> Option<u64> {
    match v {
        AVal::R(_, hi) => Some(hi as u64),
        AVal::Top if is32 => Some(U32MAX as u64),
        AVal::Top => None,
    }
}

/// Transfer function for binary numeric ops (comparisons yield `[0, 1]`).
fn bin_transfer(op: NumBin, x: AVal, y: AVal) -> AVal {
    use NumBin::*;
    if is_cmp(op) {
        return AVal::R(0, 1);
    }
    match op {
        I32Add | I64Add => {
            if let (AVal::R(lx, hx), AVal::R(ly, hy)) = (x, y) {
                let lo = lx as u64 + ly as u64;
                let hi = hx as u64 + hy as u64;
                if hi <= U32MAX as u64 {
                    return AVal::R(lo as u32, hi as u32);
                }
                // i32 add wraps mod 2^32; if the whole interval wraps it
                // stays an interval.
                if op == I32Add && lo >= 1 << 32 {
                    return AVal::R((lo - (1 << 32)) as u32, (hi - (1 << 32)) as u32);
                }
            }
            bin_default(op)
        }
        I32Sub | I64Sub => {
            if let (AVal::R(lx, hx), AVal::R(ly, hy)) = (x, y) {
                let lo = lx as i64 - hy as i64;
                let hi = hx as i64 - ly as i64;
                if lo >= 0 {
                    return AVal::R(lo as u32, hi as u32);
                }
                if op == I32Sub && hi < 0 {
                    return AVal::R((lo + (1 << 32)) as u32, (hi + (1 << 32)) as u32);
                }
            }
            bin_default(op)
        }
        I32Mul | I64Mul => {
            if let (AVal::R(lx, hx), AVal::R(ly, hy)) = (x, y) {
                let hi = hx as u64 * hy as u64;
                if hi <= U32MAX as u64 {
                    return AVal::R((lx as u64 * ly as u64) as u32, hi as u32);
                }
            }
            bin_default(op)
        }
        I32And | I64And => {
            // x & y ≤ min(x, y) for unsigned values of any width.
            let is32 = op == I32And;
            match (bound_of(x, is32), bound_of(y, is32)) {
                (Some(a), Some(b)) => AVal::R(0, a.min(b) as u32),
                (Some(a), None) | (None, Some(a)) => AVal::R(0, a as u32),
                (None, None) => AVal::Top,
            }
        }
        I32Or | I32Xor | I64Or | I64Xor => {
            // x | y and x ^ y are both ≤ x + y.
            if let (AVal::R(_, hx), AVal::R(_, hy)) = (x, y) {
                let s = hx as u64 + hy as u64;
                if s <= U32MAX as u64 {
                    return AVal::R(0, s as u32);
                }
            }
            bin_default(op)
        }
        I32Shl | I64Shl => {
            let mask = if op == I32Shl { 31 } else { 63 };
            if let (AVal::R(lx, hx), Some(k)) = (x, y.exact()) {
                let k = k & mask;
                let hi = (hx as u64) << k;
                if hi <= U32MAX as u64 {
                    return AVal::R(((lx as u64) << k) as u32, hi as u32);
                }
            }
            bin_default(op)
        }
        I32ShrU | I64ShrU => {
            let mask = if op == I32ShrU { 31 } else { 63 };
            match (x, y.exact()) {
                (AVal::R(lx, hx), Some(k)) => {
                    let k = k & mask;
                    AVal::R(lx >> k, hx >> k)
                }
                // Shifting right never grows an unsigned value.
                (AVal::R(_, hx), None) => AVal::R(0, hx),
                _ => bin_default(op),
            }
        }
        I32ShrS | I64ShrS => {
            // Non-negative values shift like unsigned. An i32 slot is
            // non-negative iff ≤ i32::MAX; an i64 slot ≤ u32::MAX always is.
            let nonneg = match (op, x) {
                (I32ShrS, AVal::R(_, hx)) => hx <= i32::MAX as u32,
                (I64ShrS, AVal::R(_, _)) => true,
                _ => false,
            };
            if nonneg {
                return bin_transfer(if op == I32ShrS { I32ShrU } else { I64ShrU }, x, y);
            }
            bin_default(op)
        }
        I32DivU | I64DivU => match (x, y.exact()) {
            (AVal::R(lx, hx), Some(k)) if k >= 1 => AVal::R(lx / k, hx / k),
            // Divisor 0 traps, so any flowing value had divisor ≥ 1.
            (AVal::R(_, hx), _) => AVal::R(0, hx),
            _ => bin_default(op),
        },
        I32RemU | I64RemU => {
            let xb = bound_of(x, op == I32RemU);
            let yb = match y {
                AVal::R(ly, hy) if ly >= 1 => Some(hy as u64 - 1),
                _ => None,
            };
            match (xb, yb) {
                (Some(a), Some(b)) => AVal::R(0, a.min(b) as u32),
                (Some(a), None) => AVal::R(0, a as u32),
                (None, Some(b)) => AVal::R(0, b as u32),
                (None, None) => bin_default(op),
            }
        }
        _ => bin_default(op),
    }
}

/// Transfer function for unary ops.
fn un_transfer(op: NumUn, x: AVal) -> AVal {
    use NumUn::*;
    let r32 = AVal::R(0, U32MAX);
    match op {
        I32Eqz | I64Eqz => AVal::R(0, 1),
        I32Clz | I32Ctz | I32Popcnt => AVal::R(0, 32),
        I64Clz | I64Ctz | I64Popcnt => AVal::R(0, 64),
        // The operand of a wrap is an i64 slot; the result keeps only the
        // low 32 bits, which for an in-range interval is the identity.
        I32WrapI64 | I64ExtendI32U => match x {
            AVal::R(lo, hi) => AVal::R(lo, hi),
            AVal::Top => r32,
        },
        I64ExtendI32S | I64Extend32S => match x {
            AVal::R(_, hi) if hi <= i32::MAX as u32 => x,
            _ => AVal::Top,
        },
        I32Extend8S => match x {
            AVal::R(_, hi) if hi <= 127 => x,
            _ => r32,
        },
        I32Extend16S => match x {
            AVal::R(_, hi) if hi <= 32767 => x,
            _ => r32,
        },
        I64Extend8S => match x {
            AVal::R(_, hi) if hi <= 127 => x,
            _ => AVal::Top,
        },
        I64Extend16S => match x {
            AVal::R(_, hi) if hi <= 32767 => x,
            _ => AVal::Top,
        },
        // Reinterpretations do not change the slot bits.
        I32ReinterpretF32 | F32ReinterpretI32 => match x {
            AVal::R(lo, hi) => AVal::R(lo, hi),
            AVal::Top => r32,
        },
        I64ReinterpretF64 | F64ReinterpretI64 => x,
        F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt | F32ConvertI32S
        | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U | F32DemoteF64 | I32TruncF32S
        | I32TruncF32U | I32TruncF64S | I32TruncF64U => r32,
        _ => AVal::Top,
    }
}

/// Immutable per-function context.
struct Ctx<'a> {
    m: &'a CompiledModule,
    code: &'a [Op],
    fidx: u32,
    /// All branch-target pcs: segment boundaries of the fixpoint.
    targets: HashSet<u32>,
    /// Sorted constants in the function, for landmark widening.
    landmarks: Vec<u32>,
    /// `min_pages * PAGE_SIZE`: accesses below this can never trap.
    min_bytes: u64,
    /// `max_pages * PAGE_SIZE`: accesses at/after this always trap.
    max_bytes: u64,
    /// Canonical type id → `(nparams, has_result)`.
    arity: HashMap<u32, (u32, bool)>,
    /// Step budget for the whole fixpoint.
    budget: usize,
}

/// Accumulates per-site proofs, the store footprint, and value lints during
/// the collection pass.
struct Collector<'a> {
    proven: Vec<u32>,
    footprint: WriteFootprint,
    diags: &'a mut Vec<Diagnostic>,
}

impl Collector<'_> {
    fn lint(&mut self, ctx: &Ctx<'_>, pc: usize, severity: Severity, message: String) {
        self.diags.push(Diagnostic {
            severity,
            func: Some(ctx.fidx),
            pc: Some(pc as u32),
            message,
        });
    }

    /// Judge one memory-access site: prove it in-bounds, flag it as a
    /// guaranteed trap, or leave it checked.
    fn site(&mut self, ctx: &Ctx<'_>, pc: usize, addr: AVal, off: u32, len: u64) {
        let (lo, hi) = match addr {
            AVal::R(lo, hi) => (lo as u64, Some(hi as u64)),
            AVal::Top => (0, None),
        };
        if let Some(hi) = hi {
            // Linear memory only grows, so an access below the initial size
            // is in-bounds for the lifetime of the instance.
            if hi + off as u64 + len <= ctx.min_bytes {
                self.proven.push(pc as u32);
                return;
            }
        }
        if lo + off as u64 + len > ctx.max_bytes {
            self.lint(
                ctx,
                pc,
                Severity::Error,
                format!(
                    "memory access at address ≥ {} (+{off} offset, {len} bytes) is \
                     out of bounds for every memory size (max {} bytes)",
                    lo, ctx.max_bytes
                ),
            );
        }
    }

    /// A store site: judged like any access, plus joined into the function's
    /// static write footprint.
    fn store_site(&mut self, ctx: &Ctx<'_>, pc: usize, addr: AVal, off: u32, len: u64) {
        self.site(ctx, pc, addr, off, len);
        let span = match addr {
            AVal::R(lo, hi) => WriteFootprint::Span {
                lo: lo as u64 + off as u64,
                hi: hi as u64 + off as u64 + len,
            },
            AVal::Top => WriteFootprint::Unbounded,
        };
        self.footprint = self.footprint.join(span);
    }
}

/// Apply the branch's stack adjustment (truncate to the label height,
/// re-pushing the carried top if any).
fn branch_adjust(mut st: State, b: &crate::code::Branch) -> State {
    let kept = st.stack.last().copied();
    st.stack.truncate(b.height as usize);
    if b.keep {
        st.stack.push(kept.expect("kept value"));
    }
    st
}

/// Refine `st` under "the condition slot is truthy/falsy". Returns `false`
/// when the edge is statically infeasible.
fn apply_cond(st: &mut State, cond: Slot, truth: bool) -> bool {
    if let AVal::R(lo, hi) = cond.val {
        if truth && lo == 0 && hi == 0 {
            return false;
        }
        if !truth && lo >= 1 {
            return false;
        }
    }
    let (local, rel, k, is32) = match cond.prov {
        // A raw local as condition: truthy means ≠ 0 (an i32 slot).
        Prov::Local(l) => (l, Rel::Ne, 0, true),
        Prov::Cmp {
            op,
            local,
            swapped,
            k,
        } => match rel_of(op) {
            Some((r, is32)) => (local, if swapped { rel_swap(r) } else { r }, k, is32),
            None => return true,
        },
        Prov::None => return true,
    };
    let rel = if truth { rel } else { rel_negate(rel) };
    match refine_true(st.locals[local as usize], rel, k, is32) {
        Some(v) => {
            st.locals[local as usize] = v;
            true
        }
        None => false,
    }
}

/// Invalidate stack provenance that refers to local `l` (it was reassigned).
fn kill_local(st: &mut State, l: u32) {
    for s in &mut st.stack {
        if s.prov.mentions(l) {
            s.prov = Prov::None;
        }
    }
}

/// Comparison provenance for a binary op, if one side is a local and the
/// other an exact constant.
fn cmp_prov(op: NumBin, x: &Slot, y: &Slot) -> Prov {
    if rel_of(op).is_none() {
        return Prov::None;
    }
    if let (Prov::Local(l), Some(k)) = (x.prov, y.val.exact()) {
        return Prov::Cmp {
            op,
            local: l,
            swapped: false,
            k,
        };
    }
    if let (Some(k), Prov::Local(l)) = (x.val.exact(), y.prov) {
        return Prov::Cmp {
            op,
            local: l,
            swapped: true,
            k,
        };
    }
    Prov::None
}

/// Interpret one linear segment starting at `start` until a terminator or
/// until control falls into another branch target. Branch edges (with
/// refined states) are appended to `edges`; when `col` is set, per-site
/// proofs and value lints are recorded. Returns `false` iff the step budget
/// ran out.
fn run_segment(
    ctx: &Ctx<'_>,
    start: u32,
    mut st: State,
    steps: &mut usize,
    mut col: Option<&mut Collector<'_>>,
    edges: &mut Vec<(u32, State)>,
) -> bool {
    let mut pc = start as usize;
    loop {
        *steps += 1;
        if *steps > ctx.budget {
            return false;
        }
        match &ctx.code[pc] {
            Op::Unreachable | Op::Return => return true,
            Op::Br(b) => {
                edges.push((b.target, branch_adjust(st, b)));
                return true;
            }
            op @ (Op::BrIf(b) | Op::BrIfZ(b)) => {
                let cond = st.stack.pop().expect("cond");
                let taken_truth = matches!(op, Op::BrIf(_));
                let mut taken = st.clone();
                if apply_cond(&mut taken, cond, taken_truth) {
                    edges.push((b.target, branch_adjust(taken, b)));
                }
                if !apply_cond(&mut st, cond, !taken_truth) {
                    return true; // fallthrough infeasible
                }
            }
            Op::BrTable(payload) => {
                st.stack.pop().expect("index");
                for b in payload
                    .targets
                    .iter()
                    .chain(std::iter::once(&payload.default))
                {
                    edges.push((b.target, branch_adjust(st.clone(), b)));
                }
                return true;
            }
            Op::Call(f) => {
                let callee = &ctx.m.funcs[*f as usize];
                for _ in 0..callee.nparams {
                    st.stack.pop().expect("arg");
                }
                if callee.has_result {
                    st.stack.push(Slot::anon(AVal::Top));
                }
            }
            Op::CallHost(h) => {
                let imp = &ctx.m.host_funcs[*h as usize];
                for _ in 0..imp.nparams {
                    st.stack.pop().expect("arg");
                }
                if imp.has_result {
                    st.stack.push(Slot::anon(AVal::Top));
                }
            }
            Op::CallIndirect(tid) => {
                let index = st.stack.pop().expect("indirect index");
                if let (Some(c), Some(k)) = (col.as_deref_mut(), index.val.exact()) {
                    lint_call_indirect(ctx, c, pc, k, *tid);
                }
                match ctx.arity.get(tid) {
                    Some(&(np, res)) => {
                        for _ in 0..np {
                            st.stack.pop().expect("arg");
                        }
                        if res {
                            st.stack.push(Slot::anon(AVal::Top));
                        }
                    }
                    None => {
                        // No function of this type exists anywhere: the call
                        // can only trap.
                        if let Some(c) = col.as_deref_mut() {
                            c.lint(
                                ctx,
                                pc,
                                Severity::Warn,
                                "call_indirect type matches no function in the module — \
                                 guaranteed trap"
                                    .to_string(),
                            );
                        }
                        return true;
                    }
                }
            }
            Op::Drop => {
                st.stack.pop();
            }
            Op::Select => {
                st.stack.pop().expect("cond");
                let b2 = st.stack.pop().expect("select rhs");
                let a = st.stack.pop().expect("select lhs");
                st.stack.push(Slot::anon(a.val.join(b2.val)));
            }
            Op::LocalGet(i) => st.stack.push(Slot {
                val: st.locals[*i as usize],
                prov: Prov::Local(*i),
            }),
            Op::LocalSet(i) => {
                let v = st.stack.pop().expect("set value");
                st.locals[*i as usize] = v.val;
                kill_local(&mut st, *i);
            }
            Op::LocalTee(i) => {
                let v = *st.stack.last().expect("tee value");
                st.locals[*i as usize] = v.val;
                kill_local(&mut st, *i);
                st.stack.last_mut().expect("tee value").prov = Prov::Local(*i);
            }
            Op::GlobalGet(_) => st.stack.push(Slot::anon(AVal::Top)),
            Op::GlobalSet(_) => {
                st.stack.pop();
            }
            Op::Load(kind, off) | Op::LoadNc(kind, off) => {
                let addr = st.stack.pop().expect("load addr");
                if let Some(c) = col.as_deref_mut() {
                    c.site(ctx, pc, addr.val, *off, load_len(*kind));
                }
                st.stack.push(Slot::anon(load_result(*kind)));
            }
            Op::LoadL(kind, local, off) | Op::LoadLNc(kind, local, off) => {
                let addr = st.locals[*local as usize];
                if let Some(c) = col.as_deref_mut() {
                    c.site(ctx, pc, addr, *off, load_len(*kind));
                }
                st.stack.push(Slot::anon(load_result(*kind)));
            }
            Op::Store(kind, off) | Op::StoreNc(kind, off) => {
                st.stack.pop().expect("store value");
                let addr = st.stack.pop().expect("store addr");
                if let Some(c) = col.as_deref_mut() {
                    c.store_site(ctx, pc, addr.val, *off, store_len(*kind));
                }
            }
            Op::MemorySize => {
                let spec = ctx.m.memory.expect("memory op without memory");
                st.stack
                    .push(Slot::anon(AVal::R(spec.min_pages, spec.max_pages)));
            }
            Op::MemoryGrow => {
                st.stack.pop().expect("grow pages");
                // Result is the old page count or u32::MAX on failure.
                st.stack.push(Slot::anon(AVal::R(0, U32MAX)));
            }
            Op::Const(c) => st.stack.push(Slot::anon(AVal::from_const(*c))),
            Op::Bin(op) => {
                let y = st.stack.pop().expect("bin rhs");
                let x = st.stack.pop().expect("bin lhs");
                if let Some(c) = col.as_deref_mut() {
                    lint_div(ctx, c, pc, *op, y.val);
                }
                st.stack.push(Slot {
                    val: bin_transfer(*op, x.val, y.val),
                    prov: cmp_prov(*op, &x, &y),
                });
            }
            Op::Un(op) => {
                let x = st.stack.pop().expect("un operand");
                let prov = match (op, x.prov) {
                    (NumUn::I32Eqz, Prov::Local(l)) => Prov::Cmp {
                        op: NumBin::I32Eq,
                        local: l,
                        swapped: false,
                        k: 0,
                    },
                    (NumUn::I64Eqz, Prov::Local(l)) => Prov::Cmp {
                        op: NumBin::I64Eq,
                        local: l,
                        swapped: false,
                        k: 0,
                    },
                    _ => Prov::None,
                };
                st.stack.push(Slot {
                    val: un_transfer(*op, x.val),
                    prov,
                });
            }
            Op::Bin2L(op, a, b2) => {
                let x = Slot {
                    val: st.locals[*a as usize],
                    prov: Prov::Local(*a),
                };
                let y = Slot {
                    val: st.locals[*b2 as usize],
                    prov: Prov::Local(*b2),
                };
                if let Some(c) = col.as_deref_mut() {
                    lint_div(ctx, c, pc, *op, y.val);
                }
                st.stack.push(Slot {
                    val: bin_transfer(*op, x.val, y.val),
                    prov: cmp_prov(*op, &x, &y),
                });
            }
            Op::BinRL(op, l) => {
                let y = Slot {
                    val: st.locals[*l as usize],
                    prov: Prov::Local(*l),
                };
                let x = st.stack.pop().expect("binrl lhs");
                if let Some(c) = col.as_deref_mut() {
                    lint_div(ctx, c, pc, *op, y.val);
                }
                st.stack.push(Slot {
                    val: bin_transfer(*op, x.val, y.val),
                    prov: cmp_prov(*op, &x, &y),
                });
            }
            Op::BinRC(op, k) => {
                let x = st.stack.pop().expect("binrc lhs");
                let y = Slot::anon(AVal::from_const(*k));
                if let Some(c) = col.as_deref_mut() {
                    lint_div(ctx, c, pc, *op, y.val);
                }
                st.stack.push(Slot {
                    val: bin_transfer(*op, x.val, y.val),
                    prov: cmp_prov(*op, &x, &y),
                });
            }
            Op::Bin2LS(op, a, b2, d) => {
                let x = st.locals[*a as usize];
                let y = st.locals[*b2 as usize];
                if let Some(c) = col.as_deref_mut() {
                    lint_div(ctx, c, pc, *op, y);
                }
                st.locals[*d as usize] = bin_transfer(*op, x, y);
                kill_local(&mut st, *d);
            }
            Op::IncI32(i, delta) => {
                let k = AVal::from_const(*delta as u32 as u64);
                st.locals[*i as usize] = bin_transfer(NumBin::I32Add, st.locals[*i as usize], k);
                kill_local(&mut st, *i);
            }
            // Fuel is inserted by the cost pass, which runs after this
            // analysis; Nop is optimizer padding. Neither has a stack or
            // value effect.
            Op::Fuel(_) | Op::Nop(_) => {}
        }
        pc += 1;
        if ctx.targets.contains(&(pc as u32)) {
            edges.push((pc as u32, st));
            return true;
        }
    }
}

fn lint_div(ctx: &Ctx<'_>, col: &mut Collector<'_>, pc: usize, op: NumBin, divisor: AVal) {
    if is_div_rem(op) && divisor == AVal::R(0, 0) {
        col.lint(
            ctx,
            pc,
            Severity::Warn,
            "constant division by zero — guaranteed trap if executed".to_string(),
        );
    }
}

fn lint_call_indirect(ctx: &Ctx<'_>, col: &mut Collector<'_>, pc: usize, k: u32, tid: u32) {
    let table = &ctx.m.table;
    match table.get(k as usize) {
        None => col.lint(
            ctx,
            pc,
            Severity::Warn,
            format!(
                "call_indirect with constant index {k} outside the table \
                 (len {}) — guaranteed trap",
                table.len()
            ),
        ),
        Some(None) => col.lint(
            ctx,
            pc,
            Severity::Warn,
            format!("call_indirect into uninitialized table slot {k} — guaranteed trap"),
        ),
        Some(Some(target)) => {
            let ni = ctx.m.num_imports();
            let actual = if *target < ni {
                ctx.m.host_funcs[*target as usize].type_id
            } else {
                ctx.m.funcs[(*target - ni) as usize].type_id
            };
            if actual != tid {
                col.lint(
                    ctx,
                    pc,
                    Severity::Warn,
                    format!(
                        "call_indirect into table slot {k} always mismatches the \
                         expected signature — guaranteed trap"
                    ),
                );
            }
        }
    }
}

/// Join `src` into `dst` slot-wise. `Err(())` on an abstract-shape mismatch
/// (should not happen on validated code); `Ok(changed)` otherwise.
fn join_into(dst: &mut State, src: &State) -> Result<bool, ()> {
    if dst.stack.len() != src.stack.len() || dst.locals.len() != src.locals.len() {
        return Err(());
    }
    let mut changed = false;
    for (d, s) in dst.stack.iter_mut().zip(&src.stack) {
        let val = d.val.join(s.val);
        let prov = if d.prov == s.prov { d.prov } else { Prov::None };
        if val != d.val || prov != d.prov {
            changed = true;
        }
        d.val = val;
        d.prov = prov;
    }
    for (d, s) in dst.locals.iter_mut().zip(&src.locals) {
        let val = d.join(*s);
        if val != *d {
            changed = true;
        }
        *d = val;
    }
    Ok(changed)
}

/// Widen every slot that grew since `old`: bounds snap outward to the
/// nearest landmark (`hard` snaps straight to `Top`).
fn widen(old: &State, new: &mut State, landmarks: &[u32], hard: bool) {
    let widen_val = |o: AVal, n: AVal| -> AVal {
        if o == n {
            return n;
        }
        if hard {
            return AVal::Top;
        }
        match (o, n) {
            (AVal::R(ol, oh), AVal::R(nl, nh)) => {
                let mut lo = nl;
                let mut hi = nh;
                if nh > oh {
                    let i = landmarks.partition_point(|&x| x < nh);
                    hi = landmarks.get(i).copied().unwrap_or(U32MAX);
                }
                if nl < ol {
                    let i = landmarks.partition_point(|&x| x <= nl);
                    lo = if i == 0 { 0 } else { landmarks[i - 1] };
                }
                AVal::R(lo, hi)
            }
            _ => n,
        }
    };
    for (o, n) in old.stack.iter().zip(&mut new.stack) {
        n.val = widen_val(o.val, n.val);
    }
    for (o, n) in old.locals.iter().zip(&mut new.locals) {
        *n = widen_val(*o, *n);
    }
}

/// Run the interval analysis over one function: fixpoint over branch-target
/// states, then a single deterministic collection pass that records per-site
/// bounds proofs and value lints.
pub(super) fn analyze_func(
    m: &CompiledModule,
    fidx: u32,
    func: &CompiledFunc,
    diags: &mut Vec<Diagnostic>,
) -> FuncRange {
    let code = &func.code[..];
    let mem_sites = code
        .iter()
        .filter(|op| {
            matches!(
                op,
                Op::Load(..)
                    | Op::LoadL(..)
                    | Op::Store(..)
                    | Op::LoadNc(..)
                    | Op::LoadLNc(..)
                    | Op::StoreNc(..)
            )
        })
        .count() as u32;
    // Whenever the analysis bails out before the collection pass completes,
    // the footprint must stay sound: any store means "anywhere".
    let has_stores = code
        .iter()
        .any(|op| matches!(op, Op::Store(..) | Op::StoreNc(..)));
    let bail_footprint = if has_stores {
        WriteFootprint::Unbounded
    } else {
        WriteFootprint::Empty
    };
    // Nothing to prove or lint in functions that never touch memory, divide,
    // or call through the table.
    let interesting = mem_sites > 0
        || code.iter().any(|op| {
            matches!(op, Op::CallIndirect(_))
                || matches!(op, Op::Bin(o) | Op::BinRC(o, _) | Op::BinRL(o, _)
                    | Op::Bin2L(o, _, _) | Op::Bin2LS(o, _, _, _) if is_div_rem(*o))
        });
    if !interesting {
        return FuncRange {
            mem_sites,
            proven: Vec::new(),
            footprint: bail_footprint,
        };
    }

    // Branch targets partition the code into linear segments.
    let mut targets: HashSet<u32> = HashSet::new();
    // Constants appearing in the code: the widening landmarks. `k + 1` is
    // included so `i <= N`-style loop heads stabilize one past the bound.
    let mut landmarks: Vec<u32> = vec![0, U32MAX];
    let mark = |c: u64, landmarks: &mut Vec<u32>| {
        if c <= U32MAX as u64 {
            landmarks.push(c as u32);
            landmarks.push((c as u32).saturating_add(1));
        }
    };
    for op in code {
        match op {
            Op::Br(b) | Op::BrIf(b) | Op::BrIfZ(b) => {
                targets.insert(b.target);
            }
            Op::BrTable(p) => {
                for b in p.targets.iter().chain(std::iter::once(&p.default)) {
                    targets.insert(b.target);
                }
            }
            Op::Const(c) | Op::BinRC(_, c) => mark(*c, &mut landmarks),
            Op::IncI32(_, d) => mark(*d as u32 as u64, &mut landmarks),
            _ => {}
        }
    }
    landmarks.sort_unstable();
    landmarks.dedup();

    let (min_bytes, max_bytes) = match m.memory {
        Some(spec) => (spec.min_pages as u64 * 65536, spec.max_pages as u64 * 65536),
        None => (0, 0),
    };
    let mut arity: HashMap<u32, (u32, bool)> = HashMap::new();
    for f in &m.funcs {
        arity.insert(f.type_id, (f.nparams, f.has_result));
    }
    for h in &m.host_funcs {
        arity.insert(h.type_id, (h.nparams, h.has_result));
    }
    let ctx = Ctx {
        m,
        code,
        fidx,
        targets,
        landmarks,
        min_bytes,
        max_bytes,
        arity,
        budget: 500 * code.len() + 50_000,
    };

    // Entry state: parameters unknown, declared locals zero.
    let mut entry_locals = vec![AVal::Top; func.nparams as usize];
    entry_locals.resize(func.nlocals as usize, AVal::R(0, 0));
    let entry = State {
        stack: Vec::new(),
        locals: entry_locals,
    };

    // Fixpoint: chaotic iteration over segment-entry states.
    let mut states: HashMap<u32, State> = HashMap::new();
    let mut joins: HashMap<u32, u32> = HashMap::new();
    let mut queued: HashSet<u32> = HashSet::new();
    let mut work: VecDeque<u32> = VecDeque::new();
    states.insert(0, entry);
    queued.insert(0);
    work.push_back(0);
    let mut steps = 0usize;
    let mut edges: Vec<(u32, State)> = Vec::new();

    while let Some(pc) = work.pop_front() {
        queued.remove(&pc);
        let st = states.get(&pc).expect("queued state").clone();
        edges.clear();
        if !run_segment(&ctx, pc, st, &mut steps, None, &mut edges) {
            // Step budget exhausted: give up on elision and value lints for
            // this function (the stack verifier is a separate pass).
            return FuncRange {
                mem_sites,
                proven: Vec::new(),
                footprint: bail_footprint,
            };
        }
        for (target, src) in edges.drain(..) {
            let changed = match states.get_mut(&target) {
                None => {
                    states.insert(target, src);
                    true
                }
                Some(dst) => {
                    let n = joins.entry(target).or_insert(0);
                    *n += 1;
                    let old = dst.clone();
                    match join_into(dst, &src) {
                        Ok(changed) => {
                            if changed && *n > WIDEN_AFTER {
                                widen(&old, dst, &ctx.landmarks, *n > TOP_AFTER);
                            }
                            *dst != old
                        }
                        Err(()) => {
                            return FuncRange {
                                mem_sites,
                                proven: Vec::new(),
                                footprint: bail_footprint,
                            };
                        }
                    }
                }
            };
            if changed && queued.insert(target) {
                work.push_back(target);
            }
        }
    }

    // Collection: each reachable segment exactly once, in pc order, against
    // its post-fixpoint entry state.
    let mut proven: Vec<u32> = Vec::new();
    let footprint;
    {
        let mut col = Collector {
            proven: Vec::new(),
            footprint: WriteFootprint::Empty,
            diags,
        };
        let mut pcs: Vec<u32> = states.keys().copied().collect();
        pcs.sort_unstable();
        let mut col_steps = 0usize;
        for pc in pcs {
            edges.clear();
            let st = states.get(&pc).expect("state").clone();
            if !run_segment(&ctx, pc, st, &mut col_steps, Some(&mut col), &mut edges) {
                return FuncRange {
                    mem_sites,
                    proven: Vec::new(),
                    footprint: bail_footprint,
                };
            }
        }
        proven.append(&mut col.proven);
        footprint = col.footprint;
    }
    proven.sort_unstable();
    proven.dedup();
    FuncRange {
        mem_sites,
        proven,
        footprint,
    }
}
