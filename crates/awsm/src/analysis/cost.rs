//! Static cost model and preemption-latency certificates.
//!
//! Fuel was previously a unitless counter: the naive tier charged 1 per
//! instruction, the optimized tier charged 1 per taken branch or call — so
//! `quantum_fuel` measured neither work nor time, and nothing bounded how
//! long the optimized tier could run between two budget checks. This pass
//! turns fuel into a **work meter** shared by both tiers:
//!
//! 1. Every op gets a weight ([`op_cost`], in abstract *cost units*, one
//!    unit ≈ one simple interpreted op). Weights are *compositional over
//!    fusion*: each super-instruction weighs exactly the sum of the ops it
//!    fused, and every op the optimized translator elides (`const`/
//!    `local.get`/`global.get` feeding a `drop`, the `i32.eqz` folded into
//!    `BrIfZ`, operand pushes consumed by fusion) weighs 0 — therefore the
//!    naive and optimized translations of the same function consume
//!    *identical* total fuel for the same execution, a property the
//!    differential proptests assert.
//! 2. The flat code is partitioned into basic blocks (leaders: function
//!    entry, branch targets, and the op after any terminator — branches,
//!    `return`, `unreachable`, and calls). An explicit [`Op::Fuel`] charge
//!    is inserted at the head of every non-zero-cost block, carrying the
//!    block's exact summed cost; blocks costlier than the `max_check_gap`
//!    budget are split at analysis-chosen points. Branch targets are
//!    renumbered around the insertions.
//! 3. The resulting **certificate** ([`CostReport`]) states, per function,
//!    the maximum cost along any check-free path (`max_gap`). Because every
//!    charge site also polls the preempt flag, `max_gap` bounds
//!    preemption latency in cost units *by construction*:
//!    `gap ≤ max(max_check_gap, heaviest single op)`.
//!
//! At runtime the optimized tier charges (and polls) only at `Op::Fuel`;
//! the naive tier charges `op_cost` per instruction and treats `Op::Fuel`
//! as a no-op. Charges a quantum cannot cover are carried as *debt* paid
//! from subsequent quanta, so any positive quantum makes progress (no
//! livelock when `quantum_fuel < max_gap`).

use crate::code::{NumBin, NumUn, Op};

/// Default preemption-latency budget, in cost units, enforced at translate
/// time when no explicit budget is given (see
/// [`TranslateOptions`](crate::TranslateOptions)).
pub const DEFAULT_MAX_CHECK_GAP: u32 = 512;

pub(super) fn bin_cost(op: NumBin) -> u32 {
    use NumBin::*;
    match op {
        // Integer divide/remainder: hardware-slow and trap-checked.
        I32DivS | I32DivU | I32RemS | I32RemU | I64DivS | I64DivU | I64RemS | I64RemU => 4,
        I32Mul | I64Mul => 2,
        F32Div | F64Div => 6,
        F32Add | F32Sub | F32Mul | F32Min | F32Max | F64Add | F64Sub | F64Mul | F64Min | F64Max => {
            2
        }
        // Adds, subs, bitwise, shifts, rotates, comparisons, copysign.
        _ => 1,
    }
}

pub(super) fn un_cost(op: NumUn) -> u32 {
    use NumUn::*;
    match op {
        // MUST be 0: the optimized translator folds `i32.eqz` into
        // `BrIf`/`BrIfZ`; a non-zero weight would break naive/optimized
        // fuel equivalence.
        I32Eqz => 0,
        F32Sqrt | F64Sqrt => 6,
        I32Popcnt | I64Popcnt => 2,
        // int<->float conversions (rounding, range checks).
        I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U | I64TruncF32S | I64TruncF32U
        | I64TruncF64S | I64TruncF64U | F32ConvertI32S | F32ConvertI32U | F32ConvertI64S
        | F32ConvertI64U | F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U => 2,
        F32Ceil | F32Floor | F32Trunc | F32Nearest | F64Ceil | F64Floor | F64Trunc | F64Nearest => {
            2
        }
        _ => 1,
    }
}

/// Weight of one flat op in cost units.
///
/// Invariants the weights must uphold (checked by unit tests):
///
/// * **Fusion-compositional**: a super-instruction weighs the sum of the
///   ops it replaced (`Bin2L` = 2·`LocalGet` plus `Bin`, `LoadL` =
///   `LocalGet` plus `Load`, `IncI32` = the fused `i32.add`, …). Hence
///   operand pushes consumed by fusion (`Const`, `LocalGet`, `LocalSet`,
///   `Drop`, `GlobalGet`, `i32.eqz`) weigh 0.
/// * **Strategy-independent**: the unchecked `*Nc` forms weigh the same as
///   their checked originals, so fuel totals do not depend on the bounds
///   strategy.
/// * **`Op::Fuel` weighs 0**: it is accounting, not guest work; the naive
///   tier skips it.
pub fn op_cost(op: &Op) -> u32 {
    match op {
        Op::Const(_)
        | Op::LocalGet(_)
        | Op::LocalSet(_)
        | Op::LocalTee(_)
        | Op::GlobalGet(_)
        | Op::Drop
        | Op::Unreachable
        | Op::Fuel(_) => 0,
        Op::Select | Op::GlobalSet(_) | Op::MemorySize | Op::Return => 1,
        Op::Br(_) | Op::BrIf(_) | Op::BrIfZ(_) => 1,
        Op::BrTable(_) => 2,
        Op::Call(_) => 8,
        Op::CallIndirect(_) => 10,
        Op::CallHost(_) => 16,
        Op::MemoryGrow => 64,
        Op::Load(..) | Op::LoadL(..) | Op::LoadNc(..) | Op::LoadLNc(..) => 3,
        Op::Store(..) | Op::StoreNc(..) => 3,
        Op::Bin(b) | Op::BinRL(b, _) | Op::BinRC(b, _) | Op::Bin2L(b, ..) | Op::Bin2LS(b, ..) => {
            bin_cost(*b)
        }
        // `local.get src; const c; i32.add; local.set dst`: only the add
        // carries weight.
        Op::IncI32(..) => bin_cost(NumBin::I32Add),
        Op::Un(u) => un_cost(*u),
        // Optimizer padding carries the erased op's weight so rewritten
        // bodies stay fuel-identical to the original.
        Op::Nop(c) => *c,
    }
}

/// The heaviest single op ([`Op::MemoryGrow`]); no check-free gap can be
/// narrower than this, whatever the budget.
pub const MAX_SINGLE_OP_COST: u32 = 64;

/// Per-function slice of the preemption-latency certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCost {
    /// Export/debug name, if known.
    pub name: Option<String>,
    /// Basic blocks in the (pre-instrumentation) body.
    pub blocks: u32,
    /// `Op::Fuel` charge sites inserted.
    pub checks: u32,
    /// Extra checks inserted because a block exceeded the gap budget.
    pub splits: u32,
    /// Static sum of all op weights in the body.
    pub total_cost: u64,
    /// Max cost along any check-free path — the certified preemption
    /// latency for this function, in cost units.
    pub max_gap: u32,
    /// Max check-free gap on a path through a loop body (the gaps that
    /// repeat; 0 if the function has no back-edge).
    pub max_loop_gap: u32,
    /// Max check-free gap of a segment containing a host call (wall-clock
    /// latency across such gaps additionally depends on the host; 0 if the
    /// function makes no host calls).
    pub max_host_gap: u32,
}

/// Module-wide cost model + preemption-latency certificate, cached on
/// [`CompiledModule`](crate::CompiledModule) via
/// [`AnalysisReport`](super::AnalysisReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostReport {
    /// The gap budget the instrumentation enforced (cost units).
    pub max_check_gap: u32,
    /// Per-function certificates, parallel to `AnalysisReport::funcs`.
    pub funcs: Vec<FuncCost>,
    /// Module-wide max check-free gap: `max` over functions.
    pub max_gap: u32,
    /// Total `Op::Fuel` sites inserted.
    pub checks: u32,
    /// Total budget-driven splits.
    pub splits: u32,
}

impl CostReport {
    /// Whether the certified gap is within `budget` cost units.
    pub fn within(&self, budget: u32) -> bool {
        self.max_gap <= budget
    }
}

/// Ops that end a basic block: control leaves (or may leave) the
/// straight-line path, or (for calls) a check must follow so the gap
/// certificate composes across frames — the callee's final segment plus
/// the caller's post-call segment would otherwise form an unchecked path
/// of up to twice the budget.
pub(super) fn is_terminator(op: &Op) -> bool {
    matches!(
        op,
        Op::Br(_)
            | Op::BrIf(_)
            | Op::BrIfZ(_)
            | Op::BrTable(_)
            | Op::Return
            | Op::Unreachable
            | Op::Call(_)
            | Op::CallHost(_)
            | Op::CallIndirect(_)
    )
}

pub(super) fn for_each_target(op: &Op, mut f: impl FnMut(u32)) {
    match op {
        Op::Br(b) | Op::BrIf(b) | Op::BrIfZ(b) => f(b.target),
        Op::BrTable(p) => {
            for t in &p.targets {
                f(t.target);
            }
            f(p.default.target);
        }
        _ => {}
    }
}

struct Chunk {
    /// Pre-instrumentation pc range `[start, end)`.
    start: usize,
    end: usize,
    cost: u64,
    host: bool,
}

/// Instrument one function body: partition into basic blocks, split blocks
/// over `budget`, insert [`Op::Fuel`] charges, renumber branch targets.
/// Returns the rewritten body, its certificate (with `name` unset), and
/// the position map (pre-instrumentation pc → the op's own post-
/// instrumentation index) so callers can relocate per-pc facts — the
/// optimizer's elision claims — into the instrumented body. Branch
/// targets are remapped internally via a separate leader→entry map, so
/// a branch to a charged block still lands on its `Op::Fuel` header.
pub(crate) fn instrument(code: &[Op], budget: u32) -> (Vec<Op>, FuncCost, Vec<u32>) {
    let budget = budget.max(1) as u64;
    let n = code.len();

    // Leaders: entry, branch targets, op after a terminator.
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    let mut loops: Vec<(usize, usize)> = Vec::new();
    for (pc, op) in code.iter().enumerate() {
        if is_terminator(op) && pc + 1 < n {
            leader[pc + 1] = true;
        }
        for_each_target(op, |t| {
            leader[t as usize] = true;
            // Back-edge: everything in [target, pc] is (part of) a loop.
            if t as usize <= pc {
                loops.push((t as usize, pc));
            }
        });
    }

    // Greedy chunking: one chunk per block, split when the running cost
    // would exceed the budget (a single op heavier than the budget forms
    // its own chunk — a gap cannot be narrower than one op).
    let mut chunks: Vec<Chunk> = Vec::new();
    let mut blocks = 0u32;
    let mut splits = 0u32;
    let mut i = 0;
    while i < n {
        blocks += 1;
        let mut j = i + 1;
        while j < n && !leader[j] {
            j += 1;
        }
        let (mut start, mut cost, mut host) = (i, 0u64, false);
        for (pc, op) in code.iter().enumerate().take(j).skip(i) {
            let c = op_cost(op) as u64;
            if cost > 0 && cost + c > budget {
                chunks.push(Chunk {
                    start,
                    end: pc,
                    cost,
                    host,
                });
                splits += 1;
                (start, cost, host) = (pc, 0, false);
            }
            cost += c;
            host |= matches!(op, Op::CallHost(_));
        }
        chunks.push(Chunk {
            start,
            end: j,
            cost,
            host,
        });
        i = j;
    }

    // Emit, recording where each old pc (in particular each leader) lands.
    let mut out: Vec<Op> = Vec::with_capacity(n + chunks.len());
    let mut map = vec![0u32; n];
    let mut pos = vec![0u32; n];
    let mut checks = 0u32;
    for ch in &chunks {
        let entry = out.len() as u32;
        if ch.cost > 0 {
            out.push(Op::Fuel(ch.cost as u32));
            checks += 1;
        }
        for pc in ch.start..ch.end {
            map[pc] = if pc == ch.start {
                entry
            } else {
                out.len() as u32
            };
            pos[pc] = out.len() as u32;
            out.push(code[pc].clone());
        }
    }
    for op in &mut out {
        match op {
            Op::Br(b) | Op::BrIf(b) | Op::BrIfZ(b) => b.target = map[b.target as usize],
            Op::BrTable(p) => {
                for t in &mut p.targets {
                    t.target = map[t.target as usize];
                }
                p.default.target = map[p.default.target as usize];
            }
            _ => {}
        }
    }

    let gap_of = |pred: &dyn Fn(&Chunk) -> bool| -> u32 {
        chunks
            .iter()
            .filter(|c| pred(c))
            .map(|c| c.cost)
            .max()
            .unwrap_or(0) as u32
    };
    let in_loop = |c: &Chunk| -> bool { loops.iter().any(|&(lo, hi)| c.start <= hi && c.end > lo) };
    let stats = FuncCost {
        name: None,
        blocks,
        checks,
        splits,
        total_cost: chunks.iter().map(|c| c.cost).sum(),
        max_gap: gap_of(&|_| true),
        max_loop_gap: gap_of(&in_loop),
        max_host_gap: gap_of(&|c: &Chunk| c.host),
    };
    (out, stats, pos)
}
