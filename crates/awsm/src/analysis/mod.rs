//! Load-time static analysis over the flat IR: stack-bound verification,
//! bounds-check elision, and module linting.
//!
//! Everything here runs exactly once, at [`translate`](crate::translate)
//! time, over the already-resolved code of a [`CompiledModule`]. The result
//! is an [`AnalysisReport`] stored on the module (so every consumer — the
//! registry, the CLI, the benchmarks — shares one analysis), plus a
//! rewritten per-function code copy in which statically-proven memory
//! accesses carry no bounds check (used by
//! [`BoundsStrategy::Static`](crate::BoundsStrategy::Static)).
//!
//! Three consumers:
//!
//! 1. **Verifier** ([`stack`]): per-function operand-stack heights and frame
//!    sizes, the call graph, recursion detection, and a worst-case stack
//!    bound in bytes for the whole module. `sledge-core` compares it against
//!    the sandbox stack budget *before* instantiation.
//! 2. **Bounds-check elision** ([`range`]): an intra-procedural interval
//!    analysis over guest addresses. A load/store whose effective address is
//!    proven `< min_pages * PAGE_SIZE` can never trap — linear memory only
//!    grows — so the `Static` strategy executes it unchecked.
//! 3. **Lints** ([`lint`] + [`range`]): structured [`Diagnostic`]s for
//!    statically-guaranteed traps and dead code. `Error` means the module
//!    will trap on the flagged path whenever it executes; the registry
//!    rejects such modules at load.

pub mod cost;
pub mod effects;
mod lint;
pub mod opt;
mod range;
mod stack;

use crate::code::{CompiledModule, Op};
use cost::CostReport;
use effects::{EffectReport, WriteFootprint};
use opt::OptReport;
use std::fmt;
use std::time::{Duration, Instant};

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious but not certainly fatal (dead code, recursion, a trap
    /// behind a dynamic guard). Logged at load.
    Warn,
    /// A statically-guaranteed trap on an entry path. The registry rejects
    /// the module.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Local function index the finding is in, if function-scoped.
    pub func: Option<u32>,
    /// Flat-code position within the function, if site-scoped.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.severity)?;
        if let Some(func) = self.func {
            write!(f, "func {func}")?;
            if let Some(pc) = self.pc {
                write!(f, " pc {pc}")?;
            }
            write!(f, ": ")?;
        }
        f.write_str(&self.message)
    }
}

/// Worst-case stack demand of a module, in bytes, over every entry path
/// (exports and table-resident functions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackBound {
    /// The call graph is acyclic from every root: the deepest chain needs
    /// this many bytes of frames, locals, and operands.
    Bounded(u64),
    /// A call cycle is reachable; stack demand cannot be bounded statically.
    Unbounded {
        /// Local function indices forming (part of) the cycle.
        cycle: Vec<u32>,
    },
}

/// Per-function analysis summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSummary {
    /// Export/debug name, if known.
    pub name: Option<String>,
    /// Maximum operand-stack slots this function uses.
    pub max_operand_slots: u32,
    /// Frame footprint in bytes: locals + operands + frame record.
    pub frame_bytes: u64,
    /// Memory-access sites in the function.
    pub mem_sites: u32,
    /// Sites proven in-bounds (elided under the `Static` strategy).
    pub elided_sites: u32,
    /// Whether the function is reachable from any export or table entry.
    pub reachable: bool,
}

/// The complete analysis result for one module.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// One summary per local function.
    pub funcs: Vec<FuncSummary>,
    /// Worst-case stack bound over all entry paths.
    pub stack_bound: StackBound,
    /// All lint findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Total memory-access sites in the module.
    pub mem_sites: u32,
    /// Total sites proven in-bounds.
    pub elided_sites: u32,
    /// Cost model + preemption-latency certificate. `None` only for
    /// reports that predate the cost pass (e.g. hand-built in tests);
    /// translation always produces one.
    pub cost: Option<CostReport>,
    /// Effect certificate: per-function reachable host imports and static
    /// write footprints, closed over the call graph. `None` only for
    /// hand-built reports; translation always produces one.
    pub effects: Option<EffectReport>,
    /// Optimization certificate: what the translate-time optimizer did
    /// and the translation-validation claims backing it. `None` when the
    /// module was translated with optimization off.
    pub opt: Option<OptReport>,
    /// Wall-clock duration of each analysis pass, in pipeline order.
    pub timings: Vec<(&'static str, Duration)>,
}

impl Default for AnalysisReport {
    fn default() -> Self {
        AnalysisReport {
            funcs: Vec::new(),
            stack_bound: StackBound::Bounded(0),
            diagnostics: Vec::new(),
            mem_sites: 0,
            elided_sites: 0,
            cost: None,
            effects: None,
            opt: None,
            timings: Vec::new(),
        }
    }
}

impl AnalysisReport {
    /// Whether any `Error`-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Iterate over diagnostics of one severity.
    pub fn with_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }

    /// Verify the module's stack demand against a byte budget. Returns an
    /// `Error` diagnostic when the bound exceeds the budget — or when
    /// recursion makes the demand unverifiable under a finite budget.
    pub fn check_stack(&self, max_stack_bytes: u64) -> Option<Diagnostic> {
        match &self.stack_bound {
            StackBound::Bounded(b) if *b > max_stack_bytes => Some(Diagnostic {
                severity: Severity::Error,
                func: None,
                pc: None,
                message: format!(
                    "worst-case stack demand {b} bytes exceeds budget {max_stack_bytes} bytes"
                ),
            }),
            StackBound::Bounded(_) => None,
            StackBound::Unbounded { cycle } => Some(Diagnostic {
                severity: Severity::Error,
                func: None,
                pc: None,
                message: format!(
                    "stack demand unverifiable under a {max_stack_bytes}-byte budget: \
                     recursive call cycle through funcs {cycle:?}"
                ),
            }),
        }
    }

    /// Verify the module's preemption-latency certificate against a gap
    /// budget in cost units. Returns an `Error` diagnostic when the
    /// certificate is missing or its certified gap exceeds the budget.
    pub fn check_gap(&self, max_check_gap: u32) -> Option<Diagnostic> {
        let Some(cost) = &self.cost else {
            return Some(Diagnostic {
                severity: Severity::Error,
                func: None,
                pc: None,
                message: format!(
                    "no preemption-latency certificate; cannot verify \
                     check gap <= {max_check_gap} cost units"
                ),
            });
        };
        if cost.max_gap > max_check_gap {
            let worst = cost
                .funcs
                .iter()
                .position(|f| f.max_gap == cost.max_gap)
                .map(|i| i as u32);
            return Some(Diagnostic {
                severity: Severity::Error,
                func: worst,
                pc: None,
                message: format!(
                    "preemption-latency certificate exceeds budget: \
                     max check-free gap {} > {} cost units",
                    cost.max_gap, max_check_gap
                ),
            });
        }
        None
    }

    /// The `Error` diagnostic used when a capability policy is configured
    /// but the module carries no effect certificate to verify it against.
    fn missing_effects() -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            func: None,
            pc: None,
            message: "no effect certificate; cannot verify the capability policy".to_string(),
        }
    }

    /// Verify the deny-by-default host-call policy for the entry point at
    /// module-space index `entry_idx` (see
    /// [`EffectReport::check_hostcalls`]). A missing certificate fails
    /// closed.
    pub fn check_hostcalls(&self, entry_idx: u32, allowed: &[String]) -> Option<Diagnostic> {
        match &self.effects {
            Some(e) => e.check_hostcalls(entry_idx, allowed),
            None => Some(Self::missing_effects()),
        }
    }

    /// Verify the static write-footprint policy for the entry point at
    /// module-space index `entry_idx` (see
    /// [`EffectReport::check_write_footprint`]). A missing certificate
    /// fails closed.
    pub fn check_write_footprint(&self, entry_idx: u32, max_bytes: u64) -> Option<Diagnostic> {
        match &self.effects {
            Some(e) => e.check_write_footprint(entry_idx, max_bytes),
            None => Some(Self::missing_effects()),
        }
    }

    /// Warn-severity check for grants the entry point can never exercise
    /// (see [`EffectReport::unused_grants`]). Absent certificate → no warn
    /// (the error path above already fired).
    pub fn unused_grants(&self, entry_idx: u32, allowed: &[String]) -> Option<Diagnostic> {
        self.effects
            .as_ref()
            .and_then(|e| e.unused_grants(entry_idx, allowed))
    }

    /// Multi-line human-readable report (used by `awsm-analyze`).
    pub fn render(&self, module_name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "module {module_name}:");
        match &self.stack_bound {
            StackBound::Bounded(b) => {
                let _ = writeln!(out, "  stack bound: {b} bytes (acyclic call graph)");
            }
            StackBound::Unbounded { cycle } => {
                let _ = writeln!(out, "  stack bound: unbounded (cycle through {cycle:?})");
            }
        }
        let _ = writeln!(
            out,
            "  bounds checks: {}/{} sites proven in-bounds (elided under `static`)",
            self.elided_sites, self.mem_sites
        );
        if let Some(c) = &self.cost {
            let _ = writeln!(
                out,
                "  cost model: max check-free gap {} / budget {} units, {} checks ({} split)",
                c.max_gap, c.max_check_gap, c.checks, c.splits
            );
        }
        if let Some(o) = &self.opt {
            let _ = writeln!(
                out,
                "  optimizer: {} -> {} ops ({} folds, {} branches, {} dead, {} fused), \
                 {} checks elided, {} fuel sites merged",
                o.ops_before,
                o.ops_after,
                o.folded,
                o.branches_simplified,
                o.dce_ops,
                o.fused,
                o.checks_elided,
                o.fuel_sites_merged
            );
        }
        for (pass, dur) in &self.timings {
            let _ = writeln!(out, "  pass {pass:<10} {:>9.1?}", dur);
        }
        for (i, f) in self.funcs.iter().enumerate() {
            let name = f.name.as_deref().unwrap_or("<anon>");
            let _ = write!(
                out,
                "  func {i:>3} {name:<20} frame {:>6} B, operands {:>3}, elided {}/{}",
                f.frame_bytes, f.max_operand_slots, f.elided_sites, f.mem_sites,
            );
            if let Some(fc) = self.cost.as_ref().and_then(|c| c.funcs.get(i)) {
                let _ = write!(
                    out,
                    ", cost {:>5}, gap {:>3} (loop {}, host {})",
                    fc.total_cost, fc.max_gap, fc.max_loop_gap, fc.max_host_gap
                );
            }
            let _ = writeln!(out, "{}", if f.reachable { "" } else { "  (unreachable)" });
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }
}

/// Analyze `m` in place: compute the report, optionally optimize every
/// body (preserving the originals in `code_unopt` for certificate-
/// failure fallback), rewrite proven-safe memory accesses into their
/// unchecked forms (`code_static`), instrument both bodies with exact
/// per-block fuel charges bounded by `max_check_gap`, and attach the
/// report to the module. Called once, at the end of translation.
///
/// Note: `Diagnostic::pc` and elision-site positions refer to the
/// *pre-instrumentation* code — the flat code after optimization but
/// before `Op::Fuel` insertion shifted positions.
pub(crate) fn analyze(m: &mut CompiledModule, max_check_gap: u32, optimize: bool) {
    let mut report = AnalysisReport::default();
    let mut timings: Vec<(&'static str, Duration)> = Vec::new();

    // Per-function operand heights; needed by both the verifier and the
    // frame-size summaries. Computed on the pre-optimization code: the
    // optimizer only ever lowers operand heights, so the stored bound
    // stays a sound (conservative) certificate for the shipped body.
    let t = Instant::now();
    let heights = stack::operand_heights(m);

    // Call graph, recursion, worst-case bound.
    let graph = stack::CallGraph::build(m);
    report.stack_bound = graph.stack_bound(m, &heights);
    timings.push(("stack", t.elapsed()));

    // Lints on the untouched translation: entry `unreachable`, dead
    // functions, statically-dead branches, never-read locals. Running
    // before optimization keeps the findings about what the guest
    // author wrote, not what the optimizer left behind.
    let t = Instant::now();
    let reachable = graph.reachable_set();
    lint::structural(m, &reachable, &mut report.diagnostics);
    lint::value_lints(m, &mut report.diagnostics);
    timings.push(("lint", t.elapsed()));

    // Optimizer: rewrite each body in place, preserving the original in
    // `code_unopt` so a failed certificate can fall back losslessly.
    let t = Instant::now();
    let mut opt_funcs: Vec<opt::OptFuncReport> = Vec::new();
    let arity = optimize.then(|| opt::Arity::build(m));
    if let Some(ar) = &arity {
        for func in m.funcs.iter_mut() {
            let ops_before = func.code.len() as u32;
            func.code_unopt = Some(func.code.clone());
            let stats = opt::optimize_func(
                &mut func.code,
                ar,
                func.nparams,
                func.nlocals,
                func.has_result,
            );
            opt_funcs.push(opt::OptFuncReport {
                ops_before,
                ops_after: func.code.len() as u32,
                folded: stats.folded,
                branches_simplified: stats.branches,
                dce_ops: stats.dce_ops,
                fused: stats.fused,
                ..Default::default()
            });
        }
    }
    timings.push(("opt", t.elapsed()));

    // Interval analysis per function: elision proofs, direct store
    // footprints, value lints.
    let t = Instant::now();
    let mut elisions: Vec<Vec<u32>> = Vec::with_capacity(m.funcs.len());
    let mut footprints: Vec<WriteFootprint> = Vec::with_capacity(m.funcs.len());
    for (fidx, func) in m.funcs.iter().enumerate() {
        let r = range::analyze_func(m, fidx as u32, func, &mut report.diagnostics);
        report.mem_sites += r.mem_sites;
        report.elided_sites += r.proven.len() as u32;
        report.funcs.push(FuncSummary {
            name: func.name.clone(),
            max_operand_slots: heights[fidx],
            frame_bytes: stack::frame_bytes(func, heights[fidx]),
            mem_sites: r.mem_sites,
            elided_sites: r.proven.len() as u32,
            reachable: reachable.contains(&(fidx as u32)),
        });
        elisions.push(r.proven);
        footprints.push(r.footprint);
    }
    timings.push(("range", t.elapsed()));

    // Effect certificate + effect-aware lints, before the cost pass so lint
    // pcs refer to pre-instrumentation code like every other diagnostic.
    // The call graph predates optimization: a superset of the optimized
    // graph, so the certificate stays a sound over-approximation.
    let t = Instant::now();
    let effects = effects::compute(m, &graph, &footprints);
    effects::lints(m, &effects, &reachable, &mut report.diagnostics);
    report.effects = Some(effects);
    timings.push(("effects", t.elapsed()));

    // Rewrite: a per-function shadow body in which proven sites are
    // unchecked. Identical length and branch targets — only the flagged
    // ops change, so `code_static` is a drop-in replacement.
    let t = Instant::now();
    for (func, pcs) in m.funcs.iter_mut().zip(&elisions) {
        if pcs.is_empty() {
            continue;
        }
        let mut code = func.code.clone();
        for &pc in pcs {
            let op = &mut code[pc as usize];
            *op = match op.clone() {
                Op::Load(k, off) => Op::LoadNc(k, off),
                Op::LoadL(k, l, off) => Op::LoadLNc(k, l, off),
                Op::Store(k, off) => Op::StoreNc(k, off),
                other => other,
            };
        }
        func.code_static = Some(code);
    }

    // Dominating-check elimination: accesses covered on every path by an
    // earlier check (or by the minimum memory size) drop their bounds
    // check in `code_static`, each conversion backed by an `OptClaim`.
    if let Some(ar) = &arity {
        let min_bytes = m.memory.map(|s| s.min_pages as u64 * 65536).unwrap_or(0);
        for (fidx, func) in m.funcs.iter_mut().enumerate() {
            let had_static = func.code_static.is_some();
            let mut cs = func.code_static.take().unwrap_or_else(|| func.code.clone());
            let claims = opt::elide_dominated(&mut cs, min_bytes, ar);
            if had_static || !claims.is_empty() {
                func.code_static = Some(cs);
            }
            opt_funcs[fidx].claims = claims;
        }
    }
    timings.push(("elide", t.elapsed()));

    // Cost pass, last: insert exact per-segment `Op::Fuel` charges (both
    // bodies — identical weights keep them aligned) and certify the max
    // check-free gap.
    let t = Instant::now();
    let mut cost = CostReport {
        max_check_gap,
        funcs: Vec::with_capacity(m.funcs.len()),
        max_gap: 0,
        checks: 0,
        splits: 0,
    };
    for (fidx, func) in m.funcs.iter_mut().enumerate() {
        let (code, mut fc, _) = cost::instrument(&func.code, max_check_gap);
        if let Some(cs) = func.code_static.take() {
            let (code_static, fc2, pos) = cost::instrument(&cs, max_check_gap);
            debug_assert_eq!(
                code.len(),
                code_static.len(),
                "cost instrumentation must keep code/code_static aligned"
            );
            debug_assert_eq!(fc, fc2);
            func.code_static = Some(code_static);
            // Relocate the elision claims onto post-instrumentation pcs.
            if let Some(fr) = opt_funcs.get_mut(fidx) {
                for claim in &mut fr.claims {
                    claim.pc = pos[claim.pc as usize];
                }
            }
        }
        if let Some(fr) = opt_funcs.get_mut(fidx) {
            // Fuel sites the unoptimized body would have carried, for
            // the merged-site accounting (transient instrumentation of
            // the preserved original).
            let before = func
                .code_unopt
                .as_ref()
                .map(|orig| cost::instrument(orig, max_check_gap).1.checks)
                .unwrap_or(fc.checks);
            fr.fuel_sites_before = before;
            fr.fuel_sites_after = fc.checks;
        }
        func.code = code;
        fc.name = func.name.clone();
        cost.max_gap = cost.max_gap.max(fc.max_gap);
        cost.checks += fc.checks;
        cost.splits += fc.splits;
        cost.funcs.push(fc);
    }
    report.cost = Some(cost);
    timings.push(("cost", t.elapsed()));

    if arity.is_some() {
        let mut o = OptReport::default();
        for f in &opt_funcs {
            o.ops_before += f.ops_before;
            o.ops_after += f.ops_after;
            o.folded += f.folded;
            o.branches_simplified += f.branches_simplified;
            o.dce_ops += f.dce_ops;
            o.fused += f.fused;
            o.checks_elided += f.claims.len() as u32;
            o.fuel_sites_merged += f.fuel_sites_before.saturating_sub(f.fuel_sites_after);
        }
        o.funcs = opt_funcs;
        report.opt = Some(o);
    }
    report.timings = timings;

    m.analysis = report;

    // In debug builds, an invalid certificate out of our own pipeline is
    // a bug — fail loudly rather than relying on the registry fallback.
    if cfg!(debug_assertions) && m.analysis.opt.is_some() {
        if let Err(e) = opt::validate(m) {
            panic!("optimizer produced an invalid certificate: {e}");
        }
    }
}
