//! Stack-bound verification: per-pc operand heights, per-function frame
//! sizes, the call graph, recursion detection, and the module-wide
//! worst-case stack demand.
//!
//! Heights are a simple forward dataflow over the flat code. Validated Wasm
//! guarantees every pc has a single well-defined height, so the "join" is
//! equality; unreachable pcs simply never get one.

use super::StackBound;
use crate::code::{CompiledFunc, CompiledModule, Op};
use std::collections::{HashMap, HashSet, VecDeque};

/// Bytes of a `Frame` record (func, pc, locals_base, stack_base — 4 × u32).
const FRAME_RECORD_BYTES: u64 = 16;

/// Arity of a canonical type id: `(nparams, has_result)`.
type ArityMap = HashMap<u32, (u32, bool)>;

fn arity_map(m: &CompiledModule) -> ArityMap {
    let mut map = ArityMap::new();
    for f in &m.funcs {
        map.insert(f.type_id, (f.nparams, f.has_result));
    }
    for h in &m.host_funcs {
        map.insert(h.type_id, (h.nparams, h.has_result));
    }
    map
}

/// Maximum operand-stack height of every local function.
pub(super) fn operand_heights(m: &CompiledModule) -> Vec<u32> {
    let arities = arity_map(m);
    m.funcs
        .iter()
        .map(|f| func_max_height(m, f, &arities))
        .collect()
}

/// Frame footprint in bytes: locals + worst-case operands + frame record.
pub(super) fn frame_bytes(func: &CompiledFunc, max_operand_slots: u32) -> u64 {
    (func.nlocals as u64 + max_operand_slots as u64) * 8 + FRAME_RECORD_BYTES
}

fn func_max_height(m: &CompiledModule, func: &CompiledFunc, arities: &ArityMap) -> u32 {
    let code = &func.code;
    let mut height: Vec<Option<u32>> = vec![None; code.len()];
    let mut work: VecDeque<u32> = VecDeque::new();
    height[0] = Some(0);
    work.push_back(0);
    let mut max = 0u32;

    // Record the height flowing into `pc`; enqueue on first visit.
    let mut flow = |height: &mut Vec<Option<u32>>, work: &mut VecDeque<u32>, pc: u32, h: u32| {
        max = max.max(h);
        match height[pc as usize] {
            None => {
                height[pc as usize] = Some(h);
                work.push_back(pc);
            }
            Some(prev) => debug_assert_eq!(prev, h, "height conflict at pc {pc}"),
        }
    };

    while let Some(pc) = work.pop_front() {
        let h = height[pc as usize].expect("queued pc has height");
        let next = pc + 1;
        match &code[pc as usize] {
            Op::Unreachable | Op::Return => {}
            Op::Br(b) => flow(&mut height, &mut work, b.target, b.height + b.keep as u32),
            Op::BrIf(b) | Op::BrIfZ(b) => {
                flow(&mut height, &mut work, b.target, b.height + b.keep as u32);
                flow(&mut height, &mut work, next, h - 1);
            }
            Op::BrTable(payload) => {
                for b in payload
                    .targets
                    .iter()
                    .chain(std::iter::once(&payload.default))
                {
                    flow(&mut height, &mut work, b.target, b.height + b.keep as u32);
                }
            }
            Op::Call(f) => {
                let callee = &m.funcs[*f as usize];
                flow(
                    &mut height,
                    &mut work,
                    next,
                    h - callee.nparams + callee.has_result as u32,
                );
            }
            Op::CallHost(hidx) => {
                let imp = &m.host_funcs[*hidx as usize];
                flow(
                    &mut height,
                    &mut work,
                    next,
                    h - imp.nparams + imp.has_result as u32,
                );
            }
            Op::CallIndirect(tid) => {
                // Unknown type id: no function of that type exists anywhere,
                // so the call can only trap — treat as a terminator.
                if let Some((np, res)) = arities.get(tid) {
                    flow(&mut height, &mut work, next, h - 1 - np + *res as u32);
                }
            }
            op => {
                let delta: i64 = match op {
                    Op::Drop | Op::LocalSet(_) | Op::GlobalSet(_) | Op::Bin(_) => -1,
                    Op::Select | Op::Store(_, _) | Op::StoreNc(_, _) => -2,
                    Op::LocalGet(_)
                    | Op::GlobalGet(_)
                    | Op::MemorySize
                    | Op::Const(_)
                    | Op::Bin2L(..)
                    | Op::LoadL(..)
                    | Op::LoadLNc(..) => 1,
                    _ => 0,
                };
                flow(&mut height, &mut work, next, (h as i64 + delta) as u32);
            }
        }
    }
    max
}

/// The module's call graph over local functions.
pub(super) struct CallGraph {
    /// Out-edges per local function (deduplicated).
    callees: Vec<Vec<u32>>,
    /// Entry points: exported local functions and table-resident functions.
    roots: Vec<u32>,
}

impl CallGraph {
    /// Out-edges per local function (indirect calls over-approximated by
    /// type-compatible table residency).
    pub(super) fn callees(&self) -> &[Vec<u32>] {
        &self.callees
    }

    pub(super) fn build(m: &CompiledModule) -> CallGraph {
        let ni = m.num_imports();
        // Local functions resident in the table, grouped by type id — the
        // over-approximated target set of every `call_indirect`.
        let mut table_by_type: HashMap<u32, Vec<u32>> = HashMap::new();
        for entry in m.table.iter().flatten() {
            if *entry >= ni {
                let f = *entry - ni;
                let tid = m.funcs[f as usize].type_id;
                let v = table_by_type.entry(tid).or_default();
                if !v.contains(&f) {
                    v.push(f);
                }
            }
        }

        let mut callees: Vec<Vec<u32>> = Vec::with_capacity(m.funcs.len());
        for func in &m.funcs {
            let mut out: Vec<u32> = Vec::new();
            for op in &func.code {
                match op {
                    Op::Call(f) if !out.contains(f) => out.push(*f),
                    Op::CallIndirect(tid) => {
                        for f in table_by_type.get(tid).map(|v| &v[..]).unwrap_or(&[]) {
                            if !out.contains(f) {
                                out.push(*f);
                            }
                        }
                    }
                    _ => {}
                }
            }
            callees.push(out);
        }

        let mut roots: Vec<u32> = Vec::new();
        for &idx in m.exports.values() {
            if idx >= ni && !roots.contains(&(idx - ni)) {
                roots.push(idx - ni);
            }
        }
        for entry in m.table.iter().flatten() {
            if *entry >= ni && !roots.contains(&(*entry - ni)) {
                roots.push(*entry - ni);
            }
        }
        roots.sort_unstable();

        CallGraph { callees, roots }
    }

    /// Every local function reachable from an export or the table.
    pub(super) fn reachable_set(&self) -> HashSet<u32> {
        let mut seen: HashSet<u32> = self.roots.iter().copied().collect();
        let mut work: Vec<u32> = self.roots.clone();
        while let Some(f) = work.pop() {
            for &c in &self.callees[f as usize] {
                if seen.insert(c) {
                    work.push(c);
                }
            }
        }
        seen
    }

    /// Worst-case stack demand in bytes over all entry paths, or the cycle
    /// that makes it unbounded.
    pub(super) fn stack_bound(&self, m: &CompiledModule, heights: &[u32]) -> StackBound {
        if let Some(cycle) = self.find_cycle() {
            return StackBound::Unbounded { cycle };
        }

        // Acyclic: memoized longest path, iteratively (guests can be deep).
        let frame: Vec<u64> = m
            .funcs
            .iter()
            .zip(heights)
            .map(|(f, &h)| frame_bytes(f, h))
            .collect();
        let mut cost: Vec<Option<u64>> = vec![None; m.funcs.len()];
        for &root in &self.roots {
            // Post-order: compute children before parents.
            let mut stack: Vec<(u32, bool)> = vec![(root, false)];
            while let Some((f, expanded)) = stack.pop() {
                if cost[f as usize].is_some() {
                    continue;
                }
                if expanded {
                    let deepest = self.callees[f as usize]
                        .iter()
                        .map(|&c| cost[c as usize].expect("child computed"))
                        .max()
                        .unwrap_or(0);
                    cost[f as usize] = Some(frame[f as usize] + deepest);
                } else {
                    stack.push((f, true));
                    for &c in &self.callees[f as usize] {
                        if cost[c as usize].is_none() {
                            stack.push((c, false));
                        }
                    }
                }
            }
        }
        let bound = self
            .roots
            .iter()
            .map(|&r| cost[r as usize].expect("root computed"))
            .max()
            .unwrap_or(0);
        StackBound::Bounded(bound)
    }

    /// Find a call cycle reachable from the roots, if any (iterative
    /// three-color DFS).
    fn find_cycle(&self) -> Option<Vec<u32>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.callees.len()];
        let mut path: Vec<u32> = Vec::new();

        for &root in &self.roots {
            if color[root as usize] != Color::White {
                continue;
            }
            // Stack of (node, next-callee-index to try).
            let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
            color[root as usize] = Color::Gray;
            path.push(root);
            while let Some(&mut (f, ref mut next)) = stack.last_mut() {
                if let Some(&c) = self.callees[f as usize].get(*next) {
                    *next += 1;
                    match color[c as usize] {
                        Color::Gray => {
                            // Back edge: the cycle is the path suffix from c.
                            let at = path.iter().position(|&p| p == c).expect("on path");
                            return Some(path[at..].to_vec());
                        }
                        Color::White => {
                            color[c as usize] = Color::Gray;
                            path.push(c);
                            stack.push((c, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[f as usize] = Color::Black;
                    path.pop();
                    stack.pop();
                }
            }
        }
        None
    }
}
