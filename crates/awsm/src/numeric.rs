//! Evaluation of the numeric operations over slot-encoded values.

use crate::code::{NumBin, NumUn};
use crate::value::*;

/// Apply a binary numeric operation to two slots.
///
/// # Errors
///
/// Returns a [`Trap`] for division by zero, signed-overflow division, and
/// invalid conversions.
#[inline(always)]
pub fn bin(op: NumBin, x: u64, y: u64) -> Result<u64, Trap> {
    use NumBin::*;
    let r = match op {
        // --- i32 ---
        I32Add => (x as u32).wrapping_add(y as u32) as u64,
        I32Sub => (x as u32).wrapping_sub(y as u32) as u64,
        I32Mul => (x as u32).wrapping_mul(y as u32) as u64,
        I32DivS => {
            let (a, b) = (x as u32 as i32, y as u32 as i32);
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            if a == i32::MIN && b == -1 {
                return Err(Trap::IntOverflow);
            }
            (a / b) as u32 as u64
        }
        I32DivU => {
            let (a, b) = (x as u32, y as u32);
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            (a / b) as u64
        }
        I32RemS => {
            let (a, b) = (x as u32 as i32, y as u32 as i32);
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_rem(b) as u32 as u64
        }
        I32RemU => {
            let (a, b) = (x as u32, y as u32);
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            (a % b) as u64
        }
        I32And => (x as u32 & y as u32) as u64,
        I32Or => (x as u32 | y as u32) as u64,
        I32Xor => (x as u32 ^ y as u32) as u64,
        I32Shl => (x as u32).wrapping_shl(y as u32) as u64,
        I32ShrS => ((x as u32 as i32).wrapping_shr(y as u32)) as u32 as u64,
        I32ShrU => (x as u32).wrapping_shr(y as u32) as u64,
        I32Rotl => (x as u32).rotate_left(y as u32 & 31) as u64,
        I32Rotr => (x as u32).rotate_right(y as u32 & 31) as u64,
        I32Eq => b(x as u32 == y as u32),
        I32Ne => b(x as u32 != y as u32),
        I32LtS => b((x as u32 as i32) < (y as u32 as i32)),
        I32LtU => b((x as u32) < (y as u32)),
        I32GtS => b((x as u32 as i32) > (y as u32 as i32)),
        I32GtU => b((x as u32) > (y as u32)),
        I32LeS => b((x as u32 as i32) <= (y as u32 as i32)),
        I32LeU => b((x as u32) <= (y as u32)),
        I32GeS => b((x as u32 as i32) >= (y as u32 as i32)),
        I32GeU => b((x as u32) >= (y as u32)),
        // --- i64 ---
        I64Add => x.wrapping_add(y),
        I64Sub => x.wrapping_sub(y),
        I64Mul => x.wrapping_mul(y),
        I64DivS => {
            let (a, c) = (x as i64, y as i64);
            if c == 0 {
                return Err(Trap::DivByZero);
            }
            if a == i64::MIN && c == -1 {
                return Err(Trap::IntOverflow);
            }
            (a / c) as u64
        }
        I64DivU => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x / y
        }
        I64RemS => {
            let (a, c) = (x as i64, y as i64);
            if c == 0 {
                return Err(Trap::DivByZero);
            }
            a.wrapping_rem(c) as u64
        }
        I64RemU => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x % y
        }
        I64And => x & y,
        I64Or => x | y,
        I64Xor => x ^ y,
        I64Shl => x.wrapping_shl(y as u32),
        I64ShrS => ((x as i64).wrapping_shr(y as u32)) as u64,
        I64ShrU => x.wrapping_shr(y as u32),
        I64Rotl => x.rotate_left(y as u32 & 63),
        I64Rotr => x.rotate_right(y as u32 & 63),
        I64Eq => b(x == y),
        I64Ne => b(x != y),
        I64LtS => b((x as i64) < (y as i64)),
        I64LtU => b(x < y),
        I64GtS => b((x as i64) > (y as i64)),
        I64GtU => b(x > y),
        I64LeS => b((x as i64) <= (y as i64)),
        I64LeU => b(x <= y),
        I64GeS => b((x as i64) >= (y as i64)),
        I64GeU => b(x >= y),
        // --- f32 ---
        F32Add => bits_f32(f32_of(x) + f32_of(y)),
        F32Sub => bits_f32(f32_of(x) - f32_of(y)),
        F32Mul => bits_f32(f32_of(x) * f32_of(y)),
        F32Div => bits_f32(f32_of(x) / f32_of(y)),
        F32Min => bits_f32(wasm_fmin32(f32_of(x), f32_of(y))),
        F32Max => bits_f32(wasm_fmax32(f32_of(x), f32_of(y))),
        F32Copysign => bits_f32(f32_of(x).copysign(f32_of(y))),
        F32Eq => b(f32_of(x) == f32_of(y)),
        F32Ne => b(f32_of(x) != f32_of(y)),
        F32Lt => b(f32_of(x) < f32_of(y)),
        F32Gt => b(f32_of(x) > f32_of(y)),
        F32Le => b(f32_of(x) <= f32_of(y)),
        F32Ge => b(f32_of(x) >= f32_of(y)),
        // --- f64 ---
        F64Add => bits_f64(f64_of(x) + f64_of(y)),
        F64Sub => bits_f64(f64_of(x) - f64_of(y)),
        F64Mul => bits_f64(f64_of(x) * f64_of(y)),
        F64Div => bits_f64(f64_of(x) / f64_of(y)),
        F64Min => bits_f64(wasm_fmin64(f64_of(x), f64_of(y))),
        F64Max => bits_f64(wasm_fmax64(f64_of(x), f64_of(y))),
        F64Copysign => bits_f64(f64_of(x).copysign(f64_of(y))),
        F64Eq => b(f64_of(x) == f64_of(y)),
        F64Ne => b(f64_of(x) != f64_of(y)),
        F64Lt => b(f64_of(x) < f64_of(y)),
        F64Gt => b(f64_of(x) > f64_of(y)),
        F64Le => b(f64_of(x) <= f64_of(y)),
        F64Ge => b(f64_of(x) >= f64_of(y)),
    };
    Ok(r)
}

/// Apply a unary numeric operation to one slot.
///
/// # Errors
///
/// Returns a [`Trap`] for invalid float → integer conversions.
#[inline(always)]
pub fn un(op: NumUn, x: u64) -> Result<u64, Trap> {
    use NumUn::*;
    let r = match op {
        I32Eqz => b(x as u32 == 0),
        I64Eqz => b(x == 0),
        I32Clz => (x as u32).leading_zeros() as u64,
        I32Ctz => (x as u32).trailing_zeros() as u64,
        I32Popcnt => (x as u32).count_ones() as u64,
        I64Clz => x.leading_zeros() as u64,
        I64Ctz => x.trailing_zeros() as u64,
        I64Popcnt => x.count_ones() as u64,
        F32Abs => bits_f32(f32_of(x).abs()),
        F32Neg => bits_f32(-f32_of(x)),
        F32Ceil => bits_f32(f32_of(x).ceil()),
        F32Floor => bits_f32(f32_of(x).floor()),
        F32Trunc => bits_f32(f32_of(x).trunc()),
        F32Nearest => bits_f32(f32_of(x).round_ties_even()),
        F32Sqrt => bits_f32(f32_of(x).sqrt()),
        F64Abs => bits_f64(f64_of(x).abs()),
        F64Neg => bits_f64(-f64_of(x)),
        F64Ceil => bits_f64(f64_of(x).ceil()),
        F64Floor => bits_f64(f64_of(x).floor()),
        F64Trunc => bits_f64(f64_of(x).trunc()),
        F64Nearest => bits_f64(f64_of(x).round_ties_even()),
        F64Sqrt => bits_f64(f64_of(x).sqrt()),
        I32WrapI64 => x as u32 as u64,
        I32TruncF32S => trunc_to_i32(f32_of(x) as f64)? as u32 as u64,
        I32TruncF32U => trunc_to_u32(f32_of(x) as f64)? as u64,
        I32TruncF64S => trunc_to_i32(f64_of(x))? as u32 as u64,
        I32TruncF64U => trunc_to_u32(f64_of(x))? as u64,
        I64ExtendI32S => (x as u32 as i32) as i64 as u64,
        I64ExtendI32U => x as u32 as u64,
        I64TruncF32S => trunc_to_i64(f32_of(x) as f64)? as u64,
        I64TruncF32U => trunc_to_u64(f32_of(x) as f64)?,
        I64TruncF64S => trunc_to_i64(f64_of(x))? as u64,
        I64TruncF64U => trunc_to_u64(f64_of(x))?,
        F32ConvertI32S => bits_f32(x as u32 as i32 as f32),
        F32ConvertI32U => bits_f32(x as u32 as f32),
        F32ConvertI64S => bits_f32(x as i64 as f32),
        F32ConvertI64U => bits_f32(x as f32),
        F32DemoteF64 => bits_f32(f64_of(x) as f32),
        F64ConvertI32S => bits_f64(x as u32 as i32 as f64),
        F64ConvertI32U => bits_f64(x as u32 as f64),
        F64ConvertI64S => bits_f64(x as i64 as f64),
        F64ConvertI64U => bits_f64(x as f64),
        F64PromoteF32 => bits_f64(f32_of(x) as f64),
        I32ReinterpretF32 => x as u32 as u64,
        I64ReinterpretF64 => x,
        F32ReinterpretI32 => x as u32 as u64,
        F64ReinterpretI64 => x,
        I32Extend8S => (x as u8 as i8) as i32 as u32 as u64,
        I32Extend16S => (x as u16 as i16) as i32 as u32 as u64,
        I64Extend8S => (x as u8 as i8) as i64 as u64,
        I64Extend16S => (x as u16 as i16) as i64 as u64,
        I64Extend32S => (x as u32 as i32) as i64 as u64,
    };
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::NumBin::*;
    use crate::code::NumUn::*;

    fn i32s(v: i32) -> u64 {
        v as u32 as u64
    }

    #[test]
    fn i32_wrapping_and_traps() {
        assert_eq!(
            bin(I32Add, i32s(i32::MAX), i32s(1)).unwrap(),
            i32s(i32::MIN)
        );
        assert_eq!(bin(I32DivS, i32s(-7), i32s(2)).unwrap(), i32s(-3));
        assert_eq!(bin(I32DivS, i32s(7), i32s(0)), Err(Trap::DivByZero));
        assert_eq!(
            bin(I32DivS, i32s(i32::MIN), i32s(-1)),
            Err(Trap::IntOverflow)
        );
        // i32::MIN % -1 == 0, no trap.
        assert_eq!(bin(I32RemS, i32s(i32::MIN), i32s(-1)).unwrap(), 0);
    }

    #[test]
    fn shifts_mask_their_count() {
        assert_eq!(bin(I32Shl, i32s(1), i32s(33)).unwrap(), i32s(2));
        assert_eq!(bin(I64Shl, 1, 65).unwrap(), 2);
        assert_eq!(bin(I32ShrS, i32s(-8), i32s(1)).unwrap(), i32s(-4));
        assert_eq!(bin(I32ShrU, i32s(-8), i32s(1)).unwrap(), i32s(0x7FFFFFFC));
    }

    #[test]
    fn comparisons_are_sign_correct() {
        assert_eq!(bin(I32LtS, i32s(-1), i32s(1)).unwrap(), 1);
        assert_eq!(bin(I32LtU, i32s(-1), i32s(1)).unwrap(), 0);
        assert_eq!(bin(I64GeU, u64::MAX, 0).unwrap(), 1);
    }

    #[test]
    fn float_ops_via_bits() {
        let x = bits_f64(1.5);
        let y = bits_f64(2.25);
        assert_eq!(f64_of(bin(F64Add, x, y).unwrap()), 3.75);
        assert_eq!(bin(F64Lt, x, y).unwrap(), 1);
        assert_eq!(f64_of(un(F64Sqrt, bits_f64(9.0)).unwrap()), 3.0);
        assert_eq!(f64_of(un(F64Nearest, bits_f64(2.5)).unwrap()), 2.0);
    }

    #[test]
    fn conversions() {
        assert_eq!(un(I64ExtendI32S, i32s(-1)).unwrap(), u64::MAX);
        assert_eq!(un(I64ExtendI32U, i32s(-1)).unwrap(), 0xFFFF_FFFF);
        assert_eq!(un(I32WrapI64, 0x1_0000_0005).unwrap(), 5);
        assert_eq!(f64_of(un(F64ConvertI32S, i32s(-2)).unwrap()), -2.0);
        assert_eq!(un(I32TruncF64S, bits_f64(-3.9)).unwrap(), i32s(-3));
        assert_eq!(
            un(I32TruncF64S, bits_f64(f64::NAN)),
            Err(Trap::InvalidConversion)
        );
        assert_eq!(un(I32Extend8S, i32s(0x80)).unwrap(), i32s(-128));
    }
}
