//! The resumable interpreter: executes translated code with fuel accounting
//! and external preemption, returning control to the scheduler at safe
//! points.

use crate::code::{CompiledModule, LoadKind, Op, StoreKind};
use crate::host::{Host, HostOutcome};
use crate::memory::{Bounds, LinearMemory};
use crate::value::Trap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Result of driving a sandbox for one quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepResult {
    /// The entry function returned (with its result slot, if any).
    Complete(Option<u64>),
    /// The fuel budget was exhausted; call `run` again to continue.
    OutOfFuel,
    /// The external preempt flag was observed; call `run` again to continue.
    Preempted,
    /// A host call returned [`HostOutcome::Pending`]; the sandbox is parked
    /// until the embedding runtime decides to resume it.
    Blocked,
    /// The sandbox violated a safety condition and is dead.
    Trapped(Trap),
}

/// Execution limits protecting the runtime from runaway guests.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum call depth.
    pub max_frames: usize,
    /// Maximum operand-stack slots.
    pub max_stack: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_frames: 8192,
            max_stack: 1 << 20,
        }
    }
}

/// One call frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    /// Index into `CompiledModule::funcs`.
    pub func: u32,
    /// Resume position.
    pub pc: u32,
    /// Base of this frame's locals in the locals stack.
    pub locals_base: u32,
    /// Operand-stack height at frame entry.
    pub stack_base: u32,
}

/// A host call that returned `Pending` and must be re-issued on resume.
#[derive(Debug, Clone)]
pub(crate) struct PendingHost {
    pub idx: u32,
    pub args: Vec<u64>,
}

/// The complete, saveable execution state of one sandbox — the paper's
/// "user-level context", kept outside linear memory (two-stack CFI).
#[derive(Debug, Default)]
pub(crate) struct ExecState {
    pub stack: Vec<u64>,
    pub frames: Vec<Frame>,
    pub locals: Vec<u64>,
    pub pending: Option<PendingHost>,
    /// Cost units charged but not yet covered by any quantum. Paid down at
    /// the start of the next `run` before execution resumes, so a charge
    /// larger than one quantum still makes progress (no livelock) while
    /// total fuel consumed stays exact.
    pub fuel_debt: u64,
    /// Set when `fuel_debt` was recorded for the op at the saved `pc`
    /// *before* it executed (naive per-op accounting): once the debt is
    /// paid, the first budget check after resume skips its charge so the
    /// op is not billed twice.
    pub prepaid: bool,
}

impl ExecState {
    pub fn clear(&mut self) {
        self.stack.clear();
        self.frames.clear();
        self.locals.clear();
        self.pending = None;
        self.fuel_debt = 0;
        self.prepaid = false;
    }
}

/// Charge `$cost` fuel units against the quantum and poll the external
/// preempt flag — the two ways a runnable sandbox yields. Saves `$pc` into
/// the current frame before pausing.
///
/// When the quantum cannot cover the charge, the shortfall is recorded as
/// `fuel_debt` (paid from subsequent quanta at the top of `run`) and
/// `OutOfFuel` is returned. **Tie-break: `OutOfFuel` wins** — if the
/// preempt flag is also set at an exhausted check, we still report
/// `OutOfFuel`; the flag stays set (`Instance::run` clears it only on
/// `Preempted`), so the pending preemption is consistently reported at the
/// next check of the next quantum rather than lost.
///
/// Two arms, differing in what the charge pays for:
///
/// * `at $pc` — pays for the op *at* `$pc`, which has not executed yet
///   (naive per-op accounting). A pause resumes at that op; `prepaid`
///   remembers its charge was already taken so it is not billed twice.
/// * `past $pc` — `$pc` has advanced past the charging op (an
///   [`Op::Fuel`] segment charge): a pause resumes after it, and the debt
///   alone carries the unpaid remainder.
macro_rules! check_budget {
    (at $pc:ident: $cost:expr, $fuel:ident, $preempt:ident, $st:ident) => {
        if $st.prepaid {
            $st.prepaid = false;
        } else {
            let c: u64 = $cost;
            if *$fuel < c {
                $st.fuel_debt = c - *$fuel;
                *$fuel = 0;
                $st.prepaid = true;
                $st.frames.last_mut().expect("frame").pc = $pc as u32;
                return StepResult::OutOfFuel;
            }
            *$fuel -= c;
        }
        if $preempt.load(Ordering::Relaxed) {
            // The op at $pc is charged but not executed; resume must not
            // bill it again.
            $st.prepaid = true;
            $st.frames.last_mut().expect("frame").pc = $pc as u32;
            return StepResult::Preempted;
        }
    };
    (past $pc:ident: $cost:expr, $fuel:ident, $preempt:ident, $st:ident) => {
        let c: u64 = $cost;
        if *$fuel < c {
            $st.fuel_debt = c - *$fuel;
            *$fuel = 0;
            $st.frames.last_mut().expect("frame").pc = $pc as u32;
            return StepResult::OutOfFuel;
        }
        *$fuel -= c;
        if $preempt.load(Ordering::Relaxed) {
            $st.frames.last_mut().expect("frame").pc = $pc as u32;
            return StepResult::Preempted;
        }
    };
}

/// Drive the sandbox until completion, trap, fuel exhaustion, preemption, or
/// a blocking host call.
///
/// Fuel is a work meter in the cost model's units (see
/// [`op_cost`](crate::analysis::cost::op_cost)). `NAIVE` selects the naive
/// tier's accounting: every instruction charges its own weight. The
/// optimized tier charges only at the [`Op::Fuel`] sites the cost analysis
/// inserted, each paying the exact summed weight of the check-free segment
/// it heads — so both tiers consume identical total fuel for the same
/// execution. `STATIC` selects the analysis-rewritten function bodies in
/// which statically-proven memory accesses carry no bounds check.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<B: Bounds, const NAIVE: bool, const STATIC: bool>(
    m: &CompiledModule,
    st: &mut ExecState,
    mem: &mut LinearMemory,
    globals: &mut [u64],
    table: &[Option<u32>],
    host: &mut dyn Host,
    fuel: &mut u64,
    preempt: &AtomicBool,
    limits: &Limits,
) -> StepResult {
    // Pay down debt from a charge the previous quantum could not cover.
    // Execution state was fully saved when the debt was recorded.
    if st.fuel_debt > 0 {
        let pay = st.fuel_debt.min(*fuel);
        st.fuel_debt -= pay;
        *fuel -= pay;
        if st.fuel_debt > 0 {
            return StepResult::OutOfFuel;
        }
        if preempt.load(Ordering::Relaxed) {
            return StepResult::Preempted;
        }
    }

    // Re-issue a pending host call, if any.
    if let Some(p) = st.pending.take() {
        let imp = &m.host_funcs[p.idx as usize];
        match host.call(p.idx, imp, &p.args, mem) {
            HostOutcome::Value(v) => st.stack.push(v),
            HostOutcome::Unit => {}
            HostOutcome::Pending => {
                st.pending = Some(p);
                return StepResult::Blocked;
            }
            HostOutcome::Trap(t) => return StepResult::Trapped(t),
        }
    }

    'frames: loop {
        let (fidx, mut pc, lb, sb) = {
            let f = match st.frames.last() {
                Some(f) => f,
                None => return StepResult::Complete(st.stack.pop().map(Some).unwrap_or(None)),
            };
            (
                f.func as usize,
                f.pc as usize,
                f.locals_base as usize,
                f.stack_base as usize,
            )
        };
        let func = &m.funcs[fidx];
        let code = if STATIC {
            func.code_static.as_deref().unwrap_or(&func.code[..])
        } else {
            &func.code[..]
        };

        loop {
            debug_assert!(pc < code.len(), "pc ran off function end");
            let op = &code[pc];
            if NAIVE {
                check_budget!(at pc: crate::analysis::cost::op_cost(op) as u64,
                    fuel, preempt, st);
            }
            pc += 1;
            match op {
                Op::Unreachable => return StepResult::Trapped(Trap::Unreachable),
                Op::Nop(_) => {
                    // Optimizer padding: no effect. The naive tier already
                    // charged its payload via `op_cost` above; the
                    // optimized tier folded it into the segment's
                    // `Op::Fuel` charge.
                }
                Op::Fuel(n) => {
                    // The optimized tier's only charge/poll site: pays the
                    // exact cost of the segment this op heads. The naive
                    // tier already charged per op (this op weighs 0).
                    if !NAIVE {
                        check_budget!(past pc: *n as u64, fuel, preempt, st);
                    }
                }
                Op::Br(b) => {
                    apply_branch(&mut st.stack, sb, b);
                    pc = b.target as usize;
                }
                Op::BrIf(b) => {
                    let c = st.stack.pop().expect("brif cond");
                    if c as u32 != 0 {
                        apply_branch(&mut st.stack, sb, b);
                        pc = b.target as usize;
                    }
                }
                Op::BrIfZ(b) => {
                    let c = st.stack.pop().expect("brifz cond");
                    if c as u32 == 0 {
                        apply_branch(&mut st.stack, sb, b);
                        pc = b.target as usize;
                    }
                }
                Op::BrTable(payload) => {
                    let i = st.stack.pop().expect("brtable index") as u32 as usize;
                    let b = payload.targets.get(i).unwrap_or(&payload.default);
                    apply_branch(&mut st.stack, sb, b);
                    pc = b.target as usize;
                }
                Op::Return => {
                    let result = if func.has_result {
                        st.stack.pop()
                    } else {
                        None
                    };
                    st.stack.truncate(sb);
                    st.locals.truncate(lb);
                    st.frames.pop();
                    if st.frames.is_empty() {
                        return StepResult::Complete(result);
                    }
                    if let Some(v) = result {
                        st.stack.push(v);
                    }
                    continue 'frames;
                }
                Op::Call(f) => {
                    st.frames.last_mut().expect("frame").pc = pc as u32;
                    if let Err(t) = push_call(m, st, *f, limits) {
                        return StepResult::Trapped(t);
                    }
                    // No budget check here: calls terminate cost segments,
                    // so the callee's entry `Op::Fuel` charges next.
                    continue 'frames;
                }
                Op::CallHost(h) => {
                    let imp = &m.host_funcs[*h as usize];
                    let n = imp.nparams as usize;
                    let at = st.stack.len() - n;
                    let args: Vec<u64> = st.stack.split_off(at);
                    match host.call(*h, imp, &args, mem) {
                        HostOutcome::Value(v) => st.stack.push(v),
                        HostOutcome::Unit => {}
                        HostOutcome::Pending => {
                            st.pending = Some(PendingHost { idx: *h, args });
                            st.frames.last_mut().expect("frame").pc = pc as u32;
                            return StepResult::Blocked;
                        }
                        HostOutcome::Trap(t) => return StepResult::Trapped(t),
                    }
                }
                Op::CallIndirect(type_id) => {
                    let i = st.stack.pop().expect("indirect index") as u32 as usize;
                    let entry = match table.get(i) {
                        Some(e) => e,
                        None => return StepResult::Trapped(Trap::TableOutOfBounds),
                    };
                    let target = match entry {
                        Some(t) => *t,
                        None => return StepResult::Trapped(Trap::UndefinedElement),
                    };
                    let ni = m.num_imports();
                    if target < ni {
                        let imp = &m.host_funcs[target as usize];
                        if imp.type_id != *type_id {
                            return StepResult::Trapped(Trap::IndirectTypeMismatch);
                        }
                        let n = imp.nparams as usize;
                        let at = st.stack.len() - n;
                        let args: Vec<u64> = st.stack.split_off(at);
                        match host.call(target, imp, &args, mem) {
                            HostOutcome::Value(v) => st.stack.push(v),
                            HostOutcome::Unit => {}
                            HostOutcome::Pending => {
                                st.pending = Some(PendingHost { idx: target, args });
                                st.frames.last_mut().expect("frame").pc = pc as u32;
                                return StepResult::Blocked;
                            }
                            HostOutcome::Trap(t) => return StepResult::Trapped(t),
                        }
                    } else {
                        let f = target - ni;
                        if m.funcs[f as usize].type_id != *type_id {
                            return StepResult::Trapped(Trap::IndirectTypeMismatch);
                        }
                        st.frames.last_mut().expect("frame").pc = pc as u32;
                        if let Err(t) = push_call(m, st, f, limits) {
                            return StepResult::Trapped(t);
                        }
                        continue 'frames;
                    }
                }
                Op::Drop => {
                    st.stack.pop();
                }
                Op::Select => {
                    let c = st.stack.pop().expect("select cond");
                    let b2 = st.stack.pop().expect("select b");
                    let a = st.stack.pop().expect("select a");
                    st.stack.push(if c as u32 != 0 { a } else { b2 });
                }
                Op::LocalGet(i) => st.stack.push(st.locals[lb + *i as usize]),
                Op::LocalSet(i) => st.locals[lb + *i as usize] = st.stack.pop().expect("set value"),
                Op::LocalTee(i) => {
                    st.locals[lb + *i as usize] = *st.stack.last().expect("tee value")
                }
                Op::GlobalGet(i) => st.stack.push(globals[*i as usize]),
                Op::GlobalSet(i) => globals[*i as usize] = st.stack.pop().expect("global value"),
                Op::Load(kind, off) => {
                    let addr = st.stack.pop().expect("load addr") as u32;
                    match do_load::<B>(mem, *kind, addr, *off) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::LoadL(kind, local, off) => {
                    let addr = st.locals[lb + *local as usize] as u32;
                    match do_load::<B>(mem, *kind, addr, *off) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Store(kind, off) => {
                    let val = st.stack.pop().expect("store value");
                    let addr = st.stack.pop().expect("store addr") as u32;
                    if let Err(t) = do_store::<B>(mem, *kind, addr, *off, val) {
                        return StepResult::Trapped(t);
                    }
                }
                Op::MemorySize => st.stack.push(mem.pages() as u64),
                Op::MemoryGrow => {
                    let n = st.stack.pop().expect("grow pages") as u32;
                    let r = mem.grow(n);
                    st.stack.push(r as u32 as u64);
                }
                Op::Const(c) => st.stack.push(*c),
                Op::Bin(op) => {
                    let y = st.stack.pop().expect("bin rhs");
                    let x = st.stack.pop().expect("bin lhs");
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Un(op) => {
                    let x = st.stack.pop().expect("un operand");
                    match crate::numeric::un(*op, x) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Bin2L(op, a, c) => {
                    let x = st.locals[lb + *a as usize];
                    let y = st.locals[lb + *c as usize];
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::BinRL(op, c) => {
                    let y = st.locals[lb + *c as usize];
                    let x = st.stack.pop().expect("binrl lhs");
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::BinRC(op, c) => {
                    let x = st.stack.pop().expect("binrc lhs");
                    match crate::numeric::bin(*op, x, *c) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Bin2LS(op, a, c, d) => {
                    let x = st.locals[lb + *a as usize];
                    let y = st.locals[lb + *c as usize];
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.locals[lb + *d as usize] = v,
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::IncI32(i, delta) => {
                    let slot = &mut st.locals[lb + *i as usize];
                    *slot = (*slot as u32).wrapping_add(*delta as u32) as u64;
                }
                Op::LoadNc(kind, off) => {
                    let addr = st.stack.pop().expect("load addr") as u32;
                    st.stack.push(do_load_nc(mem, *kind, addr, *off));
                }
                Op::LoadLNc(kind, local, off) => {
                    let addr = st.locals[lb + *local as usize] as u32;
                    st.stack.push(do_load_nc(mem, *kind, addr, *off));
                }
                Op::StoreNc(kind, off) => {
                    let val = st.stack.pop().expect("store value");
                    let addr = st.stack.pop().expect("store addr") as u32;
                    do_store_nc(mem, *kind, addr, *off, val);
                }
            }
        }
    }
}

#[inline(always)]
fn apply_branch(stack: &mut Vec<u64>, sb: usize, b: &crate::code::Branch) {
    let want = sb + b.height as usize;
    if b.keep {
        let v = *stack.last().expect("kept value");
        stack.truncate(want);
        stack.push(v);
    } else {
        stack.truncate(want);
    }
}

#[inline(always)]
fn push_call(m: &CompiledModule, st: &mut ExecState, f: u32, limits: &Limits) -> Result<(), Trap> {
    if st.frames.len() >= limits.max_frames || st.stack.len() >= limits.max_stack {
        return Err(Trap::StackExhausted);
    }
    let callee = &m.funcs[f as usize];
    let n = callee.nparams as usize;
    let lb2 = st.locals.len();
    let at = st.stack.len() - n;
    st.locals.extend_from_slice(&st.stack[at..]);
    st.stack.truncate(at);
    st.locals.resize(lb2 + callee.nlocals as usize, 0);
    st.frames.push(Frame {
        func: f,
        pc: 0,
        locals_base: lb2 as u32,
        stack_base: st.stack.len() as u32,
    });
    Ok(())
}

#[inline(always)]
fn do_load<B: Bounds>(
    mem: &LinearMemory,
    kind: LoadKind,
    addr: u32,
    off: u32,
) -> Result<u64, Trap> {
    Ok(match kind {
        LoadKind::I32 | LoadKind::F32 => u32::from_le_bytes(mem.load::<B, 4>(addr, off)?) as u64,
        LoadKind::I64 | LoadKind::F64 => u64::from_le_bytes(mem.load::<B, 8>(addr, off)?),
        LoadKind::I32U8 => mem.load::<B, 1>(addr, off)?[0] as u64,
        LoadKind::I32S8 => mem.load::<B, 1>(addr, off)?[0] as i8 as i32 as u32 as u64,
        LoadKind::I32U16 => u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as u64,
        LoadKind::I32S16 => {
            u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as i16 as i32 as u32 as u64
        }
        LoadKind::I64U8 => mem.load::<B, 1>(addr, off)?[0] as u64,
        LoadKind::I64S8 => mem.load::<B, 1>(addr, off)?[0] as i8 as i64 as u64,
        LoadKind::I64U16 => u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as u64,
        LoadKind::I64S16 => u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as i16 as i64 as u64,
        LoadKind::I64U32 => u32::from_le_bytes(mem.load::<B, 4>(addr, off)?) as u64,
        LoadKind::I64S32 => u32::from_le_bytes(mem.load::<B, 4>(addr, off)?) as i32 as i64 as u64,
    })
}

/// Load at a site the analyzer proved in-bounds — no strategy dispatch, no
/// check (beyond safe slice indexing and a debug assertion in
/// `LinearMemory::load_nc`).
#[inline(always)]
fn do_load_nc(mem: &LinearMemory, kind: LoadKind, addr: u32, off: u32) -> u64 {
    match kind {
        LoadKind::I32 | LoadKind::F32 => u32::from_le_bytes(mem.load_nc::<4>(addr, off)) as u64,
        LoadKind::I64 | LoadKind::F64 => u64::from_le_bytes(mem.load_nc::<8>(addr, off)),
        LoadKind::I32U8 => mem.load_nc::<1>(addr, off)[0] as u64,
        LoadKind::I32S8 => mem.load_nc::<1>(addr, off)[0] as i8 as i32 as u32 as u64,
        LoadKind::I32U16 => u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as u64,
        LoadKind::I32S16 => {
            u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as i16 as i32 as u32 as u64
        }
        LoadKind::I64U8 => mem.load_nc::<1>(addr, off)[0] as u64,
        LoadKind::I64S8 => mem.load_nc::<1>(addr, off)[0] as i8 as i64 as u64,
        LoadKind::I64U16 => u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as u64,
        LoadKind::I64S16 => u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as i16 as i64 as u64,
        LoadKind::I64U32 => u32::from_le_bytes(mem.load_nc::<4>(addr, off)) as u64,
        LoadKind::I64S32 => u32::from_le_bytes(mem.load_nc::<4>(addr, off)) as i32 as i64 as u64,
    }
}

/// Store at a proven-in-bounds site (see [`do_load_nc`]).
#[inline(always)]
fn do_store_nc(mem: &mut LinearMemory, kind: StoreKind, addr: u32, off: u32, val: u64) {
    match kind {
        StoreKind::I32 | StoreKind::F32 => mem.store_nc::<4>(addr, off, (val as u32).to_le_bytes()),
        StoreKind::I64 | StoreKind::F64 => mem.store_nc::<8>(addr, off, val.to_le_bytes()),
        StoreKind::B8From32 | StoreKind::B8From64 => mem.store_nc::<1>(addr, off, [val as u8]),
        StoreKind::B16From32 | StoreKind::B16From64 => {
            mem.store_nc::<2>(addr, off, (val as u16).to_le_bytes())
        }
        StoreKind::B32From64 => mem.store_nc::<4>(addr, off, (val as u32).to_le_bytes()),
    }
}

#[inline(always)]
fn do_store<B: Bounds>(
    mem: &mut LinearMemory,
    kind: StoreKind,
    addr: u32,
    off: u32,
    val: u64,
) -> Result<(), Trap> {
    match kind {
        StoreKind::I32 | StoreKind::F32 => mem.store::<B, 4>(addr, off, (val as u32).to_le_bytes()),
        StoreKind::I64 | StoreKind::F64 => mem.store::<B, 8>(addr, off, val.to_le_bytes()),
        StoreKind::B8From32 | StoreKind::B8From64 => mem.store::<B, 1>(addr, off, [val as u8]),
        StoreKind::B16From32 | StoreKind::B16From64 => {
            mem.store::<B, 2>(addr, off, (val as u16).to_le_bytes())
        }
        StoreKind::B32From64 => mem.store::<B, 4>(addr, off, (val as u32).to_le_bytes()),
    }
}
