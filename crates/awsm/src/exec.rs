//! The resumable interpreter: executes translated code with fuel accounting
//! and external preemption, returning control to the scheduler at safe
//! points.

use crate::code::{CompiledModule, LoadKind, Op, StoreKind};
use crate::host::{Host, HostOutcome};
use crate::memory::{Bounds, LinearMemory};
use crate::value::Trap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Result of driving a sandbox for one quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepResult {
    /// The entry function returned (with its result slot, if any).
    Complete(Option<u64>),
    /// The fuel budget was exhausted; call `run` again to continue.
    OutOfFuel,
    /// The external preempt flag was observed; call `run` again to continue.
    Preempted,
    /// A host call returned [`HostOutcome::Pending`]; the sandbox is parked
    /// until the embedding runtime decides to resume it.
    Blocked,
    /// The sandbox violated a safety condition and is dead.
    Trapped(Trap),
}

/// Execution limits protecting the runtime from runaway guests.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum call depth.
    pub max_frames: usize,
    /// Maximum operand-stack slots.
    pub max_stack: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_frames: 8192,
            max_stack: 1 << 20,
        }
    }
}

/// One call frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    /// Index into `CompiledModule::funcs`.
    pub func: u32,
    /// Resume position.
    pub pc: u32,
    /// Base of this frame's locals in the locals stack.
    pub locals_base: u32,
    /// Operand-stack height at frame entry.
    pub stack_base: u32,
}

/// A host call that returned `Pending` and must be re-issued on resume.
#[derive(Debug, Clone)]
pub(crate) struct PendingHost {
    pub idx: u32,
    pub args: Vec<u64>,
}

/// The complete, saveable execution state of one sandbox — the paper's
/// "user-level context", kept outside linear memory (two-stack CFI).
#[derive(Debug, Default)]
pub(crate) struct ExecState {
    pub stack: Vec<u64>,
    pub frames: Vec<Frame>,
    pub locals: Vec<u64>,
    pub pending: Option<PendingHost>,
}

impl ExecState {
    pub fn clear(&mut self) {
        self.stack.clear();
        self.frames.clear();
        self.locals.clear();
        self.pending = None;
    }
}

macro_rules! check_budget {
    ($fuel:ident, $preempt:ident, $st:ident, $pc:ident) => {
        if *$fuel == 0 {
            $st.frames.last_mut().expect("frame").pc = $pc as u32;
            return StepResult::OutOfFuel;
        }
        *$fuel -= 1;
        if $preempt.load(Ordering::Relaxed) {
            $st.frames.last_mut().expect("frame").pc = $pc as u32;
            return StepResult::Preempted;
        }
    };
}

/// Budget check for points where every frame's `pc` is already saved
/// (immediately after a call pushed a fresh frame).
macro_rules! check_budget_saved {
    ($fuel:ident, $preempt:ident) => {
        if *$fuel == 0 {
            return StepResult::OutOfFuel;
        }
        *$fuel -= 1;
        if $preempt.load(Ordering::Relaxed) {
            return StepResult::Preempted;
        }
    };
}

/// Drive the sandbox until completion, trap, fuel exhaustion, preemption, or
/// a blocking host call.
///
/// `NAIVE` selects the naive tier's accounting (fuel decremented on every
/// instruction rather than only at branches and calls). `STATIC` selects
/// the analysis-rewritten function bodies in which statically-proven memory
/// accesses carry no bounds check.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<B: Bounds, const NAIVE: bool, const STATIC: bool>(
    m: &CompiledModule,
    st: &mut ExecState,
    mem: &mut LinearMemory,
    globals: &mut [u64],
    table: &[Option<u32>],
    host: &mut dyn Host,
    fuel: &mut u64,
    preempt: &AtomicBool,
    limits: &Limits,
) -> StepResult {
    // Re-issue a pending host call, if any.
    if let Some(p) = st.pending.take() {
        let imp = &m.host_funcs[p.idx as usize];
        match host.call(p.idx, imp, &p.args, mem) {
            HostOutcome::Value(v) => st.stack.push(v),
            HostOutcome::Unit => {}
            HostOutcome::Pending => {
                st.pending = Some(p);
                return StepResult::Blocked;
            }
            HostOutcome::Trap(t) => return StepResult::Trapped(t),
        }
    }

    'frames: loop {
        let (fidx, mut pc, lb, sb) = {
            let f = match st.frames.last() {
                Some(f) => f,
                None => return StepResult::Complete(st.stack.pop().map(Some).unwrap_or(None)),
            };
            (
                f.func as usize,
                f.pc as usize,
                f.locals_base as usize,
                f.stack_base as usize,
            )
        };
        let func = &m.funcs[fidx];
        let code = if STATIC {
            func.code_static.as_deref().unwrap_or(&func.code[..])
        } else {
            &func.code[..]
        };

        loop {
            if NAIVE {
                check_budget!(fuel, preempt, st, pc);
            }
            debug_assert!(pc < code.len(), "pc ran off function end");
            let op = &code[pc];
            pc += 1;
            match op {
                Op::Unreachable => return StepResult::Trapped(Trap::Unreachable),
                Op::Br(b) => {
                    apply_branch(&mut st.stack, sb, b);
                    pc = b.target as usize;
                    if !NAIVE {
                        check_budget!(fuel, preempt, st, pc);
                    }
                }
                Op::BrIf(b) => {
                    let c = st.stack.pop().expect("brif cond");
                    if c as u32 != 0 {
                        apply_branch(&mut st.stack, sb, b);
                        pc = b.target as usize;
                        if !NAIVE {
                            check_budget!(fuel, preempt, st, pc);
                        }
                    }
                }
                Op::BrIfZ(b) => {
                    let c = st.stack.pop().expect("brifz cond");
                    if c as u32 == 0 {
                        apply_branch(&mut st.stack, sb, b);
                        pc = b.target as usize;
                        if !NAIVE {
                            check_budget!(fuel, preempt, st, pc);
                        }
                    }
                }
                Op::BrTable(payload) => {
                    let i = st.stack.pop().expect("brtable index") as u32 as usize;
                    let b = payload.targets.get(i).unwrap_or(&payload.default);
                    apply_branch(&mut st.stack, sb, b);
                    pc = b.target as usize;
                    if !NAIVE {
                        check_budget!(fuel, preempt, st, pc);
                    }
                }
                Op::Return => {
                    let result = if func.has_result {
                        st.stack.pop()
                    } else {
                        None
                    };
                    st.stack.truncate(sb);
                    st.locals.truncate(lb);
                    st.frames.pop();
                    if st.frames.is_empty() {
                        return StepResult::Complete(result);
                    }
                    if let Some(v) = result {
                        st.stack.push(v);
                    }
                    continue 'frames;
                }
                Op::Call(f) => {
                    st.frames.last_mut().expect("frame").pc = pc as u32;
                    if let Err(t) = push_call(m, st, *f, limits) {
                        return StepResult::Trapped(t);
                    }
                    if !NAIVE {
                        check_budget_saved!(fuel, preempt);
                    }
                    continue 'frames;
                }
                Op::CallHost(h) => {
                    let imp = &m.host_funcs[*h as usize];
                    let n = imp.nparams as usize;
                    let at = st.stack.len() - n;
                    let args: Vec<u64> = st.stack.split_off(at);
                    match host.call(*h, imp, &args, mem) {
                        HostOutcome::Value(v) => st.stack.push(v),
                        HostOutcome::Unit => {}
                        HostOutcome::Pending => {
                            st.pending = Some(PendingHost { idx: *h, args });
                            st.frames.last_mut().expect("frame").pc = pc as u32;
                            return StepResult::Blocked;
                        }
                        HostOutcome::Trap(t) => return StepResult::Trapped(t),
                    }
                }
                Op::CallIndirect(type_id) => {
                    let i = st.stack.pop().expect("indirect index") as u32 as usize;
                    let entry = match table.get(i) {
                        Some(e) => e,
                        None => return StepResult::Trapped(Trap::TableOutOfBounds),
                    };
                    let target = match entry {
                        Some(t) => *t,
                        None => return StepResult::Trapped(Trap::UndefinedElement),
                    };
                    let ni = m.num_imports();
                    if target < ni {
                        let imp = &m.host_funcs[target as usize];
                        if imp.type_id != *type_id {
                            return StepResult::Trapped(Trap::IndirectTypeMismatch);
                        }
                        let n = imp.nparams as usize;
                        let at = st.stack.len() - n;
                        let args: Vec<u64> = st.stack.split_off(at);
                        match host.call(target, imp, &args, mem) {
                            HostOutcome::Value(v) => st.stack.push(v),
                            HostOutcome::Unit => {}
                            HostOutcome::Pending => {
                                st.pending = Some(PendingHost { idx: target, args });
                                st.frames.last_mut().expect("frame").pc = pc as u32;
                                return StepResult::Blocked;
                            }
                            HostOutcome::Trap(t) => return StepResult::Trapped(t),
                        }
                    } else {
                        let f = target - ni;
                        if m.funcs[f as usize].type_id != *type_id {
                            return StepResult::Trapped(Trap::IndirectTypeMismatch);
                        }
                        st.frames.last_mut().expect("frame").pc = pc as u32;
                        if let Err(t) = push_call(m, st, f, limits) {
                            return StepResult::Trapped(t);
                        }
                        if !NAIVE {
                            check_budget_saved!(fuel, preempt);
                        }
                        continue 'frames;
                    }
                }
                Op::Drop => {
                    st.stack.pop();
                }
                Op::Select => {
                    let c = st.stack.pop().expect("select cond");
                    let b2 = st.stack.pop().expect("select b");
                    let a = st.stack.pop().expect("select a");
                    st.stack.push(if c as u32 != 0 { a } else { b2 });
                }
                Op::LocalGet(i) => st.stack.push(st.locals[lb + *i as usize]),
                Op::LocalSet(i) => st.locals[lb + *i as usize] = st.stack.pop().expect("set value"),
                Op::LocalTee(i) => {
                    st.locals[lb + *i as usize] = *st.stack.last().expect("tee value")
                }
                Op::GlobalGet(i) => st.stack.push(globals[*i as usize]),
                Op::GlobalSet(i) => globals[*i as usize] = st.stack.pop().expect("global value"),
                Op::Load(kind, off) => {
                    let addr = st.stack.pop().expect("load addr") as u32;
                    match do_load::<B>(mem, *kind, addr, *off) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::LoadL(kind, local, off) => {
                    let addr = st.locals[lb + *local as usize] as u32;
                    match do_load::<B>(mem, *kind, addr, *off) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Store(kind, off) => {
                    let val = st.stack.pop().expect("store value");
                    let addr = st.stack.pop().expect("store addr") as u32;
                    if let Err(t) = do_store::<B>(mem, *kind, addr, *off, val) {
                        return StepResult::Trapped(t);
                    }
                }
                Op::MemorySize => st.stack.push(mem.pages() as u64),
                Op::MemoryGrow => {
                    let n = st.stack.pop().expect("grow pages") as u32;
                    let r = mem.grow(n);
                    st.stack.push(r as u32 as u64);
                }
                Op::Const(c) => st.stack.push(*c),
                Op::Bin(op) => {
                    let y = st.stack.pop().expect("bin rhs");
                    let x = st.stack.pop().expect("bin lhs");
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Un(op) => {
                    let x = st.stack.pop().expect("un operand");
                    match crate::numeric::un(*op, x) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Bin2L(op, a, c) => {
                    let x = st.locals[lb + *a as usize];
                    let y = st.locals[lb + *c as usize];
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::BinRL(op, c) => {
                    let y = st.locals[lb + *c as usize];
                    let x = st.stack.pop().expect("binrl lhs");
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::BinRC(op, c) => {
                    let x = st.stack.pop().expect("binrc lhs");
                    match crate::numeric::bin(*op, x, *c) {
                        Ok(v) => st.stack.push(v),
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::Bin2LS(op, a, c, d) => {
                    let x = st.locals[lb + *a as usize];
                    let y = st.locals[lb + *c as usize];
                    match crate::numeric::bin(*op, x, y) {
                        Ok(v) => st.locals[lb + *d as usize] = v,
                        Err(t) => return StepResult::Trapped(t),
                    }
                }
                Op::IncI32(i, delta) => {
                    let slot = &mut st.locals[lb + *i as usize];
                    *slot = (*slot as u32).wrapping_add(*delta as u32) as u64;
                }
                Op::LoadNc(kind, off) => {
                    let addr = st.stack.pop().expect("load addr") as u32;
                    st.stack.push(do_load_nc(mem, *kind, addr, *off));
                }
                Op::LoadLNc(kind, local, off) => {
                    let addr = st.locals[lb + *local as usize] as u32;
                    st.stack.push(do_load_nc(mem, *kind, addr, *off));
                }
                Op::StoreNc(kind, off) => {
                    let val = st.stack.pop().expect("store value");
                    let addr = st.stack.pop().expect("store addr") as u32;
                    do_store_nc(mem, *kind, addr, *off, val);
                }
            }
        }
    }
}

#[inline(always)]
fn apply_branch(stack: &mut Vec<u64>, sb: usize, b: &crate::code::Branch) {
    let want = sb + b.height as usize;
    if b.keep {
        let v = *stack.last().expect("kept value");
        stack.truncate(want);
        stack.push(v);
    } else {
        stack.truncate(want);
    }
}

#[inline(always)]
fn push_call(m: &CompiledModule, st: &mut ExecState, f: u32, limits: &Limits) -> Result<(), Trap> {
    if st.frames.len() >= limits.max_frames || st.stack.len() >= limits.max_stack {
        return Err(Trap::StackExhausted);
    }
    let callee = &m.funcs[f as usize];
    let n = callee.nparams as usize;
    let lb2 = st.locals.len();
    let at = st.stack.len() - n;
    st.locals.extend_from_slice(&st.stack[at..]);
    st.stack.truncate(at);
    st.locals.resize(lb2 + callee.nlocals as usize, 0);
    st.frames.push(Frame {
        func: f,
        pc: 0,
        locals_base: lb2 as u32,
        stack_base: st.stack.len() as u32,
    });
    Ok(())
}

#[inline(always)]
fn do_load<B: Bounds>(
    mem: &LinearMemory,
    kind: LoadKind,
    addr: u32,
    off: u32,
) -> Result<u64, Trap> {
    Ok(match kind {
        LoadKind::I32 | LoadKind::F32 => u32::from_le_bytes(mem.load::<B, 4>(addr, off)?) as u64,
        LoadKind::I64 | LoadKind::F64 => u64::from_le_bytes(mem.load::<B, 8>(addr, off)?),
        LoadKind::I32U8 => mem.load::<B, 1>(addr, off)?[0] as u64,
        LoadKind::I32S8 => mem.load::<B, 1>(addr, off)?[0] as i8 as i32 as u32 as u64,
        LoadKind::I32U16 => u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as u64,
        LoadKind::I32S16 => {
            u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as i16 as i32 as u32 as u64
        }
        LoadKind::I64U8 => mem.load::<B, 1>(addr, off)?[0] as u64,
        LoadKind::I64S8 => mem.load::<B, 1>(addr, off)?[0] as i8 as i64 as u64,
        LoadKind::I64U16 => u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as u64,
        LoadKind::I64S16 => u16::from_le_bytes(mem.load::<B, 2>(addr, off)?) as i16 as i64 as u64,
        LoadKind::I64U32 => u32::from_le_bytes(mem.load::<B, 4>(addr, off)?) as u64,
        LoadKind::I64S32 => u32::from_le_bytes(mem.load::<B, 4>(addr, off)?) as i32 as i64 as u64,
    })
}

/// Load at a site the analyzer proved in-bounds — no strategy dispatch, no
/// check (beyond safe slice indexing and a debug assertion in
/// `LinearMemory::load_nc`).
#[inline(always)]
fn do_load_nc(mem: &LinearMemory, kind: LoadKind, addr: u32, off: u32) -> u64 {
    match kind {
        LoadKind::I32 | LoadKind::F32 => u32::from_le_bytes(mem.load_nc::<4>(addr, off)) as u64,
        LoadKind::I64 | LoadKind::F64 => u64::from_le_bytes(mem.load_nc::<8>(addr, off)),
        LoadKind::I32U8 => mem.load_nc::<1>(addr, off)[0] as u64,
        LoadKind::I32S8 => mem.load_nc::<1>(addr, off)[0] as i8 as i32 as u32 as u64,
        LoadKind::I32U16 => u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as u64,
        LoadKind::I32S16 => {
            u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as i16 as i32 as u32 as u64
        }
        LoadKind::I64U8 => mem.load_nc::<1>(addr, off)[0] as u64,
        LoadKind::I64S8 => mem.load_nc::<1>(addr, off)[0] as i8 as i64 as u64,
        LoadKind::I64U16 => u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as u64,
        LoadKind::I64S16 => u16::from_le_bytes(mem.load_nc::<2>(addr, off)) as i16 as i64 as u64,
        LoadKind::I64U32 => u32::from_le_bytes(mem.load_nc::<4>(addr, off)) as u64,
        LoadKind::I64S32 => u32::from_le_bytes(mem.load_nc::<4>(addr, off)) as i32 as i64 as u64,
    }
}

/// Store at a proven-in-bounds site (see [`do_load_nc`]).
#[inline(always)]
fn do_store_nc(mem: &mut LinearMemory, kind: StoreKind, addr: u32, off: u32, val: u64) {
    match kind {
        StoreKind::I32 | StoreKind::F32 => mem.store_nc::<4>(addr, off, (val as u32).to_le_bytes()),
        StoreKind::I64 | StoreKind::F64 => mem.store_nc::<8>(addr, off, val.to_le_bytes()),
        StoreKind::B8From32 | StoreKind::B8From64 => mem.store_nc::<1>(addr, off, [val as u8]),
        StoreKind::B16From32 | StoreKind::B16From64 => {
            mem.store_nc::<2>(addr, off, (val as u16).to_le_bytes())
        }
        StoreKind::B32From64 => mem.store_nc::<4>(addr, off, (val as u32).to_le_bytes()),
    }
}

#[inline(always)]
fn do_store<B: Bounds>(
    mem: &mut LinearMemory,
    kind: StoreKind,
    addr: u32,
    off: u32,
    val: u64,
) -> Result<(), Trap> {
    match kind {
        StoreKind::I32 | StoreKind::F32 => mem.store::<B, 4>(addr, off, (val as u32).to_le_bytes()),
        StoreKind::I64 | StoreKind::F64 => mem.store::<B, 8>(addr, off, val.to_le_bytes()),
        StoreKind::B8From32 | StoreKind::B8From64 => mem.store::<B, 1>(addr, off, [val as u8]),
        StoreKind::B16From32 | StoreKind::B16From64 => {
            mem.store::<B, 2>(addr, off, (val as u16).to_le_bytes())
        }
        StoreKind::B32From64 => mem.store::<B, 4>(addr, off, (val as u32).to_le_bytes()),
    }
}
