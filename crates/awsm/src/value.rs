//! Runtime values, traps, and the exact numeric semantics of WebAssembly.
//!
//! All values are carried in untyped 64-bit slots (`u64`): `i32` is
//! zero-extended, `f32`/`f64` are carried as their IEEE bit patterns.
//! Validation guarantees well-typedness, so the interpreter never needs
//! runtime type tags.

use std::fmt;

/// A typed WebAssembly value, used at the public API boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
}

impl Value {
    /// Raw 64-bit slot encoding.
    pub fn to_bits(self) -> u64 {
        match self {
            Value::I32(v) => v as u32 as u64,
            Value::I64(v) => v as u64,
            Value::F32(v) => v.to_bits() as u64,
            Value::F64(v) => v.to_bits(),
        }
    }

    /// The `i32` payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I32`.
    pub fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            other => panic!("expected i32, got {other:?}"),
        }
    }

    /// The `f64` payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `F64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// The `i64` payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I64`.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            other => panic!("expected i64, got {other:?}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

/// A WebAssembly trap: the sandbox violated a safety condition and was
/// terminated. Traps never unwind into the host; they are returned as
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// `unreachable` executed.
    Unreachable,
    /// Linear-memory access outside the committed region.
    OutOfBounds,
    /// Integer division or remainder by zero.
    DivByZero,
    /// `i32::MIN / -1`-style overflow.
    IntOverflow,
    /// Float-to-int conversion of NaN or out-of-range value.
    InvalidConversion,
    /// `call_indirect` to a null table entry.
    UndefinedElement,
    /// `call_indirect` signature mismatch.
    IndirectTypeMismatch,
    /// `call_indirect` index outside the table.
    TableOutOfBounds,
    /// Call depth or operand stack limit exceeded.
    StackExhausted,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Trap::Unreachable => "unreachable executed",
            Trap::OutOfBounds => "out-of-bounds memory access",
            Trap::DivByZero => "integer division by zero",
            Trap::IntOverflow => "integer overflow",
            Trap::InvalidConversion => "invalid float-to-integer conversion",
            Trap::UndefinedElement => "undefined table element",
            Trap::IndirectTypeMismatch => "indirect call type mismatch",
            Trap::TableOutOfBounds => "table index out of bounds",
            Trap::StackExhausted => "call stack exhausted",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Trap {}

#[inline(always)]
pub(crate) fn f32_of(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}
#[inline(always)]
pub(crate) fn f64_of(bits: u64) -> f64 {
    f64::from_bits(bits)
}
#[inline(always)]
pub(crate) fn bits_f32(v: f32) -> u64 {
    v.to_bits() as u64
}
#[inline(always)]
pub(crate) fn bits_f64(v: f64) -> u64 {
    v.to_bits()
}
#[inline(always)]
pub(crate) fn b(v: bool) -> u64 {
    v as u64
}

/// Wasm float `min`: NaN-propagating, `-0 < +0`.
#[inline(always)]
pub(crate) fn wasm_fmin64(x: f64, y: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if y.is_nan() {
        return y;
    }
    if x == y {
        // Distinguish -0.0 from +0.0.
        return if x.is_sign_negative() { x } else { y };
    }
    if x < y {
        x
    } else {
        y
    }
}

/// Wasm float `max`: NaN-propagating, `+0 > -0`.
#[inline(always)]
pub(crate) fn wasm_fmax64(x: f64, y: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if y.is_nan() {
        return y;
    }
    if x == y {
        return if x.is_sign_positive() { x } else { y };
    }
    if x > y {
        x
    } else {
        y
    }
}

#[inline(always)]
pub(crate) fn wasm_fmin32(x: f32, y: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if y.is_nan() {
        return y;
    }
    if x == y {
        return if x.is_sign_negative() { x } else { y };
    }
    if x < y {
        x
    } else {
        y
    }
}

#[inline(always)]
pub(crate) fn wasm_fmax32(x: f32, y: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if y.is_nan() {
        return y;
    }
    if x == y {
        return if x.is_sign_positive() { x } else { y };
    }
    if x > y {
        x
    } else {
        y
    }
}

/// Checked float → integer truncation per the Wasm spec: traps on NaN and on
/// values whose truncation is unrepresentable.
#[inline(always)]
pub(crate) fn trunc_to_i32(x: f64) -> Result<i32, Trap> {
    if x.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = x.trunc();
    if !(-2147483648.0..=2147483647.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as i32)
}

#[inline(always)]
pub(crate) fn trunc_to_u32(x: f64) -> Result<u32, Trap> {
    if x.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = x.trunc();
    if !(0.0..=4294967295.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as u32)
}

#[inline(always)]
pub(crate) fn trunc_to_i64(x: f64) -> Result<i64, Trap> {
    if x.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = x.trunc();
    // 2^63 is exactly representable; anything >= it is out of range.
    if !(-9223372036854775808.0..9223372036854775808.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as i64)
}

#[inline(always)]
pub(crate) fn trunc_to_u64(x: f64) -> Result<u64, Trap> {
    if x.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = x.trunc();
    if !(0.0..18446744073709551616.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bits_roundtrip() {
        assert_eq!(Value::I32(-1).to_bits(), 0xFFFF_FFFF);
        assert_eq!(Value::I64(-1).to_bits(), u64::MAX);
        assert_eq!(Value::F64(1.5).to_bits(), 1.5f64.to_bits());
        assert_eq!(Value::F32(1.5).to_bits(), 1.5f32.to_bits() as u64);
    }

    #[test]
    fn fmin_fmax_signed_zero_and_nan() {
        assert!(wasm_fmin64(f64::NAN, 1.0).is_nan());
        assert!(wasm_fmax64(1.0, f64::NAN).is_nan());
        assert!(wasm_fmin64(0.0, -0.0).is_sign_negative());
        assert!(wasm_fmax64(-0.0, 0.0).is_sign_positive());
        assert_eq!(wasm_fmin64(1.0, 2.0), 1.0);
        assert_eq!(wasm_fmax64(1.0, 2.0), 2.0);
    }

    #[test]
    fn trunc_bounds() {
        assert_eq!(trunc_to_i32(2147483647.9).unwrap(), 2147483647);
        assert!(trunc_to_i32(2147483648.0).is_err());
        assert_eq!(trunc_to_i32(-2147483648.9).unwrap(), -2147483648);
        assert!(trunc_to_i32(-2147483649.0).is_err());
        assert!(trunc_to_i32(f64::NAN).is_err());
        assert!(trunc_to_u32(-0.9).is_ok());
        assert!(trunc_to_u32(-1.0).is_err());
        assert!(trunc_to_i64(9.3e18).is_err());
        assert_eq!(trunc_to_i64(-9223372036854775808.0).unwrap(), i64::MIN);
        assert!(trunc_to_u64(1.9e19).is_err());
    }
}
