//! aWsm: the ahead-of-time WebAssembly translation and execution engine of
//! the Sledge reproduction.
//!
//! The pipeline mirrors the paper's compiler/runtime split:
//!
//! 1. [`translate`] performs the "heavyweight linking and loading": it
//!    validates a `sledge-wasm` module and resolves it into an immutable
//!    [`CompiledModule`] (flat code, direct jumps, pre-resolved imports,
//!    optional super-instruction fusion). Done once per module.
//! 2. [`Instance::new`] is the µs-level "optimized function startup": it
//!    allocates only linear memory, the (separate) execution stacks, and a
//!    context record.
//! 3. [`Instance::run`] drives execution for a fuel quantum with an external
//!    preempt flag, returning at safe points — the mechanism the Sledge
//!    runtime uses for user-level preemptive round-robin scheduling.
//!
//! Bounds-checking is configurable per instance via [`BoundsStrategy`]
//! (§3.2 of the paper); the execution [`Tier`] selects optimized vs. naive
//! translation (the stand-ins for the LLVM- and Cranelift-class engines in
//! the paper's Figure 5).
//!
//! # Examples
//!
//! ```
//! use sledge_guestc::{dsl::*, FuncBuilder, ModuleBuilder};
//! use sledge_wasm::types::ValType;
//! use awsm::{translate, Tier, Instance, EngineConfig, NullHost, StepResult, Value};
//! use std::sync::Arc;
//!
//! // Guest: add one.
//! let mut mb = ModuleBuilder::new("inc");
//! let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
//! let x = f.arg(0);
//! f.push(ret(Some(add(local(x), i32c(1)))));
//! let main = mb.add_func("main", f);
//! mb.export_func(main, "main");
//! let module = mb.build()?;
//!
//! let compiled = Arc::new(translate(&module, Tier::Optimized)?);
//! let mut inst = Instance::new(compiled, EngineConfig::default())?;
//! inst.invoke_export("main", &[Value::I32(41)])?;
//! let mut host = NullHost;
//! match inst.run(&mut host, u64::MAX) {
//!     StepResult::Complete(Some(v)) => assert_eq!(v as u32, 42),
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod artifact;
pub mod code;
mod exec;
mod host;
mod memory;
mod numeric;
mod translate;
mod value;

pub use analysis::cost::{op_cost, CostReport, FuncCost, DEFAULT_MAX_CHECK_GAP};
pub use analysis::effects::{EffectReport, FuncEffect, WriteFootprint};
pub use analysis::opt::{
    revert_optimizations, validate as validate_opt, ClaimBase, OptClaim, OptFuncReport, OptReport,
};
pub use analysis::{AnalysisReport, Diagnostic, Severity, StackBound};
pub use artifact::{decode as decode_artifact, encode as encode_artifact, ArtifactError};
pub use code::{CompiledModule, HostImport, Op};
pub use exec::{Limits, StepResult};
pub use host::{Host, HostOutcome, NullHost};
pub use memory::{BoundsStrategy, LinearMemory, MemoryError, MemoryTemplate};
pub use translate::{translate, translate_with, Tier, TranslateError, TranslateOptions};
pub use value::{Trap, Value};

use exec::{ExecState, Frame};
use memory::{DynBounds, MaskBounds, MpxBounds, SoftwareBounds};
use std::error::Error;
use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Per-instance engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Bounds-check strategy for linear-memory accesses.
    pub bounds: BoundsStrategy,
    /// Execution tier accounting (should match the tier the module was
    /// translated for to get representative performance; semantics are
    /// identical either way).
    pub tier: Tier,
    /// Guest resource limits.
    pub limits: Limits,
}

/// Errors from instance setup and invocation.
#[derive(Debug)]
pub enum InstanceError {
    /// The module's data segments do not fit its initial memory.
    DataOutOfBounds,
    /// The module's memory limits are invalid.
    Memory(MemoryError),
    /// No export with the requested name.
    NoSuchExport(String),
    /// The export is an imported function and cannot be an entry point.
    ExportIsImport(String),
    /// Wrong number of arguments for the entry function.
    ArityMismatch {
        /// Parameters the entry function declares.
        expected: u32,
        /// Arguments supplied.
        got: u32,
    },
    /// An invocation is already in progress (or `run` was called idle).
    InvalidState,
    /// The instance already trapped and cannot be reused.
    Dead(Trap),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::DataOutOfBounds => write!(f, "data segment outside initial memory"),
            InstanceError::Memory(e) => write!(f, "invalid memory limits: {e}"),
            InstanceError::NoSuchExport(n) => write!(f, "no exported function {n:?}"),
            InstanceError::ExportIsImport(n) => {
                write!(f, "export {n:?} is an import, not a local function")
            }
            InstanceError::ArityMismatch { expected, got } => {
                write!(f, "entry function expects {expected} arguments, got {got}")
            }
            InstanceError::InvalidState => write!(f, "invalid instance state for this operation"),
            InstanceError::Dead(t) => write!(f, "instance is dead after trap: {t}"),
        }
    }
}

impl Error for InstanceError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Idle,
    Running,
    Dead(Trap),
}

/// How a recycled sandbox's linear memory is restored to pristine state,
/// chosen per entry point from the module's effect certificate (see
/// [`CompiledModule::reset_policy`]). Every variant is an *optimization
/// hint*: the runtime guards in [`Instance::reset_with`] fall back to the
/// full high-water-mark reset whenever anything the certificate cannot see
/// (host writes, `memory.grow`) actually happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetPolicy {
    /// Zero `[template_len, high_water_mark)` and restore the template —
    /// the always-sound default.
    #[default]
    HighWater,
    /// The entry point's certified write footprint is `[lo, hi)` with
    /// `lo > template_len`: the gap `[template_len, lo)` is provably still
    /// zero and is skipped.
    StaticSpan {
        /// Inclusive lower bound of every certified guest store.
        lo: u64,
        /// Exclusive upper bound of every certified guest store.
        hi: u64,
    },
    /// The entry point is `Pure` (no guest stores, no growth): memory needs
    /// no work at all.
    Elide,
}

/// Which reset actually ran — [`Instance::reset_with`] reports this so pools
/// can count elided/static resets and tests can assert the fast paths armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetApplied {
    /// Full high-water-mark reset.
    Full,
    /// Footprint-bounded partial reset.
    Static,
    /// Memory untouched (proven already pristine).
    Elided,
}

/// A sandbox: one lightweight instantiation of a [`CompiledModule`].
///
/// Creation is deliberately cheap (linear memory + stacks + context) — this
/// is the function-startup path the paper measures in Table 3.
#[derive(Debug)]
pub struct Instance {
    module: Arc<CompiledModule>,
    memory: LinearMemory,
    globals: Vec<u64>,
    state: ExecState,
    config: EngineConfig,
    status: Status,
    /// Preempt flag observed at safe points during [`Instance::run`];
    /// shared so a timer thread can set it.
    preempt: Arc<AtomicBool>,
    /// Cost units consumed by the current/most recent invocation, summed
    /// across `run` calls. Excludes recorded-but-unpaid debt, so at
    /// completion it equals the executed work exactly.
    fuel_used: u64,
}

impl Instance {
    /// Instantiate `module`: allocate linear memory (initialized from the
    /// module's data segments), globals, and an empty execution context.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::DataOutOfBounds`] if a data segment lies
    /// outside the initial memory.
    pub fn new(module: Arc<CompiledModule>, config: EngineConfig) -> Result<Self, InstanceError> {
        let spec = module.memory.unwrap_or(code::MemorySpec {
            min_pages: 0,
            max_pages: 0,
        });
        let mut memory = LinearMemory::new(spec.min_pages, spec.max_pages, config.bounds)
            .map_err(InstanceError::Memory)?;
        // Initialize from the precomputed template in one write. The
        // template's length is the maximum segment end, so this rejects
        // exactly the modules the per-segment replay would reject.
        if !module.template.is_empty() {
            memory
                .write_bytes(0, module.template.image())
                .map_err(|_| InstanceError::DataOutOfBounds)?;
            // The template is the pristine state itself — writing it must not
            // count as an uncertified host write against elided resets.
            memory.clear_host_write_mark();
        }
        let globals = module.globals.clone();
        Ok(Instance {
            module,
            memory,
            globals,
            state: ExecState::default(),
            config,
            status: Status::Idle,
            preempt: Arc::new(AtomicBool::new(false)),
            fuel_used: 0,
        })
    }

    /// The module this instance runs.
    pub fn module(&self) -> &Arc<CompiledModule> {
        &self.module
    }

    /// The engine configuration this instance was created with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Shared preempt flag: set it (from any thread) to force
    /// [`run`](Self::run) to return [`StepResult::Preempted`] at the next
    /// safe point.
    pub fn preempt_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.preempt)
    }

    /// Guest linear memory (host view).
    pub fn memory(&self) -> &LinearMemory {
        &self.memory
    }

    /// Mutable guest linear memory (host view).
    pub fn memory_mut(&mut self) -> &mut LinearMemory {
        &mut self.memory
    }

    /// Whether an invocation is in progress.
    pub fn is_running(&self) -> bool {
        self.status == Status::Running
    }

    /// Cost units consumed by the current/most recent invocation, summed
    /// across `run` calls. Both tiers meter identical work, so for the
    /// same completed execution this value is tier- and bounds-strategy-
    /// independent (the differential tests assert exactly that).
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Begin executing the exported function `name` with `args`.
    /// Drive it with [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for unknown exports, arity mismatches,
    /// or dead/busy instances.
    pub fn invoke_export(&mut self, name: &str, args: &[Value]) -> Result<(), InstanceError> {
        let idx = self
            .module
            .export(name)
            .ok_or_else(|| InstanceError::NoSuchExport(name.to_string()))?;
        self.invoke_index(idx, args, name)
    }

    fn invoke_index(&mut self, idx: u32, args: &[Value], name: &str) -> Result<(), InstanceError> {
        match self.status {
            Status::Dead(t) => return Err(InstanceError::Dead(t)),
            Status::Running => return Err(InstanceError::InvalidState),
            Status::Idle => {}
        }
        let ni = self.module.num_imports();
        if idx < ni {
            return Err(InstanceError::ExportIsImport(name.to_string()));
        }
        let local = idx - ni;
        let func = &self.module.funcs[local as usize];
        if func.nparams != args.len() as u32 {
            return Err(InstanceError::ArityMismatch {
                expected: func.nparams,
                got: args.len() as u32,
            });
        }
        self.state.clear();
        self.fuel_used = 0;
        for a in args {
            self.state.locals.push(a.to_bits());
        }
        self.state.locals.resize(func.nlocals as usize, 0);
        self.state.frames.push(Frame {
            func: local,
            pc: 0,
            locals_base: 0,
            stack_base: 0,
        });
        self.status = Status::Running;
        Ok(())
    }

    /// Drive the current invocation for up to `fuel` accounting units.
    ///
    /// Returns [`StepResult::Complete`] with the function's raw result slot,
    /// or an intermediate state ([`StepResult::OutOfFuel`] /
    /// [`StepResult::Preempted`] / [`StepResult::Blocked`]) in which case
    /// `run` may be called again to continue. After
    /// [`StepResult::Trapped`] the instance is dead.
    pub fn run(&mut self, host: &mut dyn Host, fuel: u64) -> StepResult {
        match self.status {
            Status::Running => {}
            Status::Dead(t) => return StepResult::Trapped(t),
            Status::Idle => return StepResult::Trapped(Trap::Unreachable),
        }
        let given = fuel;
        let mut fuel = fuel;
        let preempt = Arc::clone(&self.preempt);
        let result = match (self.config.tier, self.config.bounds) {
            (Tier::Optimized, BoundsStrategy::None | BoundsStrategy::GuardRegion) => {
                self.dispatch::<MaskBounds, false, false>(host, &mut fuel, &preempt)
            }
            (Tier::Optimized, BoundsStrategy::Software) => {
                self.dispatch::<SoftwareBounds, false, false>(host, &mut fuel, &preempt)
            }
            (Tier::Optimized, BoundsStrategy::MpxEmulated) => {
                self.dispatch::<MpxBounds, false, false>(host, &mut fuel, &preempt)
            }
            // Static elision: analysis-rewritten bodies skip checks at
            // proven sites; everything else takes the software check.
            (Tier::Optimized, BoundsStrategy::Static) => {
                self.dispatch::<SoftwareBounds, false, true>(host, &mut fuel, &preempt)
            }
            (Tier::Naive, BoundsStrategy::Static) => {
                self.dispatch::<DynBounds, true, true>(host, &mut fuel, &preempt)
            }
            (Tier::Naive, _) => self.dispatch::<DynBounds, true, false>(host, &mut fuel, &preempt),
        };
        self.fuel_used += given - fuel;
        match result {
            StepResult::Complete(_) => self.status = Status::Idle,
            StepResult::Trapped(t) => self.status = Status::Dead(t),
            StepResult::Preempted => {
                // One preemption request applies to one quantum.
                self.preempt
                    .store(false, std::sync::atomic::Ordering::Relaxed);
            }
            _ => {}
        }
        result
    }

    fn dispatch<B: memory::Bounds, const NAIVE: bool, const STATIC: bool>(
        &mut self,
        host: &mut dyn Host,
        fuel: &mut u64,
        preempt: &AtomicBool,
    ) -> StepResult {
        exec::run::<B, NAIVE, STATIC>(
            &self.module,
            &mut self.state,
            &mut self.memory,
            &mut self.globals,
            &self.module.table,
            host,
            fuel,
            preempt,
            &self.config.limits,
        )
    }

    /// Reset this instance in place to the pristine post-instantiation state,
    /// using the module's precomputed [`MemoryTemplate`] instead of dropping
    /// and reallocating: the dirtied span of linear memory beyond the
    /// template is zeroed (bounded by the high-water mark the store paths
    /// maintain), the template image is copied back, pages snap to the
    /// module's initial count, globals are restored, the execution context is
    /// cleared, and fuel/preempt state is rearmed. A `Dead` instance may be
    /// reset (its trap state is discarded along with its memory).
    ///
    /// The function table needs no restore: it lives immutably on the shared
    /// [`CompiledModule`].
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::InvalidState`] if an invocation is still in
    /// progress.
    pub fn reset_from_template(&mut self) -> Result<(), InstanceError> {
        self.reset_with(ResetPolicy::HighWater).map(|_| ())
    }

    /// Reset like [`Self::reset_from_template`], but let a per-entry-point
    /// [`ResetPolicy`] (derived from the module's effect certificate by
    /// [`CompiledModule::reset_policy`]) elide or shrink the memory work.
    /// Globals, execution state, fuel, and the preempt flag are restored
    /// unconditionally regardless of policy — only the linear-memory work
    /// varies. If a policy's runtime guards fail (a host write landed below
    /// the certified span, `memory.grow` took effect, …), the reset silently
    /// falls back to the full high-water-mark path; the returned
    /// [`ResetApplied`] says which path actually ran.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::InvalidState`] if an invocation is still in
    /// progress.
    pub fn reset_with(&mut self, policy: ResetPolicy) -> Result<ResetApplied, InstanceError> {
        if self.status == Status::Running {
            return Err(InstanceError::InvalidState);
        }
        let image = self.module.template.image();
        let applied = match (policy, self.status) {
            // A dead instance may have trapped mid-store or mid-growth in
            // ways the certificate's "completed execution" reasoning does
            // not cover conservatively enough to risk — always full-reset.
            (ResetPolicy::Elide, Status::Idle) if self.memory.reset_elided(image) => {
                ResetApplied::Elided
            }
            (ResetPolicy::StaticSpan { lo, .. }, Status::Idle)
                if self.memory.reset_from_span(image, lo as usize) =>
            {
                ResetApplied::Static
            }
            _ => {
                self.memory.reset_from(image);
                ResetApplied::Full
            }
        };
        self.globals.copy_from_slice(&self.module.globals);
        self.state.clear();
        self.status = Status::Idle;
        self.fuel_used = 0;
        self.preempt
            .store(false, std::sync::atomic::Ordering::Relaxed);
        Ok(applied)
    }

    /// Convenience: invoke an export and run it to completion with the given
    /// host, resuming through fuel exhaustion, with no preemption.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] (boxed) if the sandbox traps, an
    /// [`InstanceError`] for invocation problems, and an error if the guest
    /// blocks (there is no event source to unblock it here — that is the
    /// Sledge runtime's job).
    pub fn call_complete(
        &mut self,
        name: &str,
        args: &[Value],
        host: &mut dyn Host,
    ) -> Result<Option<u64>, Box<dyn Error + Send + Sync>> {
        self.invoke_export(name, args)?;
        loop {
            match self.run(host, u64::MAX) {
                StepResult::Complete(v) => return Ok(v),
                StepResult::OutOfFuel | StepResult::Preempted => continue,
                StepResult::Blocked => {
                    return Err("sandbox blocked with no event source".into());
                }
                StepResult::Trapped(t) => return Err(Box::new(t)),
            }
        }
    }

    /// Approximate resident memory of this sandbox in bytes (linear memory +
    /// stacks + context) — the per-instance footprint the paper contrasts
    /// with VM/container footprints.
    pub fn footprint_bytes(&self) -> usize {
        self.memory.footprint_bytes()
            + self.state.stack.capacity() * 8
            + self.state.locals.capacity() * 8
            + self.state.frames.capacity() * std::mem::size_of::<Frame>()
            + std::mem::size_of::<Self>()
    }
}
