//! Property-based effect-certificate tests: for randomly generated guest
//! programs, the static write footprint must cover every byte the program
//! actually dirties at runtime (footprint ⊇ high-water mark), and a pool
//! reset driven by the derived [`ResetPolicy`] must leave the instance
//! observationally identical to a fresh one.

use awsm::{translate, EngineConfig, Instance, NullHost, ResetPolicy, Tier, Value, WriteFootprint};
use proptest::prelude::*;
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// One constant-address store the generated guest may (conditionally)
/// execute: `if x >= gate { mem[addr] = val }`.
#[derive(Debug, Clone)]
struct StoreSite {
    addr: u32,
    val: i32,
    gate: i32,
}

fn store_sites() -> impl Strategy<Value = Vec<StoreSite>> {
    prop::collection::vec(
        (64u32..65532, any::<i32>(), -8i32..8).prop_map(|(addr, val, gate)| StoreSite {
            addr: addr & !3,
            val,
            gate,
        }),
        1..12,
    )
}

/// Build a guest executing the given (conditional) constant-address stores,
/// then returning a read-back of the last site plus the argument.
fn build_storer(sites: &[StoreSite]) -> Module {
    let mut mb = ModuleBuilder::new("prop-effects");
    mb.memory(1, Some(1));
    mb.data(8, b"seed".to_vec());
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    for s in sites {
        f.push(if_(
            ge_s(local(x), i32c(s.gate)),
            vec![store(Scalar::I32, i32c(s.addr as i32), 0, i32c(s.val))],
        ));
    }
    let last = sites.last().expect("at least one site");
    f.push(ret(Some(add(
        load(Scalar::I32, i32c(last.addr as i32), 0),
        local(x),
    ))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("generated module must validate")
}

fn fnv_memory_hash(inst: &Instance) -> u64 {
    let mem = inst.memory();
    let bytes = mem
        .read_bytes(0, mem.size_bytes() as u32)
        .expect("full-memory read");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_once(inst: &mut Instance, x: i32) -> (Option<u64>, u64, u64) {
    let out = inst
        .call_complete("main", &[Value::I32(x)], &mut NullHost)
        .expect("storer guest must complete");
    (out, fnv_memory_hash(inst), inst.fuel_used())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the write-footprint certificate: the runtime high-water
    /// mark never escapes the static bound, for arbitrary store patterns and
    /// inputs (conditional stores must be covered whether or not they fire).
    #[test]
    fn static_footprint_covers_runtime_high_water(
        sites in store_sites(),
        x in any::<i32>(),
    ) {
        let m = build_storer(&sites);
        let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
        let eff = cm.analysis.effects.clone().expect("certificate");
        let entry = cm.export("main").expect("main export");
        let (_, footprint, may_grow) = eff.entry_effect(entry).expect("entry effect");
        prop_assert!(!may_grow);

        // Constant-address stores must certify to a bounded span covering
        // every site, executed or not.
        prop_assert!(matches!(footprint, WriteFootprint::Span { .. }),
            "expected span, got {}", footprint);
        let WriteFootprint::Span { lo, hi } = footprint else { unreachable!() };
        for s in &sites {
            prop_assert!(lo <= s.addr as u64 && s.addr as u64 + 4 <= hi,
                "site {} outside [{}, {})", s.addr, lo, hi);
        }

        let template_len = cm.template.image().len() as u64;
        let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
        run_once(&mut inst, x);
        let hwm = inst.memory().high_water_mark() as u64;
        prop_assert!(hwm <= hi.max(template_len),
            "runtime hwm {} escaped static bound {} (template {})", hwm, hi, template_len);
    }

    /// The differential property under the *derived* reset policy: whatever
    /// strategy `reset_policy` picks (static span or full), a recycled
    /// instance replaying the baseline input is indistinguishable from a
    /// fresh one.
    #[test]
    fn recycled_under_derived_policy_is_fresh(
        sites in store_sites(),
        x in any::<i32>(),
        dirty_x in any::<i32>(),
        rounds in 1usize..6,
    ) {
        let m = build_storer(&sites);
        let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
        let policy = cm.reset_policy("main");
        // Stores start at byte 64, past the 12-byte template: the derivation
        // must never be forced below a static span for these programs.
        prop_assert!(matches!(policy, ResetPolicy::StaticSpan { .. }), "{:?}", policy);
        let cfg = EngineConfig::default();

        let mut fresh = Instance::new(Arc::clone(&cm), cfg).unwrap();
        let want = run_once(&mut fresh, x);

        let mut recycled = Instance::new(cm, cfg).unwrap();
        for _ in 0..rounds {
            run_once(&mut recycled, dirty_x);
            recycled.reset_with(policy).unwrap();
            let got = run_once(&mut recycled, x);
            prop_assert_eq!(got.clone(), want.clone());
            recycled.reset_with(policy).unwrap();
        }
    }
}
