//! End-to-end engine tests: guest programs written in the `sledge-guestc`
//! DSL (and some hand-assembled Wasm), executed under every tier and bounds
//! strategy.

use awsm::{
    translate, BoundsStrategy, EngineConfig, Host, HostImport, HostOutcome, Instance, LinearMemory,
    NullHost, StepResult, Tier, Trap, Value,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::instr::{BlockType, Instr};
use sledge_wasm::module::{Export, FuncBody, Module};
use sledge_wasm::types::{FuncType, Limits, MemoryType, ValType};
use std::sync::Arc;

const ALL_CONFIGS: &[(Tier, BoundsStrategy)] = &[
    (Tier::Optimized, BoundsStrategy::GuardRegion),
    (Tier::Optimized, BoundsStrategy::Software),
    (Tier::Optimized, BoundsStrategy::MpxEmulated),
    (Tier::Optimized, BoundsStrategy::None),
    (Tier::Optimized, BoundsStrategy::Static),
    (Tier::Naive, BoundsStrategy::GuardRegion),
    (Tier::Naive, BoundsStrategy::Software),
    (Tier::Naive, BoundsStrategy::Static),
];

fn run_all_configs(m: &Module, entry: &str, args: &[Value]) -> Vec<Option<u64>> {
    let mut results = Vec::new();
    for (tier, bounds) in ALL_CONFIGS {
        let cm = Arc::new(translate(m, *tier).expect("translate"));
        let mut inst = Instance::new(
            cm,
            EngineConfig {
                bounds: *bounds,
                tier: *tier,
                ..Default::default()
            },
        )
        .expect("instantiate");
        let v = inst
            .call_complete(entry, args, &mut NullHost)
            .unwrap_or_else(|e| panic!("{tier:?}/{bounds:?}: {e}"));
        results.push(v);
    }
    results
}

fn assert_all_configs(m: &Module, entry: &str, args: &[Value], expect: u64) {
    for r in run_all_configs(m, entry, args) {
        assert_eq!(r, Some(expect));
    }
}

fn single(m: &Module, entry: &str, args: &[Value]) -> Result<Option<u64>, Trap> {
    let cm = Arc::new(translate(m, Tier::Optimized).expect("translate"));
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds: BoundsStrategy::Software,
            ..Default::default()
        },
    )
    .expect("instantiate");
    inst.invoke_export(entry, args).expect("invoke");
    loop {
        match inst.run(&mut NullHost, u64::MAX) {
            StepResult::Complete(v) => return Ok(v),
            StepResult::Trapped(t) => return Err(t),
            StepResult::OutOfFuel | StepResult::Preempted => continue,
            StepResult::Blocked => panic!("unexpected block"),
        }
    }
}

// ---------------------------------------------------------------- control

#[test]
fn triangle_sum_loop() {
    let mut mb = ModuleBuilder::new("t");
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let n = f.arg(0);
    let acc = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    f.extend([
        for_loop(
            i,
            i32c(1),
            le_s(local(i), local(n)),
            1,
            vec![set(acc, add(local(acc), local(i)))],
        ),
        ret(Some(local(acc))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_all_configs(&m, "main", &[Value::I32(100)], 5050);
}

#[test]
fn nested_loops_with_break_continue() {
    // Count pairs (i, j) with i*j odd, for i, j in 0..20, but stop counting
    // a row at the first j > 15.
    let mut mb = ModuleBuilder::new("t");
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let count = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let j = f.local(ValType::I32);
    f.extend([
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(20)),
            1,
            vec![
                set(j, i32c(0)),
                while_(
                    lt_s(local(j), i32c(20)),
                    vec![
                        if_(gt_s(local(j), i32c(15)), vec![brk()]),
                        set(j, add(local(j), i32c(1))),
                        if_(
                            eq(rem(mul(local(i), sub(local(j), i32c(1))), i32c(2)), i32c(0)),
                            vec![cont()],
                        ),
                        set(count, add(local(count), i32c(1))),
                    ],
                ),
            ],
        ),
        ret(Some(local(count))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    // Native reference.
    let mut expect = 0u32;
    for i in 0..20i32 {
        let mut j = 0i32;
        while j < 20 {
            if j > 15 {
                break;
            }
            j += 1;
            if (i * (j - 1)) % 2 == 0 {
                continue;
            }
            expect += 1;
        }
    }
    assert_all_configs(&m, "main", &[], expect as u64);
}

#[test]
fn recursion_factorial_and_fib() {
    let mut mb = ModuleBuilder::new("t");
    let fact = mb.declare("fact", &[ValType::I32], Some(ValType::I32));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let n = f.arg(0);
    f.push(if_else(
        le_s(local(n), i32c(1)),
        vec![ret(Some(i32c(1)))],
        vec![ret(Some(mul(
            local(n),
            call(fact, vec![sub(local(n), i32c(1))]),
        )))],
    ));
    mb.define(fact, f);

    let fib = mb.declare("fib", &[ValType::I32], Some(ValType::I32));
    let mut g = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let n = g.arg(0);
    g.push(if_else(
        lt_s(local(n), i32c(2)),
        vec![ret(Some(local(n)))],
        vec![ret(Some(add(
            call(fib, vec![sub(local(n), i32c(1))]),
            call(fib, vec![sub(local(n), i32c(2))]),
        )))],
    ));
    mb.define(fib, g);
    mb.export_func(fact, "fact");
    mb.export_func(fib, "fib");
    let m = mb.build().unwrap();
    assert_all_configs(&m, "fact", &[Value::I32(10)], 3628800);
    assert_all_configs(&m, "fib", &[Value::I32(20)], 6765);
}

#[test]
fn if_else_value_select_and_early_return() {
    let mut mb = ModuleBuilder::new("t");
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    f.extend([
        if_(lt_s(local(x), i32c(0)), vec![ret(Some(i32c(-1)))]),
        ret(Some(select(gt_s(local(x), i32c(100)), i32c(2), local(x)))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_all_configs(&m, "main", &[Value::I32(-5)], (-1i32) as u32 as u64);
    assert_all_configs(&m, "main", &[Value::I32(7)], 7);
    assert_all_configs(&m, "main", &[Value::I32(101)], 2);
}

#[test]
fn br_table_dispatch_hand_assembled() {
    // switch (x) { case 0 -> 10; case 1 -> 20; default -> 99 }
    let mut m = Module::new();
    let t = m.push_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    use Instr::*;
    let f = m.push_function(
        t,
        FuncBody::new(
            vec![],
            vec![
                Block(BlockType::Value(ValType::I32)), // result
                Block(BlockType::Empty),               // case 1
                Block(BlockType::Empty),               // case 0
                LocalGet(0),
                BrTable(vec![0, 1], 2),
                End,
                I32Const(10),
                Br(1),
                End,
                I32Const(20),
                Br(0),
                End,
                End,
            ],
        ),
    );
    // default: fall out of the inner blocks and push 99 — but our layout
    // routes default to the *outermost* (depth 2) which is the result block
    // and needs a value. Rework: default jumps past everything with 99.
    // Simplest: wrap: use a distinct default case block.
    m.exports.push(Export::func("main", f));
    // The code above: br_table default=2 targets the value block and would
    // need a value, which validation rejects; check that it *is* rejected.
    assert!(sledge_wasm::validate::validate_module(&m).is_err());

    // Correct version with an explicit default arm.
    let mut m = Module::new();
    let t = m.push_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    let f = m.push_function(
        t,
        FuncBody::new(
            vec![],
            vec![
                Block(BlockType::Empty), // default
                Block(BlockType::Empty), // case 1
                Block(BlockType::Empty), // case 0
                LocalGet(0),
                BrTable(vec![0, 1], 2),
                End,
                I32Const(10),
                Return,
                End,
                I32Const(20),
                Return,
                End,
                I32Const(99),
                Return,
                End,
            ],
        ),
    );
    m.exports.push(Export::func("main", f));
    assert_all_configs(&m, "main", &[Value::I32(0)], 10);
    assert_all_configs(&m, "main", &[Value::I32(1)], 20);
    assert_all_configs(&m, "main", &[Value::I32(2)], 99);
    assert_all_configs(&m, "main", &[Value::I32(-1)], 99);
}

#[test]
fn block_result_values_flow_through_branches() {
    // block (result i32): if x then br with 5 else fall through with 9.
    let mut m = Module::new();
    let t = m.push_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    use Instr::*;
    let f = m.push_function(
        t,
        FuncBody::new(
            vec![],
            vec![
                Block(BlockType::Value(ValType::I32)),
                I32Const(5),
                LocalGet(0),
                BrIf(0),
                Drop,
                I32Const(9),
                End,
                End,
            ],
        ),
    );
    m.exports.push(Export::func("main", f));
    assert_all_configs(&m, "main", &[Value::I32(1)], 5);
    assert_all_configs(&m, "main", &[Value::I32(0)], 9);
}

// ---------------------------------------------------------------- memory

#[test]
fn memory_fill_and_sum() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(4));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I64));
    let n = f.arg(0);
    let i = f.local(ValType::I32);
    let acc = f.local(ValType::I64);
    f.extend([
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            1,
            vec![store(
                Scalar::I32,
                mul(local(i), i32c(4)),
                0,
                mul(local(i), local(i)),
            )],
        ),
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            1,
            vec![set(
                acc,
                add(
                    local(acc),
                    i2l(load(Scalar::I32, mul(local(i), i32c(4)), 0)),
                ),
            )],
        ),
        ret(Some(local(acc))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let expect: u64 = (0..100u64).map(|i| i * i).sum();
    assert_all_configs(&m, "main", &[Value::I32(100)], expect);
}

#[test]
fn data_segments_initialize_memory() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    mb.data(128, b"sledge".to_vec());
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(load(Scalar::U8, i32c(128), 3)))); // 'd'
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_all_configs(&m, "main", &[], b'd' as u64);
}

#[test]
fn memory_grow_and_size() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(3));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let old = f.local(ValType::I32);
    let r = f.local(ValType::I32);
    f.extend([
        set(old, Expr::MemorySize),
        set(r, Expr::MemoryGrow(Box::new(i32c(1)))),
        // store into the fresh page
        store(Scalar::I32, i32c(65536 + 16), 0, i32c(77)),
        // failed grow returns -1
        if_(
            ne(Expr::MemoryGrow(Box::new(i32c(10))), i32c(-1)),
            vec![ret(Some(i32c(-100)))],
        ),
        ret(Some(add(
            add(mul(local(old), i32c(100)), mul(local(r), i32c(10))),
            load(Scalar::I32, i32c(65536 + 16), 0),
        ))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    // old=1, r=1, load=77 → 100 + 10 + 77 = 187
    assert_all_configs(&m, "main", &[], 187);
}

use sledge_guestc::Expr;

#[test]
fn out_of_bounds_traps_under_software_checks() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let a = f.arg(0);
    f.push(ret(Some(load(Scalar::I32, local(a), 0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_eq!(
        single(&m, "main", &[Value::I32(65533)]),
        Err(Trap::OutOfBounds)
    );
    assert!(single(&m, "main", &[Value::I32(65532)]).is_ok());
    // Negative address = huge unsigned address.
    assert_eq!(
        single(&m, "main", &[Value::I32(-4)]),
        Err(Trap::OutOfBounds)
    );
}

#[test]
fn guard_region_oob_wraps_but_stays_contained() {
    // Under GuardRegion the access doesn't trap (documented substitution)
    // but must not corrupt the host: it wraps inside the reservation.
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let a = f.arg(0);
    f.push(ret(Some(load(Scalar::I32, local(a), 0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds: BoundsStrategy::GuardRegion,
            ..Default::default()
        },
    )
    .unwrap();
    let v = inst
        .call_complete("main", &[Value::I32(-64)], &mut NullHost)
        .unwrap();
    assert!(v.is_some());
}

// ---------------------------------------------------------------- traps

#[test]
fn arithmetic_traps() {
    let mut mb = ModuleBuilder::new("t");
    let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let (a, b2) = (f.arg(0), f.arg(1));
    f.push(ret(Some(div(local(a), local(b2)))));
    let d = mb.add_func("div", f);
    mb.export_func(d, "div");
    let mut g = FuncBuilder::new(&[ValType::F64], Some(ValType::I32));
    let x = g.arg(0);
    g.push(ret(Some(d2i(local(x)))));
    let c = mb.add_func("conv", g);
    mb.export_func(c, "conv");
    let mut h = FuncBuilder::new(&[], None);
    h.push(Stmt::Unreachable);
    let u = mb.add_func("die", h);
    mb.export_func(u, "die");
    let m = mb.build().unwrap();

    assert_eq!(
        single(&m, "div", &[Value::I32(1), Value::I32(0)]),
        Err(Trap::DivByZero)
    );
    assert_eq!(
        single(&m, "div", &[Value::I32(i32::MIN), Value::I32(-1)]),
        Err(Trap::IntOverflow)
    );
    assert_eq!(
        single(&m, "conv", &[Value::F64(1e300)]),
        Err(Trap::InvalidConversion)
    );
    assert_eq!(single(&m, "die", &[]), Err(Trap::Unreachable));
}

use sledge_guestc::Stmt;

#[test]
fn infinite_recursion_exhausts_stack() {
    let mut mb = ModuleBuilder::new("t");
    let f = mb.declare("loop_forever", &[], Some(ValType::I32));
    let mut fb = FuncBuilder::new(&[], Some(ValType::I32));
    fb.push(ret(Some(call(f, vec![]))));
    mb.define(f, fb);
    mb.export_func(f, "loop_forever");
    let m = mb.build().unwrap();
    assert_eq!(single(&m, "loop_forever", &[]), Err(Trap::StackExhausted));
}

#[test]
fn dead_instance_rejects_reuse() {
    let mut mb = ModuleBuilder::new("t");
    let mut f = FuncBuilder::new(&[], None);
    f.push(Stmt::Unreachable);
    let u = mb.add_func("die", f);
    mb.export_func(u, "die");
    let m = mb.build().unwrap();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    inst.invoke_export("die", &[]).unwrap();
    assert!(matches!(
        inst.run(&mut NullHost, u64::MAX),
        StepResult::Trapped(Trap::Unreachable)
    ));
    assert!(inst.invoke_export("die", &[]).is_err());
}

// ---------------------------------------------------------- preempt/fuel

fn spin_module() -> Module {
    let mut mb = ModuleBuilder::new("spin");
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let i = f.local(ValType::I32);
    f.extend([
        while_(i32c(1), vec![set(i, add(local(i), i32c(1)))]),
        ret(Some(local(i))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

#[test]
fn fuel_exhaustion_pauses_infinite_loop() {
    let m = spin_module();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    inst.invoke_export("main", &[]).unwrap();
    for _ in 0..10 {
        assert_eq!(inst.run(&mut NullHost, 1000), StepResult::OutOfFuel);
    }
    assert!(inst.is_running());
}

#[test]
fn external_preempt_flag_stops_spin() {
    let m = spin_module();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    inst.invoke_export("main", &[]).unwrap();
    let flag = inst.preempt_flag();
    let t = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(20));
        flag.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(inst.run(&mut NullHost, u64::MAX), StepResult::Preempted);
    t.join().unwrap();
    // The flag is consumed; the next quantum runs again.
    assert_eq!(inst.run(&mut NullHost, 100), StepResult::OutOfFuel);
}

#[test]
fn chopped_execution_equals_uninterrupted() {
    // Run fib(18) with fuel 1-at-a-time vs all-at-once: identical results.
    let mut mb = ModuleBuilder::new("t");
    let fib = mb.declare("fib", &[ValType::I32], Some(ValType::I32));
    let mut g = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let n = g.arg(0);
    g.push(if_else(
        lt_s(local(n), i32c(2)),
        vec![ret(Some(local(n)))],
        vec![ret(Some(add(
            call(fib, vec![sub(local(n), i32c(1))]),
            call(fib, vec![sub(local(n), i32c(2))]),
        )))],
    ));
    mb.define(fib, g);
    mb.export_func(fib, "fib");
    let m = mb.build().unwrap();
    let direct = single(&m, "fib", &[Value::I32(18)]).unwrap();

    for fuel in [1u64, 7, 64, 1023] {
        let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
        let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
        inst.invoke_export("fib", &[Value::I32(18)]).unwrap();
        let mut steps = 0u64;
        let got = loop {
            match inst.run(&mut NullHost, fuel) {
                StepResult::Complete(v) => break v,
                StepResult::OutOfFuel => steps += 1,
                other => panic!("unexpected {other:?}"),
            }
            assert!(steps < 100_000_000, "no progress");
        };
        assert_eq!(got, direct, "fuel={fuel}");
        if fuel == 1 {
            assert!(steps > 1000, "fuel=1 must pause many times");
        }
    }
}

// ---------------------------------------------------------------- host

struct EchoHost {
    /// Calls before an `io_delay` completes.
    pending_left: u32,
    calls: u32,
}

impl Host for EchoHost {
    fn call(
        &mut self,
        _idx: u32,
        import: &HostImport,
        args: &[u64],
        memory: &mut LinearMemory,
    ) -> HostOutcome {
        self.calls += 1;
        match import.name.as_str() {
            "add_seven" => HostOutcome::Value((args[0] as u32 as u64) + 7),
            "poke" => {
                memory.write_bytes(args[0] as u32, &[args[1] as u8]).ok();
                HostOutcome::Unit
            }
            "io_delay" => {
                if self.pending_left > 0 {
                    self.pending_left -= 1;
                    HostOutcome::Pending
                } else {
                    HostOutcome::Value(1)
                }
            }
            _ => HostOutcome::Trap(Trap::Unreachable),
        }
    }
}

#[test]
fn host_calls_value_unit_and_memory() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let add7 = mb.import_func("env", "add_seven", &[ValType::I32], Some(ValType::I32));
    let poke = mb.import_func("env", "poke", &[ValType::I32, ValType::I32], None);
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    f.extend([
        exec(call(poke, vec![i32c(10), i32c(42)])),
        ret(Some(add(
            call(add7, vec![local(x)]),
            load(Scalar::U8, i32c(10), 0),
        ))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    let mut host = EchoHost {
        pending_left: 0,
        calls: 0,
    };
    let v = inst
        .call_complete("main", &[Value::I32(1)], &mut host)
        .unwrap();
    assert_eq!(v, Some(1 + 7 + 42));
    assert_eq!(host.calls, 2);
}

#[test]
fn pending_host_call_blocks_and_resumes() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let delay = mb.import_func("env", "io_delay", &[ValType::I32], Some(ValType::I32));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(add(call(delay, vec![i32c(5)]), i32c(100)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    let mut host = EchoHost {
        pending_left: 3,
        calls: 0,
    };
    inst.invoke_export("main", &[]).unwrap();
    assert_eq!(inst.run(&mut host, u64::MAX), StepResult::Blocked);
    assert_eq!(inst.run(&mut host, u64::MAX), StepResult::Blocked);
    assert_eq!(inst.run(&mut host, u64::MAX), StepResult::Blocked);
    assert_eq!(
        inst.run(&mut host, u64::MAX),
        StepResult::Complete(Some(101))
    );
    assert_eq!(host.calls, 4);
}

// --------------------------------------------------------- call_indirect

#[test]
fn indirect_calls_dispatch_and_check_types() {
    let mut mb = ModuleBuilder::new("t");
    let mut f1 = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f1.arg(0);
    f1.push(ret(Some(mul(local(x), i32c(2)))));
    let double = mb.add_func("double", f1);
    let mut f2 = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f2.arg(0);
    f2.push(ret(Some(mul(local(x), local(x)))));
    let square = mb.add_func("square", f2);
    // A function of a *different* signature in slot 2.
    let mut f3 = FuncBuilder::new(&[], Some(ValType::I32));
    f3.push(ret(Some(i32c(1))));
    let nullary = mb.add_func("nullary", f3);
    mb.table(&[double, square, nullary]);
    mb.export_func(double, "double");
    let m = mb.build().unwrap();

    // Hand-assemble a dispatcher since the DSL has no indirect-call surface
    // (kept minimal deliberately). dispatcher(sel, x) = table[sel](x).
    let mut m2 = m.clone();
    let sig = m2.push_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    let t2 = m2.push_type(FuncType::new(
        vec![ValType::I32, ValType::I32],
        vec![ValType::I32],
    ));
    use Instr::*;
    let disp = m2.push_function(
        t2,
        FuncBody::new(
            vec![],
            vec![LocalGet(1), LocalGet(0), CallIndirect(sig), End],
        ),
    );
    m2.exports.push(Export::func("dispatch", disp));
    m2.memories.push(MemoryType {
        limits: Limits::at_least(0),
    });

    assert_all_configs(&m2, "dispatch", &[Value::I32(0), Value::I32(21)], 42);
    assert_all_configs(&m2, "dispatch", &[Value::I32(1), Value::I32(9)], 81);
    // Slot 2 has the wrong signature.
    assert_eq!(
        single(&m2, "dispatch", &[Value::I32(2), Value::I32(1)]),
        Err(Trap::IndirectTypeMismatch)
    );
    // Out of table bounds.
    assert_eq!(
        single(&m2, "dispatch", &[Value::I32(40), Value::I32(1)]),
        Err(Trap::TableOutOfBounds)
    );
}

// --------------------------------------------------------------- globals

#[test]
fn globals_read_write() {
    let mut mb = ModuleBuilder::new("t");
    let g = mb.global_i32(5);
    let gf = mb.global_f64(1.5);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.extend([
        set_global(g, add(global(g, ValType::I32), i32c(10))),
        set_global(gf, mul(global(gf, ValType::F64), f64c(4.0))),
        ret(Some(add(
            global(g, ValType::I32),
            d2i(global(gf, ValType::F64)),
        ))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_all_configs(&m, "main", &[], 15 + 6);
}

// ------------------------------------------------------------ float math

#[test]
fn float_kernel_matches_native() {
    // A dot-product-with-sqrt kernel against a native Rust reference.
    let n_items = 64usize;
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::F64));
    let n = f.arg(0);
    let i = f.local(ValType::I32);
    let acc = f.local(ValType::F64);
    f.extend([
        // a[i] = sqrt(i), b[i] = i/2 at fixed offsets.
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            1,
            vec![
                store(Scalar::F64, mul(local(i), i32c(8)), 0, sqrt(i2d(local(i)))),
                store(
                    Scalar::F64,
                    mul(local(i), i32c(8)),
                    4096,
                    div(i2d(local(i)), f64c(2.0)),
                ),
            ],
        ),
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), local(n)),
            1,
            vec![set(
                acc,
                add(
                    local(acc),
                    mul(
                        load(Scalar::F64, mul(local(i), i32c(8)), 0),
                        load(Scalar::F64, mul(local(i), i32c(8)), 4096),
                    ),
                ),
            )],
        ),
        ret(Some(local(acc))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    let mut expect = 0.0f64;
    for i in 0..n_items {
        expect += (i as f64).sqrt() * (i as f64 / 2.0);
    }
    for r in run_all_configs(&m, "main", &[Value::I32(n_items as i32)]) {
        assert_eq!(f64::from_bits(r.unwrap()), expect);
    }
}

#[test]
fn footprint_is_small() {
    let m = spin_module();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let inst = Instance::new(cm.clone(), EngineConfig::default()).unwrap();
    // A no-memory module's sandbox should be well under a typical container
    // footprint (tens of MB); here it is dominated by the 64 KiB page.
    assert!(inst.footprint_bytes() < 256 * 1024);
    assert!(cm.code_size_bytes() < 64 * 1024);
}

#[test]
fn f32_arithmetic_matches_native() {
    // The apps are f64/int heavy; exercise the f32 lane explicitly.
    let mut mb = ModuleBuilder::new("f32");
    let mut f = FuncBuilder::new(&[ValType::F32, ValType::F32], Some(ValType::F32));
    let (a, b2) = (f.arg(0), f.arg(1));
    f.push(ret(Some(add(
        mul(local(a), local(b2)),
        sqrt(abs(sub(local(a), local(b2)))),
    ))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    for (x, y) in [(1.5f32, 2.25f32), (-3.5, 0.125), (0.0, -0.0), (1e30, 1e-30)] {
        let want = x * y + (x - y).abs().sqrt();
        for r in run_all_configs(&m, "main", &[Value::F32(x), Value::F32(y)]) {
            assert_eq!(f32::from_bits(r.unwrap() as u32).to_bits(), want.to_bits());
        }
    }
}

#[test]
fn f32_min_max_copysign_semantics() {
    let mut mb = ModuleBuilder::new("f32mm");
    let mut f = FuncBuilder::new(&[ValType::F32, ValType::F32], Some(ValType::F32));
    let (a, b2) = (f.arg(0), f.arg(1));
    f.push(ret(Some(fmin(
        fmax(local(a), local(b2)),
        Expr::Bin(
            sledge_guestc::BinOp::Copysign,
            Box::new(local(a)),
            Box::new(local(b2)),
        ),
    ))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    // max(-0, 0) must be +0; min with copysign(−0 sign) must be -2.
    let r = single(&m, "main", &[Value::F32(2.0), Value::F32(-1.0)]).unwrap();
    assert_eq!(f32::from_bits(r.unwrap() as u32), -2.0);
}
