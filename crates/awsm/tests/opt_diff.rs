//! Deterministic differential tests for the translate-time optimizer — the
//! always-compiled twin of `prop_opt.rs` (the property suite needs the real
//! `proptest` crate). Fixed guest programs exercising constant folding,
//! dead-code elimination, branch simplification, fusion, and bounds-check
//! elision are run with the optimizer on and off; results, traps, fuel, and
//! full-memory hashes must match across both tiers and bounds strategies.

use awsm::{
    translate_with, BoundsStrategy, EngineConfig, Instance, NullHost, Tier, TranslateOptions, Trap,
    Value, DEFAULT_MAX_CHECK_GAP,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// A guest with something for every optimizer pass: a constant preamble
/// routed through locals, a constant-condition branch with a dead arm,
/// dominated stores, a store/load loop, and a global accumulator.
fn workout_module(dead_arm_taken: bool) -> Module {
    let mut mb = ModuleBuilder::new("opt-diff");
    mb.memory(1, Some(2));
    mb.data(8, b"opt!".to_vec());
    let g = mb.global_i32(23);
    let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let y = f.arg(1);
    let v = f.local(ValType::I32);
    let k = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let a = f.local(ValType::I32);
    // An address loaded from memory is opaque to interval analysis (it is 0
    // at runtime: this reads pristine zeroed memory), so the first access
    // through it stays checked — and *dominates* the later, smaller
    // accesses, which the coverage pass converts to unchecked forms.
    f.push(set(a, load(Scalar::I32, i32c(0), 0)));
    f.push(store(Scalar::I32, local(a), 16, i32c(77)));
    f.push(store(Scalar::I32, local(a), 0, i32c(88)));
    f.push(set(v, load(Scalar::I32, local(a), 8)));
    // Constant preamble through a local: folds to a single constant.
    f.push(set(k, add(mul(i32c(7), i32c(3)), i32c(100))));
    // Constant-condition branch: one arm statically dead.
    f.push(if_else(
        i32c(if dead_arm_taken { 1 } else { 0 }),
        vec![set(v, add(mul(local(x), local(y)), local(k)))],
        vec![set(v, xor(sub(local(x), local(y)), local(k)))],
    ));
    f.push(set_global(g, add(global(g, ValType::I32), local(v))));
    // Constant-address stores; the second is dominated by the first.
    f.push(store(Scalar::I32, i32c(256), 0, local(v)));
    f.push(store(Scalar::I32, i32c(128), 0, global(g, ValType::I32)));
    // Relative pair off one base local.
    f.push(set(k, and(local(v), i32c(0xFF00))));
    f.push(store(Scalar::I32, local(k), 12, local(v)));
    f.push(store(Scalar::I32, local(k), 4, xor(local(v), i32c(-1))));
    // Loop with memory traffic and a data-dependent branch.
    f.push(for_loop(
        i,
        i32c(0),
        lt_s(local(i), i32c(11)),
        1,
        vec![
            store(
                Scalar::I32,
                and(mul(local(i), i32c(4)), i32c(0xFFC)),
                0,
                xor(local(v), local(i)),
            ),
            if_(
                gt_s(local(v), i32c(0)),
                vec![set(v, sub(i32c(0), local(v)))],
            ),
            set(
                v,
                add(
                    local(v),
                    load(Scalar::I32, and(mul(local(i), i32c(4)), i32c(0xFFC)), 0),
                ),
            ),
        ],
    ));
    f.push(ret(Some(add(
        add(
            mul(global(g, ValType::I32), i32c(31)),
            load(Scalar::U8, i32c(8), 0),
        ),
        local(v),
    ))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("module must validate")
}

/// A guest whose second store traps iff `off` pushes it past the page.
fn trapping_module(off: u32) -> Module {
    let mut mb = ModuleBuilder::new("opt-diff-trap");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let v = f.local(ValType::I32);
    f.push(set(v, mul(local(x), i32c(3))));
    f.push(store(Scalar::I32, i32c(16), 0, local(v)));
    f.push(store(
        Scalar::I32,
        and(local(v), i32c(0xFFC)),
        off,
        local(v),
    ));
    f.push(ret(Some(load(Scalar::I32, i32c(16), 0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("module must validate")
}

fn translate_opt(m: &Module, tier: Tier, optimize: bool) -> Arc<awsm::CompiledModule> {
    Arc::new(
        translate_with(
            m,
            tier,
            TranslateOptions {
                max_check_gap: DEFAULT_MAX_CHECK_GAP,
                optimize,
            },
        )
        .unwrap(),
    )
}

fn fnv_memory_hash(inst: &Instance) -> u64 {
    let mem = inst.memory();
    let bytes = mem
        .read_bytes(0, mem.size_bytes() as u32)
        .expect("full-memory read");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn observe(
    cm: Arc<awsm::CompiledModule>,
    tier: Tier,
    bounds: BoundsStrategy,
    args: &[Value],
) -> (Option<u64>, u64, u64) {
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .unwrap();
    let out = inst
        .call_complete("main", args, &mut NullHost)
        .expect("trap-free guest must complete");
    (out, fnv_memory_hash(&inst), inst.fuel_used())
}

fn observe_trap(
    cm: Arc<awsm::CompiledModule>,
    tier: Tier,
    bounds: BoundsStrategy,
    args: &[Value],
) -> (Result<Option<u64>, Trap>, u64) {
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .unwrap();
    let out = match inst.call_complete("main", args, &mut NullHost) {
        Ok(v) => Ok(v),
        Err(e) => match e.downcast::<Trap>() {
            Ok(t) => Err(*t),
            Err(other) => panic!("non-trap failure: {other}"),
        },
    };
    (out, inst.fuel_used())
}

const INPUTS: &[(i32, i32)] = &[
    (0, 0),
    (1, -1),
    (12345, 678),
    (-777, 31),
    (i32::MAX, 2),
    (i32::MIN, i32::MIN),
];

#[test]
fn optimized_matches_unoptimized_on_result_memory_and_fuel() {
    for dead_arm in [false, true] {
        let m = workout_module(dead_arm);
        for tier in [Tier::Optimized, Tier::Naive] {
            let base = translate_opt(&m, tier, false);
            let opt = translate_opt(&m, tier, true);
            awsm::validate_opt(&opt).expect("certificate must validate");
            for bounds in [BoundsStrategy::Software, BoundsStrategy::GuardRegion] {
                for &(x, y) in INPUTS {
                    let args = [Value::I32(x), Value::I32(y)];
                    let want = observe(Arc::clone(&base), tier, bounds, &args);
                    let got = observe(Arc::clone(&opt), tier, bounds, &args);
                    assert_eq!(
                        got, want,
                        "tier={tier:?} bounds={bounds:?} x={x} y={y} dead_arm={dead_arm}"
                    );
                }
            }
        }
    }
}

#[test]
fn optimizer_actually_optimizes_the_workout() {
    // The differential test is vacuous if the optimizer did nothing; pin
    // that the workout module really exercises the passes.
    let opt = translate_opt(&workout_module(false), Tier::Optimized, true);
    let report = opt.analysis.opt.as_ref().expect("optimizer report");
    assert!(report.ops_after < report.ops_before, "{report:?}");
    assert!(report.folded > 0, "constant folding fired: {report:?}");
    assert!(
        report.branches_simplified > 0,
        "constant branch simplified: {report:?}"
    );
    assert!(report.dce_ops > 0, "dead arm removed: {report:?}");
    assert!(
        report.checks_elided > 0,
        "dominated checks elided: {report:?}"
    );
    // Opt-off translation carries no report.
    let base = translate_opt(&workout_module(false), Tier::Optimized, false);
    assert!(base.analysis.opt.is_none());
}

#[test]
fn traps_are_preserved_across_optimization() {
    // Offsets straddling the one-page boundary: in-bounds, data-dependent,
    // and always-out-of-bounds for the masked address range [0, 0xFFC].
    for off in [0u32, 1020, 61_440, 64_508, 65_532, 70_000] {
        let m = trapping_module(off);
        for tier in [Tier::Optimized, Tier::Naive] {
            let base = translate_opt(&m, tier, false);
            let opt = translate_opt(&m, tier, true);
            for bounds in [BoundsStrategy::Software, BoundsStrategy::GuardRegion] {
                for x in [0i32, 1, 341, 1365, -1] {
                    let args = [Value::I32(x)];
                    let (want, want_fuel) = observe_trap(Arc::clone(&base), tier, bounds, &args);
                    let (got, got_fuel) = observe_trap(Arc::clone(&opt), tier, bounds, &args);
                    assert_eq!(got, want, "tier={tier:?} bounds={bounds:?} off={off} x={x}");
                    // Fuel at a trap is only comparable where charging is
                    // per-op; the optimized tier prepays block segments.
                    if tier == Tier::Naive || want.is_ok() {
                        assert_eq!(
                            got_fuel, want_fuel,
                            "fuel: tier={tier:?} bounds={bounds:?} off={off} x={x}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn recycled_optimized_instance_matches_fresh() {
    let m = workout_module(false);
    let cm = translate_opt(&m, Tier::Optimized, true);
    let cfg = EngineConfig::default();
    let args = [Value::I32(4242), Value::I32(-99)];

    let mut fresh = Instance::new(Arc::clone(&cm), cfg).unwrap();
    let want_out = fresh.call_complete("main", &args, &mut NullHost).unwrap();
    let want = (want_out, fnv_memory_hash(&fresh), fresh.fuel_used());

    let mut recycled = Instance::new(cm, cfg).unwrap();
    recycled
        .call_complete(
            "main",
            &[Value::I32(-31415), Value::I32(926)],
            &mut NullHost,
        )
        .unwrap();
    recycled.reset_from_template().unwrap();
    let got_out = recycled
        .call_complete("main", &args, &mut NullHost)
        .unwrap();
    let got = (got_out, fnv_memory_hash(&recycled), recycled.fuel_used());
    assert_eq!(got, want);
}
