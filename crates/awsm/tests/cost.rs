//! Integration tests for the static cost model and its preemption-latency
//! certificates: weighted fuel as a tier-independent work meter, budget
//! checks placed per basic block, splits under tight gap budgets, and the
//! certificate fields (`max_gap` / `max_loop_gap` / `max_host_gap`).

use awsm::{
    op_cost, translate, translate_with, BoundsStrategy, EngineConfig, Host, HostImport,
    HostOutcome, Instance, LinearMemory, NullHost, Op, StepResult, Tier, TranslateOptions, Value,
    DEFAULT_MAX_CHECK_GAP,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// A loop with a conditional, memory traffic, and mixed-weight arithmetic:
/// exercises back edges, fused compare-branches, and fused binops.
fn work_module(iters: i32) -> Module {
    let mut mb = ModuleBuilder::new("work");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let acc = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    f.extend([
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(iters)),
            1,
            vec![
                set(acc, add(local(acc), mul(local(x), local(i)))),
                if_(
                    gt_s(local(acc), i32c(1000)),
                    vec![set(acc, div_u(local(acc), i32c(3)))],
                ),
                store_i32(and(mul(local(i), i32c(4)), i32c(0xfff)), local(acc)),
                set(
                    acc,
                    add(
                        local(acc),
                        load_i32(and(mul(local(i), i32c(4)), i32c(0xfff))),
                    ),
                ),
            ],
        ),
        ret(Some(local(acc))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

fn run_metered(
    m: &Module,
    tier: Tier,
    bounds: BoundsStrategy,
    gap: u32,
    x: i32,
    quantum: u64,
) -> (Option<u64>, u64) {
    let cm = Arc::new(
        translate_with(
            m,
            tier,
            TranslateOptions {
                max_check_gap: gap,
                optimize: false,
            },
        )
        .unwrap(),
    );
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .unwrap();
    inst.invoke_export("main", &[Value::I32(x)]).unwrap();
    let got = loop {
        match inst.run(&mut NullHost, quantum) {
            StepResult::Complete(v) => break v,
            StepResult::OutOfFuel => continue,
            other => panic!("unexpected {other:?}"),
        }
    };
    (got, inst.fuel_used())
}

// ------------------------------------------------ work-meter equivalence

#[test]
fn tiers_and_strategies_agree_on_total_fuel() {
    let m = work_module(25);
    let (ref_val, ref_fuel) = run_metered(
        &m,
        Tier::Optimized,
        BoundsStrategy::GuardRegion,
        512,
        7,
        u64::MAX,
    );
    assert!(ref_fuel > 0);
    for (tier, bounds) in [
        (Tier::Optimized, BoundsStrategy::Software),
        (Tier::Optimized, BoundsStrategy::MpxEmulated),
        (Tier::Optimized, BoundsStrategy::Static),
        (Tier::Optimized, BoundsStrategy::None),
        (Tier::Naive, BoundsStrategy::GuardRegion),
        (Tier::Naive, BoundsStrategy::Static),
    ] {
        let (v, fuel) = run_metered(&m, tier, bounds, 512, 7, u64::MAX);
        assert_eq!(v, ref_val, "value under {tier:?}/{bounds:?}");
        assert_eq!(fuel, ref_fuel, "fuel under {tier:?}/{bounds:?}");
    }
}

#[test]
fn chopping_preserves_totals_at_any_quantum() {
    let m = work_module(12);
    let (ref_val, ref_fuel) = run_metered(
        &m,
        Tier::Optimized,
        BoundsStrategy::GuardRegion,
        128,
        3,
        u64::MAX,
    );
    for quantum in [1, 2, 7, 33, 100] {
        for tier in [Tier::Optimized, Tier::Naive] {
            let (v, fuel) = run_metered(&m, tier, BoundsStrategy::GuardRegion, 128, 3, quantum);
            assert_eq!(v, ref_val, "chopped at {quantum} under {tier:?}");
            assert_eq!(fuel, ref_fuel, "fuel chopped at {quantum} under {tier:?}");
        }
    }
}

#[test]
fn instrumentation_gap_budget_does_not_change_totals() {
    let m = work_module(10);
    let (ref_val, ref_fuel) = run_metered(
        &m,
        Tier::Optimized,
        BoundsStrategy::GuardRegion,
        512,
        5,
        u64::MAX,
    );
    for gap in [4, 16, 64, 4096] {
        let (v, fuel) = run_metered(
            &m,
            Tier::Optimized,
            BoundsStrategy::GuardRegion,
            gap,
            5,
            u64::MAX,
        );
        assert_eq!(v, ref_val, "value at gap {gap}");
        assert_eq!(fuel, ref_fuel, "fuel at gap {gap}");
    }
}

// ------------------------------------------------ certificate structure

/// Scan an instrumented body: every `Op::Fuel` charge must be within the
/// certified gap, and the ops between consecutive charge sites must sum
/// to exactly the preceding charge (charges partition the body; zero-cost
/// chunks have their charge elided and merge in at no cost).
fn verify_partition(code: &[Op], max_gap: u32) {
    let mut seg = 0u64;
    let mut pending: Option<u32> = None;
    for op in code {
        if let Op::Fuel(n) = op {
            if let Some(p) = pending {
                assert_eq!(u64::from(p), seg, "segment under-/over-charged");
            }
            assert!(*n <= max_gap, "charge {n} above certified gap {max_gap}");
            pending = Some(*n);
            seg = 0;
        } else {
            seg += u64::from(op_cost(op));
        }
    }
    if let Some(p) = pending {
        assert_eq!(u64::from(p), seg, "trailing segment mismatch");
    }
}

#[test]
fn charges_partition_the_body_exactly() {
    for gap in [4, 32, DEFAULT_MAX_CHECK_GAP] {
        let cm = translate_with(
            &work_module(8),
            Tier::Optimized,
            TranslateOptions {
                max_check_gap: gap,
                optimize: false,
            },
        )
        .unwrap();
        let cert = cm.analysis.cost.as_ref().expect("certificate attached");
        assert_eq!(cert.max_check_gap, gap);
        assert!(cert.max_gap <= gap, "splitting must meet the budget");
        for func in &cm.funcs {
            verify_partition(&func.code, cert.max_gap);
            if let Some(cs) = &func.code_static {
                verify_partition(cs, cert.max_gap);
            }
        }
    }
}

#[test]
fn branch_targets_land_on_charge_sites() {
    let cm = translate_with(
        &work_module(8),
        Tier::Optimized,
        TranslateOptions {
            max_check_gap: 16,
            optimize: false,
        },
    )
    .unwrap();
    // Every branch target must be a block leader, i.e. its chunk's charge
    // site (or a zero-cost chunk's first op, which charges nothing).
    for func in &cm.funcs {
        let target_ok = |t: u32| {
            let i = t as usize;
            assert!(i < func.code.len(), "target {t} out of range");
            // A paid chunk's entry is its charge site; jumping there pays
            // the chunk's cost before executing any of it.
            if matches!(func.code[i], Op::Fuel(_)) {
                return;
            }
            // Otherwise the target must start a charge-elided (zero-cost)
            // chunk: a mid-chunk target would let a jump skip paid ops.
            let mut j = i;
            let mut back_cost = 0u64;
            while j > 0 && !matches!(func.code[j - 1], Op::Fuel(_)) {
                j -= 1;
                back_cost += u64::from(op_cost(&func.code[j]));
                if matches!(
                    func.code[j],
                    Op::Br(_) | Op::BrIf(_) | Op::BrIfZ(_) | Op::BrTable(_) | Op::Return
                ) {
                    // Hit the previous block's terminator first: the
                    // target starts a charge-elided (zero-cost) chunk.
                    back_cost = 0;
                    break;
                }
            }
            assert_eq!(
                back_cost, 0,
                "branch target {t} lands mid-chunk after paid ops"
            );
        };
        for op in &func.code {
            match op {
                Op::Br(b) | Op::BrIf(b) | Op::BrIfZ(b) => target_ok(b.target),
                Op::BrTable(p) => {
                    for b in p.targets.iter().chain(std::iter::once(&p.default)) {
                        target_ok(b.target);
                    }
                }
                _ => {}
            }
        }
    }
}

#[test]
fn tight_budget_inserts_splits_in_straight_line_code() {
    // 40 stores back-to-back: one basic block far over an 8-unit budget.
    let mut mb = ModuleBuilder::new("straight");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    for i in 0..40 {
        f.push(store_i32(i32c(i * 4), i32c(i)));
    }
    f.push(ret(Some(load_i32(i32c(0)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    let tight = translate_with(
        &m,
        Tier::Optimized,
        TranslateOptions {
            max_check_gap: 8,
            optimize: false,
        },
    )
    .unwrap();
    let cert = tight.analysis.cost.as_ref().unwrap();
    assert!(cert.splits > 0, "tight budget must split the block");
    assert!(cert.max_gap <= 8);

    // Optimizer pinned off on both sides: the totals comparison is about
    // instrumentation budgets, and DCE would remove the builder's dead
    // trailing return from one side only.
    let loose = translate_with(
        &m,
        Tier::Optimized,
        TranslateOptions {
            max_check_gap: DEFAULT_MAX_CHECK_GAP,
            optimize: false,
        },
    )
    .unwrap();
    let loose_cert = loose.analysis.cost.as_ref().unwrap();
    assert_eq!(loose_cert.splits, 0, "default budget fits the block whole");
    assert!(loose_cert.max_gap > 8);
    assert!(loose_cert.checks < cert.checks);

    // Same totals either way.
    let total_tight: u64 = cert.funcs.iter().map(|f| f.total_cost).sum();
    let total_loose: u64 = loose_cert.funcs.iter().map(|f| f.total_cost).sum();
    assert_eq!(total_tight, total_loose);
}

#[test]
fn loop_and_host_gaps_reported() {
    // Loop body gap: the work module has a back edge.
    let cm = translate(&work_module(4), Tier::Optimized).unwrap();
    let cert = cm.analysis.cost.as_ref().unwrap();
    let main = &cert.funcs[0];
    assert!(main.max_loop_gap > 0, "loop body must report a loop gap");
    assert!(main.max_loop_gap <= main.max_gap);
    assert_eq!(main.max_host_gap, 0, "no host calls in the work module");

    // Host gap: a module whose only heavy segment contains a host call.
    let mut mb = ModuleBuilder::new("hosty");
    let ping = mb.import_func("env", "ping", &[ValType::I32], Some(ValType::I32));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(call(ping, vec![i32c(1)]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let cm = translate(&m, Tier::Optimized).unwrap();
    let cert = cm.analysis.cost.as_ref().unwrap();
    assert!(
        cert.funcs[0].max_host_gap > 0,
        "host call gap must be flagged"
    );
}

// ------------------------------------------------ runtime interaction

struct PingHost;
impl Host for PingHost {
    fn call(
        &mut self,
        _idx: u32,
        _import: &HostImport,
        args: &[u64],
        _memory: &mut LinearMemory,
    ) -> HostOutcome {
        HostOutcome::Value(args[0] + 1)
    }
}

#[test]
fn host_calls_cost_the_same_in_both_tiers() {
    let mut mb = ModuleBuilder::new("hosty");
    mb.memory(1, Some(1));
    let ping = mb.import_func("env", "ping", &[ValType::I32], Some(ValType::I32));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let acc = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    f.extend([
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(5)),
            1,
            vec![set(acc, add(local(acc), call(ping, vec![local(i)])))],
        ),
        ret(Some(local(acc))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    let mut totals = Vec::new();
    for tier in [Tier::Optimized, Tier::Naive] {
        let cm = Arc::new(translate(&m, tier).unwrap());
        let mut inst = Instance::new(
            cm,
            EngineConfig {
                tier,
                ..Default::default()
            },
        )
        .unwrap();
        let v = inst.call_complete("main", &[], &mut PingHost).unwrap();
        assert_eq!(v, Some(1 + 2 + 3 + 4 + 5));
        totals.push(inst.fuel_used());
    }
    assert_eq!(totals[0], totals[1], "host-call fuel differs across tiers");
}

#[test]
fn fuel_used_is_exact_across_pauses() {
    // fuel_used after completion must be independent of quantum size even
    // when every quantum ends in debt (quantum 1 against charges > 1).
    let m = work_module(6);
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    inst.invoke_export("main", &[Value::I32(2)]).unwrap();
    let mut quanta = 0u64;
    loop {
        match inst.run(&mut NullHost, 1) {
            StepResult::Complete(_) => break,
            StepResult::OutOfFuel => quanta += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    let (_, ref_fuel) = run_metered(
        &m,
        Tier::Optimized,
        BoundsStrategy::GuardRegion,
        512,
        2,
        u64::MAX,
    );
    assert_eq!(inst.fuel_used(), ref_fuel);
    // Paying one unit per call means the pause count equals total cost
    // minus what the final completing call consumed.
    assert!(quanta >= ref_fuel - 1, "quantum=1 must pause per unit");
}
