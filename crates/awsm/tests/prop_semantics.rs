//! Property-based semantic tests: randomly generated guest programs must
//! compute the same values as a native Rust evaluation, under every tier and
//! bounds strategy, and under arbitrarily chopped (resumed) execution.

use awsm::{translate, BoundsStrategy, EngineConfig, Instance, NullHost, StepResult, Tier, Value};
use proptest::prelude::*;
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// A tiny arithmetic AST we can evaluate natively and compile to the DSL.
#[derive(Debug, Clone)]
enum Arith {
    Const(i32),
    X,
    Y,
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    And(Box<Arith>, Box<Arith>),
    Or(Box<Arith>, Box<Arith>),
    Xor(Box<Arith>, Box<Arith>),
    Shl(Box<Arith>, Box<Arith>),
    ShrU(Box<Arith>, Box<Arith>),
    /// `if c != 0 { a } else { b }` via wasm select.
    Sel(Box<Arith>, Box<Arith>, Box<Arith>),
}

impl Arith {
    fn eval(&self, x: i32, y: i32) -> i32 {
        match self {
            Arith::Const(c) => *c,
            Arith::X => x,
            Arith::Y => y,
            Arith::Add(a, b) => a.eval(x, y).wrapping_add(b.eval(x, y)),
            Arith::Sub(a, b) => a.eval(x, y).wrapping_sub(b.eval(x, y)),
            Arith::Mul(a, b) => a.eval(x, y).wrapping_mul(b.eval(x, y)),
            Arith::And(a, b) => a.eval(x, y) & b.eval(x, y),
            Arith::Or(a, b) => a.eval(x, y) | b.eval(x, y),
            Arith::Xor(a, b) => a.eval(x, y) ^ b.eval(x, y),
            Arith::Shl(a, b) => a.eval(x, y).wrapping_shl(b.eval(x, y) as u32),
            Arith::ShrU(a, b) => ((a.eval(x, y) as u32).wrapping_shr(b.eval(x, y) as u32)) as i32,
            Arith::Sel(c, a, b) => {
                if c.eval(x, y) != 0 {
                    a.eval(x, y)
                } else {
                    b.eval(x, y)
                }
            }
        }
    }

    fn to_expr(&self, x: sledge_guestc::Local, y: sledge_guestc::Local) -> Expr {
        match self {
            Arith::Const(c) => i32c(*c),
            Arith::X => local(x),
            Arith::Y => local(y),
            Arith::Add(a, b) => add(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Sub(a, b) => sub(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Mul(a, b) => mul(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::And(a, b) => and(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Or(a, b) => or(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Xor(a, b) => xor(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Shl(a, b) => shl(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::ShrU(a, b) => shr_u(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Sel(c, a, b) => select(
                ne(c.to_expr(x, y), i32c(0)),
                a.to_expr(x, y),
                b.to_expr(x, y),
            ),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Arith::Const),
        Just(Arith::X),
        Just(Arith::Y),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::ShrU(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Arith::Sel(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn build_module(e: &Arith) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let y = f.arg(1);
    f.push(ret(Some(e.to_expr(x, y))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("generated module must validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_expressions_match_native_all_configs(
        e in arith_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
    ) {
        let m = build_module(&e);
        let expect = e.eval(x, y) as u32 as u64;
        for (tier, bounds) in [
            (Tier::Optimized, BoundsStrategy::GuardRegion),
            (Tier::Optimized, BoundsStrategy::Software),
            (Tier::Optimized, BoundsStrategy::Static),
            (Tier::Naive, BoundsStrategy::GuardRegion),
            (Tier::Naive, BoundsStrategy::Static),
        ] {
            let cm = Arc::new(translate(&m, tier).unwrap());
            let mut inst = Instance::new(
                cm,
                EngineConfig { bounds, tier, ..Default::default() },
            )
            .unwrap();
            let got = inst
                .call_complete("main", &[Value::I32(x), Value::I32(y)], &mut NullHost)
                .unwrap();
            prop_assert_eq!(got, Some(expect), "tier={:?} bounds={:?}", tier, bounds);
        }
    }

    #[test]
    fn chopped_execution_is_deterministic(
        e in arith_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
        fuel in 1u64..50,
    ) {
        // A loop around the expression so there is something to chop.
        let mut mb = ModuleBuilder::new("prop");
        let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
        let xv = f.arg(0);
        let yv = f.arg(1);
        let acc = f.local(ValType::I32);
        let i = f.local(ValType::I32);
        f.extend([
            for_loop(i, i32c(0), lt_s(local(i), i32c(50)), 1, vec![
                set(acc, xor(local(acc), e.to_expr(xv, yv))),
                set(acc, add(local(acc), local(i))),
            ]),
            ret(Some(local(acc))),
        ]);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = mb.build().unwrap();

        let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
        let mut direct = Instance::new(cm.clone(), EngineConfig::default()).unwrap();
        let want = direct
            .call_complete("main", &[Value::I32(x), Value::I32(y)], &mut NullHost)
            .unwrap();

        let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
        inst.invoke_export("main", &[Value::I32(x), Value::I32(y)]).unwrap();
        let got = loop {
            match inst.run(&mut NullHost, fuel) {
                StepResult::Complete(v) => break v,
                StepResult::OutOfFuel => continue,
                other => panic!("unexpected {other:?}"),
            }
        };
        prop_assert_eq!(got, want);
    }
}
