//! Recycling tests: an instance reset in place from its module's
//! [`MemoryTemplate`] must be observationally identical to a freshly
//! instantiated one — same outputs, same linear-memory contents, same fuel —
//! no matter how thoroughly the previous invocation dirtied it.

use awsm::{
    translate, BoundsStrategy, EngineConfig, Instance, InstanceError, NullHost, StepResult, Tier,
    Value,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// A deliberately stateful guest: every run mutates a global, overwrites a
/// template data byte, grows memory, and scribbles into the fresh page. Its
/// return value depends on the global *and* the template byte, so any state
/// leaking across a reset changes the observable result.
fn stateful_module() -> Module {
    let mut mb = ModuleBuilder::new("stateful");
    mb.memory(1, Some(4));
    mb.data(16, b"abc".to_vec());
    let g = mb.global_i32(5);
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let old = f.local(ValType::I32);
    let grew = f.local(ValType::I32);
    f.extend([
        // Mutate the global: a second run on a non-reset instance sees 2x.
        set_global(g, add(global(g, ValType::I32), local(x))),
        // Read the template byte, then clobber it.
        set(old, load(Scalar::U8, i32c(16), 0)),
        store(Scalar::U8, i32c(16), 0, i32c(0xFF)),
        // Grow past the initial page and dirty the new one; after a correct
        // reset pages snap back to 1 and the grow succeeds again.
        set(grew, Expr::MemoryGrow(Box::new(i32c(1)))),
        if_(ne(local(grew), i32c(1)), vec![ret(Some(i32c(-1)))]),
        store(Scalar::I32, i32c(65536 + 8), 0, global(g, ValType::I32)),
        ret(Some(add(
            mul(global(g, ValType::I32), i32c(256)),
            local(old),
        ))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

fn fnv_memory_hash(inst: &Instance) -> u64 {
    let mem = inst.memory();
    let bytes = mem
        .read_bytes(0, mem.size_bytes() as u32)
        .expect("full-memory read");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn recycled_instance_matches_fresh_exactly() {
    let m = stateful_module();
    for (tier, bounds) in [
        (Tier::Optimized, BoundsStrategy::Software),
        (Tier::Optimized, BoundsStrategy::GuardRegion),
        (Tier::Naive, BoundsStrategy::Software),
    ] {
        let cm = Arc::new(translate(&m, tier).unwrap());
        let cfg = EngineConfig {
            bounds,
            tier,
            ..Default::default()
        };

        // Fresh baseline.
        let mut fresh = Instance::new(Arc::clone(&cm), cfg).unwrap();
        let want = fresh
            .call_complete("main", &[Value::I32(3)], &mut NullHost)
            .unwrap();
        assert_eq!(want, Some((5 + 3) * 256 + 97), "tier={tier:?}");
        let want_hash = fnv_memory_hash(&fresh);
        let want_fuel = fresh.fuel_used();

        // Dirty a second instance with a *different* argument, recycle it,
        // and replay the baseline invocation.
        let mut recycled = Instance::new(cm, cfg).unwrap();
        recycled
            .call_complete("main", &[Value::I32(9)], &mut NullHost)
            .unwrap();
        recycled.reset_from_template().unwrap();
        assert_eq!(recycled.memory().pages(), 1, "pages snap back to min");
        assert_eq!(recycled.fuel_used(), 0, "fuel rearmed by reset");

        let got = recycled
            .call_complete("main", &[Value::I32(3)], &mut NullHost)
            .unwrap();
        assert_eq!(got, want, "tier={tier:?} bounds={bounds:?}");
        assert_eq!(fnv_memory_hash(&recycled), want_hash, "memory hash");
        assert_eq!(recycled.fuel_used(), want_fuel, "fuel");
    }
}

#[test]
fn reset_restores_template_bytes_and_zeroes_dirt() {
    let m = stateful_module();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    inst.call_complete("main", &[Value::I32(1)], &mut NullHost)
        .unwrap();
    assert_eq!(inst.memory().read_bytes(16, 1).unwrap(), &[0xFF]);
    inst.reset_from_template().unwrap();
    // Template bytes restored, dirt beyond the data segment zeroed.
    assert_eq!(inst.memory().read_bytes(16, 3).unwrap(), b"abc");
    assert_eq!(inst.memory().read_bytes(19, 1).unwrap(), &[0]);
    assert_eq!(inst.memory().read_bytes(1024, 64).unwrap(), &[0u8; 64]);
}

#[test]
fn reset_mid_invocation_is_rejected() {
    let m = stateful_module();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    inst.invoke_export("main", &[Value::I32(1)]).unwrap();
    // One unit of fuel cannot finish the body: the instance is mid-run.
    assert!(matches!(
        inst.run(&mut NullHost, 1),
        StepResult::OutOfFuel | StepResult::Preempted
    ));
    assert!(matches!(
        inst.reset_from_template(),
        Err(InstanceError::InvalidState)
    ));
    // Finishing the invocation makes it resettable again.
    loop {
        match inst.run(&mut NullHost, u64::MAX) {
            StepResult::Complete(_) => break,
            StepResult::OutOfFuel | StepResult::Preempted => continue,
            other => panic!("unexpected {other:?}"),
        }
    }
    inst.reset_from_template().unwrap();
}

#[test]
fn dead_instance_can_be_recycled() {
    // A trapped (Dead) instance is still pool-eligible at the engine layer:
    // reset discards the trap state with the rest.
    let mut mb = ModuleBuilder::new("oob");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let a = f.arg(0);
    f.push(ret(Some(load(Scalar::I32, local(a), 0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let cfg = EngineConfig {
        bounds: BoundsStrategy::Software,
        ..Default::default()
    };
    let mut inst = Instance::new(cm, cfg).unwrap();
    assert!(inst
        .call_complete("main", &[Value::I32(-4)], &mut NullHost)
        .is_err());
    inst.reset_from_template().unwrap();
    let got = inst
        .call_complete("main", &[Value::I32(64)], &mut NullHost)
        .unwrap();
    assert_eq!(got, Some(0));
}

#[test]
fn repeated_recycling_stays_pristine() {
    // Fifty dirty-then-reset cycles: the high-water-mark bookkeeping must not
    // drift, and every replay must match the first.
    let m = stateful_module();
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    let want = inst
        .call_complete("main", &[Value::I32(2)], &mut NullHost)
        .unwrap();
    let want_fuel = inst.fuel_used();
    let want_hash = fnv_memory_hash(&inst);
    for round in 0..50 {
        inst.reset_from_template().unwrap();
        let got = inst
            .call_complete("main", &[Value::I32(2)], &mut NullHost)
            .unwrap();
        assert_eq!(got, want, "round {round}");
        assert_eq!(inst.fuel_used(), want_fuel, "round {round}");
        assert_eq!(fnv_memory_hash(&inst), want_hash, "round {round}");
    }
}
