//! Load-time static-analysis tests: crafted modules that must be verified,
//! linted, or rejected before any sandbox exists, plus differential checks
//! that the `Static` bounds strategy never changes observable behavior.

use awsm::{
    translate, BoundsStrategy, EngineConfig, Instance, NullHost, Op, Severity, StackBound,
    StepResult, Tier, Trap, Value,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder, Stmt};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

fn run(
    m: &Module,
    tier: Tier,
    bounds: BoundsStrategy,
    args: &[Value],
) -> Result<Option<u64>, Trap> {
    let cm = Arc::new(translate(m, tier).expect("translate"));
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .expect("instantiate");
    inst.invoke_export("main", args).expect("invoke");
    loop {
        match inst.run(&mut NullHost, u64::MAX) {
            StepResult::Complete(v) => return Ok(v),
            StepResult::Trapped(t) => return Err(t),
            StepResult::OutOfFuel | StepResult::Preempted => continue,
            StepResult::Blocked => panic!("unexpected block"),
        }
    }
}

/// `main` and both tiers agree between `Software` and `Static` on result
/// *and* trap.
fn assert_static_matches_software(m: &Module, args: &[Value]) {
    for tier in [Tier::Optimized, Tier::Naive] {
        let soft = run(m, tier, BoundsStrategy::Software, args);
        let stat = run(m, tier, BoundsStrategy::Static, args);
        assert_eq!(soft, stat, "Software vs Static diverged under {tier:?}");
    }
}

// ------------------------------------------------------------ stack bounds

#[test]
fn straight_line_module_is_bounded() {
    let mut mb = ModuleBuilder::new("sl");
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(add(i32c(1), i32c(2)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    match cm.analysis.stack_bound {
        StackBound::Bounded(b) => assert!(b > 0, "one frame is never zero bytes"),
        StackBound::Unbounded { .. } => panic!("no calls, must be bounded"),
    }
    assert_eq!(cm.analysis.funcs.len(), 1);
    assert!(cm.analysis.diagnostics.is_empty());
    // A generous budget passes; a 1-byte budget cannot hold any frame.
    assert!(cm.analysis.check_stack(1 << 20).is_none());
    let d = cm.analysis.check_stack(1).expect("over budget");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn call_chain_bound_sums_frames() {
    // main -> mid -> leaf; the bound must cover all three frames, and be
    // strictly larger than the leaf alone.
    let mut mb = ModuleBuilder::new("chain");
    let mut leaf = FuncBuilder::new(&[], Some(ValType::I32));
    leaf.push(ret(Some(i32c(7))));
    let leaf = mb.add_func("leaf", leaf);
    let mut mid = FuncBuilder::new(&[], Some(ValType::I32));
    mid.push(ret(Some(add(call(leaf, vec![]), i32c(1)))));
    let mid = mb.add_func("mid", mid);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(add(call(mid, vec![]), i32c(1)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    let StackBound::Bounded(total) = cm.analysis.stack_bound else {
        panic!("acyclic chain must be bounded");
    };
    let frames: u64 = cm.analysis.funcs.iter().map(|f| f.frame_bytes).sum();
    assert_eq!(total, frames, "deepest chain is all three frames");
    assert_eq!(
        run(
            &mb_clone_run(),
            Tier::Optimized,
            BoundsStrategy::Software,
            &[]
        ),
        Ok(Some(9))
    );

    fn mb_clone_run() -> Module {
        let mut mb = ModuleBuilder::new("chain");
        let mut leaf = FuncBuilder::new(&[], Some(ValType::I32));
        leaf.push(ret(Some(i32c(7))));
        let leaf = mb.add_func("leaf", leaf);
        let mut mid = FuncBuilder::new(&[], Some(ValType::I32));
        mid.push(ret(Some(add(call(leaf, vec![]), i32c(1)))));
        let mid = mb.add_func("mid", mid);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(add(call(mid, vec![]), i32c(1)))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }
}

#[test]
fn recursion_is_unbounded_with_cycle() {
    let mut mb = ModuleBuilder::new("rec");
    let fr = mb.declare("main", &[ValType::I32], Some(ValType::I32));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let n = f.arg(0);
    f.push(if_(le_s(local(n), i32c(0)), vec![ret(Some(i32c(0)))]));
    f.push(ret(Some(add(
        local(n),
        call(fr, vec![sub(local(n), i32c(1))]),
    ))));
    mb.define(fr, f);
    mb.export_func(fr, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    let StackBound::Unbounded { cycle } = &cm.analysis.stack_bound else {
        panic!("self-recursion must be flagged unbounded");
    };
    assert!(!cycle.is_empty());
    // Any finite budget rejects it.
    let d = cm.analysis.check_stack(u64::MAX).expect("unbounded");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("recursive"), "{}", d.message);
    // The module still runs fine — rejection is a policy decision upstream.
    assert_static_matches_software(
        &{
            let mut mb = ModuleBuilder::new("rec");
            let fr = mb.declare("main", &[ValType::I32], Some(ValType::I32));
            let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
            let n = f.arg(0);
            f.push(if_(le_s(local(n), i32c(0)), vec![ret(Some(i32c(0)))]));
            f.push(ret(Some(add(
                local(n),
                call(fr, vec![sub(local(n), i32c(1))]),
            ))));
            mb.define(fr, f);
            mb.export_func(fr, "main");
            mb.build().unwrap()
        },
        &[Value::I32(10)],
    );
}

// ------------------------------------------------------------------ lints

#[test]
fn exported_entry_unreachable_is_error() {
    let mut mb = ModuleBuilder::new("dead-entry");
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(Stmt::Unreachable);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert!(cm.analysis.has_errors());
    let d = cm
        .analysis
        .with_severity(Severity::Error)
        .next()
        .expect("error lint");
    assert!(d.message.contains("traps unconditionally"), "{}", d.message);
    assert_eq!(d.func, Some(0));
}

#[test]
fn dead_function_is_warning_not_error() {
    let mut mb = ModuleBuilder::new("dead-helper");
    let mut h = FuncBuilder::new(&[], Some(ValType::I32));
    h.push(ret(Some(i32c(1))));
    let _helper = mb.add_func("helper", h);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(i32c(2))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert!(!cm.analysis.has_errors());
    let warns: Vec<_> = cm.analysis.with_severity(Severity::Warn).collect();
    assert!(
        warns
            .iter()
            .any(|d| d.message.contains("unreachable from every export")),
        "{warns:?}"
    );
    assert!(!cm.analysis.funcs[0].reachable);
    assert!(cm.analysis.funcs[1].reachable);
}

#[test]
fn constant_div_by_zero_warns() {
    // Guarded by a data-dependent branch, so it is not an entry trap — but
    // the instruction itself is a guaranteed trap if it ever executes.
    let mut mb = ModuleBuilder::new("divz");
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let n = f.arg(0);
    f.push(if_(eqz(local(n)), vec![ret(Some(div(local(n), i32c(0))))]));
    f.push(ret(Some(local(n))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert!(!cm.analysis.has_errors());
    assert!(
        cm.analysis
            .with_severity(Severity::Warn)
            .any(|d| d.message.contains("division by zero")),
        "{:?}",
        cm.analysis.diagnostics
    );
}

#[test]
fn doomed_call_indirect_warns() {
    // Table has one entry; a constant index of 5 can only trap.
    let mut mb = ModuleBuilder::new("ci");
    let sig = mb.signature(&[], Some(ValType::I32));
    let mut t = FuncBuilder::new(&[], Some(ValType::I32));
    t.push(ret(Some(i32c(3))));
    let target = mb.add_func("target", t);
    mb.table(&[target]);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(call_indirect(&sig, i32c(5), vec![]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert!(
        cm.analysis
            .with_severity(Severity::Warn)
            .any(|d| d.message.contains("call_indirect")),
        "{:?}",
        cm.analysis.diagnostics
    );
}

#[test]
fn constant_oob_store_is_error() {
    // Memory is capped at one page; a store at 1 MiB can never be in
    // bounds, no matter how much the instance grows.
    let mut mb = ModuleBuilder::new("oob");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(store_i32(i32c(1 << 20), i32c(42)));
    f.push(ret(Some(i32c(0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert!(cm.analysis.has_errors());
    let d = cm
        .analysis
        .with_severity(Severity::Error)
        .next()
        .expect("certain OOB");
    assert!(d.message.contains("out of bounds"), "{}", d.message);
    assert!(d.pc.is_some());
}

// --------------------------------------------------------------- elision

#[test]
fn constant_addresses_are_elided_and_preserved() {
    let mut mb = ModuleBuilder::new("elide");
    mb.memory(1, Some(2));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(store_i32(i32c(16), i32c(1234)));
    f.push(ret(Some(load_i32(i32c(16)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let cm = translate(&m, Tier::Optimized).unwrap();
    assert!(cm.analysis.elided_sites >= 2, "{:?}", cm.analysis);
    let shadow = cm.funcs[0].code_static.as_ref().expect("rewritten body");
    assert_eq!(shadow.len(), cm.funcs[0].code.len());
    assert!(shadow
        .iter()
        .any(|op| matches!(op, Op::StoreNc(..) | Op::LoadNc(..) | Op::LoadLNc(..))));
    assert_eq!(
        run(&m, Tier::Optimized, BoundsStrategy::Static, &[]),
        Ok(Some(1234))
    );
    assert_static_matches_software(&m, &[]);
}

#[test]
fn loop_bounded_index_is_elided() {
    // for i in 0..100: store at i*4 — a branch-refined interval proof.
    let mut mb = ModuleBuilder::new("loop-elide");
    mb.memory(1, Some(4));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let i = f.local(ValType::I32);
    f.push(for_loop(
        i,
        i32c(0),
        lt_s(local(i), i32c(100)),
        1,
        vec![store_i32(mul(local(i), i32c(4)), local(i))],
    ));
    f.push(ret(Some(load_i32(i32c(396)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let cm = translate(&m, Tier::Optimized).unwrap();
    assert!(
        cm.analysis.elided_sites > 0,
        "loop-bounded store should be proven: {:?}",
        cm.analysis
    );
    assert_eq!(
        run(&m, Tier::Optimized, BoundsStrategy::Static, &[]),
        Ok(Some(99))
    );
    assert_static_matches_software(&m, &[]);
}

#[test]
fn unproven_sites_still_trap_under_static() {
    // Address comes straight from the argument: unprovable, so the static
    // strategy must keep the software check and trap identically.
    let mut mb = ModuleBuilder::new("oob-dyn");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let a = f.arg(0);
    f.push(ret(Some(load_i32(local(a)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    // In-bounds agrees...
    assert_static_matches_software(&m, &[Value::I32(64)]);
    // ...and OOB agrees (both trap).
    let oob = run(
        &m,
        Tier::Optimized,
        BoundsStrategy::Static,
        &[Value::I32(1 << 20)],
    );
    assert_eq!(oob, Err(Trap::OutOfBounds));
    assert_static_matches_software(&m, &[Value::I32(1 << 20)]);
    assert_static_matches_software(&m, &[Value::I32(65533)]); // straddles the page end
}

#[test]
fn memory_grow_does_not_invalidate_proofs() {
    // Proofs are against min_pages; growing the memory only adds slack.
    let mut mb = ModuleBuilder::new("grow");
    mb.memory(1, Some(4));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(store_i32(i32c(0), i32c(7)));
    f.push(exec(Expr::MemoryGrow(Box::new(i32c(2)))));
    f.push(store_i32(i32c(8), i32c(8)));
    f.push(ret(Some(add(load_i32(i32c(0)), load_i32(i32c(8))))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_eq!(
        run(&m, Tier::Optimized, BoundsStrategy::Static, &[]),
        Ok(Some(15))
    );
    assert_static_matches_software(&m, &[]);
}
