//! Property-based recycling tests: for randomly generated stateful guest
//! programs, an instance that ran once (with different inputs) and was reset
//! from its module's memory template must be observationally identical to a
//! fresh instance — same output, same full-memory hash, same fuel consumed.

use awsm::{translate, BoundsStrategy, EngineConfig, Instance, NullHost, Tier, Value};
use proptest::prelude::*;
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// A tiny arithmetic AST (mirrors `prop_semantics.rs`) used as the payload of
/// a memory-dirtying guest.
#[derive(Debug, Clone)]
enum Arith {
    Const(i32),
    X,
    Y,
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    Xor(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_expr(&self, x: sledge_guestc::Local, y: sledge_guestc::Local) -> Expr {
        match self {
            Arith::Const(c) => i32c(*c),
            Arith::X => local(x),
            Arith::Y => local(y),
            Arith::Add(a, b) => add(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Sub(a, b) => sub(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Mul(a, b) => mul(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Xor(a, b) => xor(a.to_expr(x, y), b.to_expr(x, y)),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Arith::Const),
        Just(Arith::X),
        Just(Arith::Y),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// Build a guest that evaluates `e`, scribbles the result across a stride of
/// memory words (addresses masked into page 0), mutates a global accumulator,
/// optionally grows memory and dirties the new page, and returns a value that
/// depends on the global, a template data byte, and a read-back of the
/// scribbled memory.
fn build_stateful(e: &Arith, stores: u32, grow: bool) -> Module {
    let mut mb = ModuleBuilder::new("prop-recycle");
    mb.memory(1, Some(4));
    mb.data(8, b"seed".to_vec());
    let g = mb.global_i32(17);
    let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let y = f.arg(1);
    let v = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let addr = f.local(ValType::I32);
    f.push(set(v, e.to_expr(x, y)));
    f.push(set_global(g, add(global(g, ValType::I32), local(v))));
    // Scribble `stores` words at value-dependent (masked) addresses.
    f.push(for_loop(
        i,
        i32c(0),
        lt_s(local(i), i32c(stores as i32)),
        1,
        vec![
            set(
                addr,
                and(add(local(v), mul(local(i), i32c(52))), i32c(0xFFFC)),
            ),
            store(Scalar::I32, local(addr), 0, xor(local(v), local(i))),
        ],
    ));
    if grow {
        f.push(set(i, Expr::MemoryGrow(Box::new(i32c(1)))));
        f.push(store(
            Scalar::I32,
            i32c(65536 + 128),
            0,
            global(g, ValType::I32),
        ));
    }
    f.push(ret(Some(add(
        add(
            mul(global(g, ValType::I32), i32c(31)),
            load(Scalar::U8, i32c(8), 0),
        ),
        load(Scalar::I32, and(local(v), i32c(0xFFFC)), 0),
    ))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("generated module must validate")
}

fn fnv_memory_hash(inst: &Instance) -> u64 {
    let mem = inst.memory();
    let bytes = mem
        .read_bytes(0, mem.size_bytes() as u32)
        .expect("full-memory read");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_once(inst: &mut Instance, x: i32, y: i32) -> (Option<u64>, u64, u64) {
    let out = inst
        .call_complete("main", &[Value::I32(x), Value::I32(y)], &mut NullHost)
        .expect("stateful guest must complete");
    (out, fnv_memory_hash(inst), inst.fuel_used())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The differential property at the heart of the warm pool: recycled ≡
    /// fresh, for arbitrary programs, dirtying patterns, and input pairs.
    #[test]
    fn recycled_is_observationally_fresh(
        e in arith_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
        dx in any::<i32>(),
        dy in any::<i32>(),
        stores in 1u32..24,
        grow in any::<bool>(),
    ) {
        let m = build_stateful(&e, stores, grow);
        for (tier, bounds) in [
            (Tier::Optimized, BoundsStrategy::Software),
            (Tier::Optimized, BoundsStrategy::GuardRegion),
            (Tier::Naive, BoundsStrategy::Software),
        ] {
            let cm = Arc::new(translate(&m, tier).unwrap());
            let cfg = EngineConfig { bounds, tier, ..Default::default() };

            let mut fresh = Instance::new(Arc::clone(&cm), cfg).unwrap();
            let want = run_once(&mut fresh, x, y);

            let mut recycled = Instance::new(cm, cfg).unwrap();
            // Dirty with unrelated inputs, then reset and replay.
            run_once(&mut recycled, dx, dy);
            recycled.reset_from_template().unwrap();
            prop_assert_eq!(recycled.memory().pages(), 1);
            let got = run_once(&mut recycled, x, y);

            prop_assert_eq!(got, want, "tier={:?} bounds={:?}", tier, bounds);
        }
    }

    /// Many consecutive recycles of one instance never drift from the fresh
    /// baseline (the high-water-mark tracking must stay sound under reuse).
    #[test]
    fn repeated_recycles_never_drift(
        e in arith_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
        rounds in 2usize..12,
    ) {
        let m = build_stateful(&e, 8, false);
        let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
        let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
        let want = run_once(&mut inst, x, y);
        for _ in 0..rounds {
            inst.reset_from_template().unwrap();
            let got = run_once(&mut inst, x, y);
            prop_assert_eq!(got, want);
        }
    }
}
