//! Property-based tests for the static cost model: `quantum_fuel` is a
//! true work meter, so the Naive tier (charging per op at the loop top)
//! and the Optimized tier (charging per block at `Op::Fuel` sites) must
//! agree exactly on total fuel for the same execution — under any bounds
//! strategy and any chopping — and the shipped instrumentation must obey
//! the certificate it was issued.

use awsm::{
    translate_with, BoundsStrategy, EngineConfig, Instance, NullHost, Op, StepResult, Tier,
    TranslateOptions, Value,
};
use proptest::prelude::*;
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// Expression AST spanning the weight classes the cost model distinguishes
/// (free const/local ops, unit arith, weighted mul/div, select).
#[derive(Debug, Clone)]
enum Arith {
    Const(i32),
    X,
    Y,
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    DivU(Box<Arith>, Box<Arith>),
    Xor(Box<Arith>, Box<Arith>),
    Sel(Box<Arith>, Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_expr(&self, x: sledge_guestc::Local, y: sledge_guestc::Local) -> Expr {
        match self {
            Arith::Const(c) => i32c(*c),
            Arith::X => local(x),
            Arith::Y => local(y),
            Arith::Add(a, b) => add(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Sub(a, b) => sub(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Mul(a, b) => mul(a.to_expr(x, y), b.to_expr(x, y)),
            // Guard divisor: `d | 1` keeps the program trap-free.
            Arith::DivU(a, b) => div_u(a.to_expr(x, y), or(b.to_expr(x, y), i32c(1))),
            Arith::Xor(a, b) => xor(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Sel(c, a, b) => select(
                ne(c.to_expr(x, y), i32c(0)),
                a.to_expr(x, y),
                b.to_expr(x, y),
            ),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Arith::Const),
        Just(Arith::X),
        Just(Arith::Y),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::DivU(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Arith::Sel(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// A loop with branching and memory traffic around the expression, so
/// bodies exercise back edges, stores/loads, and fused compare-branches.
fn build_module(e: &Arith, iters: i32) -> Module {
    let mut mb = ModuleBuilder::new("prop-cost");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let y = f.arg(1);
    let acc = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    f.extend([
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(iters)),
            1,
            vec![
                set(acc, xor(local(acc), e.to_expr(x, y))),
                if_(
                    gt_s(local(acc), i32c(0)),
                    vec![set(acc, sub(i32c(0), local(acc)))],
                ),
                store_i32(and(mul(local(i), i32c(4)), i32c(0xfff)), local(acc)),
                set(
                    acc,
                    add(
                        local(acc),
                        load_i32(and(mul(local(i), i32c(4)), i32c(0xfff))),
                    ),
                ),
            ],
        ),
        ret(Some(local(acc))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("generated module must validate")
}

/// Run to completion with per-call fuel grant `quantum`; returns the
/// result value and total fuel consumed.
fn run_metered(
    m: &Module,
    tier: Tier,
    bounds: BoundsStrategy,
    gap: u32,
    x: i32,
    y: i32,
    quantum: u64,
) -> (Option<u64>, u64) {
    let cm = Arc::new(
        translate_with(
            m,
            tier,
            TranslateOptions {
                max_check_gap: gap,
                ..TranslateOptions::default()
            },
        )
        .unwrap(),
    );
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .unwrap();
    inst.invoke_export("main", &[Value::I32(x), Value::I32(y)])
        .unwrap();
    let got = loop {
        match inst.run(&mut NullHost, quantum) {
            StepResult::Complete(v) => break v,
            StepResult::OutOfFuel => continue,
            other => panic!("unexpected {other:?}"),
        }
    };
    (got, inst.fuel_used())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both tiers consume identical total fuel for the same execution,
    /// under every bounds strategy, and chopping at any quantum neither
    /// changes the result nor the total.
    #[test]
    fn tiers_agree_on_total_fuel(
        e in arith_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
        iters in 1i32..20,
        quantum in 1u64..200,
        gap in 8u32..1024,
    ) {
        let m = build_module(&e, iters);
        let (ref_val, ref_fuel) = run_metered(
            &m, Tier::Optimized, BoundsStrategy::GuardRegion, gap, x, y, u64::MAX,
        );
        prop_assert!(ref_fuel > 0, "a loop iteration must cost something");
        for (tier, bounds) in [
            (Tier::Optimized, BoundsStrategy::Software),
            (Tier::Optimized, BoundsStrategy::Static),
            (Tier::Naive, BoundsStrategy::GuardRegion),
            (Tier::Naive, BoundsStrategy::Static),
        ] {
            let (v, fuel) = run_metered(&m, tier, bounds, gap, x, y, u64::MAX);
            prop_assert_eq!(v, ref_val, "value tier={:?} bounds={:?}", tier, bounds);
            prop_assert_eq!(
                fuel, ref_fuel,
                "fuel tier={:?} bounds={:?}", tier, bounds
            );
        }
        // Chopped runs pay exactly the same total (debt accounting is exact).
        for tier in [Tier::Optimized, Tier::Naive] {
            let (v, fuel) = run_metered(
                &m, tier, BoundsStrategy::GuardRegion, gap, x, y, quantum,
            );
            prop_assert_eq!(v, ref_val, "chopped value tier={:?}", tier);
            prop_assert_eq!(fuel, ref_fuel, "chopped fuel tier={:?}", tier);
        }
    }

    /// The shipped instrumentation obeys its certificate: every `Op::Fuel`
    /// charge is at most the certified max gap, the certificate respects
    /// the requested budget whenever no single opcode outweighs it, and
    /// recomputing each check-free segment's cost from the instrumented
    /// body reproduces the charge at its head.
    #[test]
    fn observed_gaps_within_certificate(
        e in arith_strategy(),
        iters in 1i32..10,
        gap in 4u32..256,
    ) {
        let m = build_module(&e, iters);
        let cm = translate_with(
            &m, Tier::Optimized, TranslateOptions { max_check_gap: gap, ..TranslateOptions::default() },
        ).unwrap();
        let cert = cm.analysis.cost.as_ref().expect("certificate always attached");
        prop_assert_eq!(cert.max_check_gap, gap);
        // No opcode in this generator weighs more than a memory store (3)
        // or i32 division (4), so the certificate must meet any budget >= 4.
        prop_assert!(
            cert.max_gap <= gap.max(awsm::op_cost(&Op::MemoryGrow)),
            "certified gap {} exceeds budget {}", cert.max_gap, gap
        );
        for func in &cm.funcs {
            let mut seg = 0u64; // cost accumulated since the last charge site
            let mut pending: Option<u32> = None; // the charge guarding `seg`
            for op in &func.code {
                if let Op::Fuel(n) = op {
                    if let Some(p) = pending.take() {
                        prop_assert_eq!(u64::from(p), seg, "segment under-/over-charged");
                    }
                    prop_assert!(*n <= cert.max_gap, "charge {n} above certified gap");
                    pending = Some(*n);
                    seg = 0;
                } else {
                    seg += u64::from(awsm::op_cost(op));
                }
            }
            // Trailing segment: charges partition the linear op layout, so
            // the ops after the final charge must sum to exactly it (a
            // zero-cost trailing chunk has its charge elided and merges in
            // at no cost).
            if let Some(p) = pending {
                prop_assert_eq!(u64::from(p), seg, "trailing segment mismatch");
            }
        }
    }
}
