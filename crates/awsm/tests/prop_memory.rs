//! Property tests of guest memory behaviour across bounds strategies:
//! random in-bounds access programs must behave identically under every
//! strategy, and out-of-bounds accesses must trap under checking strategies.

use awsm::{translate, BoundsStrategy, EngineConfig, Instance, NullHost, Tier, Trap};
use proptest::prelude::*;
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// Build a guest that performs a scripted sequence of stores then sums a
/// scripted sequence of loads, all at the given (address, value) pairs.
fn access_module(stores: &[(u32, u32)], loads: &[u32]) -> Module {
    let mut mb = ModuleBuilder::new("mem");
    mb.memory(2, Some(4));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let acc = f.local(ValType::I32);
    let mut body = Vec::new();
    for (addr, val) in stores {
        body.push(store(Scalar::I32, i32c(*addr as i32), 0, i32c(*val as i32)));
    }
    for addr in loads {
        body.push(set(
            acc,
            add(local(acc), load(Scalar::I32, i32c(*addr as i32), 0)),
        ));
    }
    body.push(ret(Some(local(acc))));
    f.extend(body);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("valid module")
}

fn run(m: &Module, tier: Tier, bounds: BoundsStrategy) -> Result<u32, Trap> {
    let cm = Arc::new(translate(m, tier).expect("translate"));
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            tier,
            bounds,
            ..Default::default()
        },
    )
    .expect("instantiate");
    match inst.call_complete("main", &[], &mut NullHost) {
        Ok(v) => Ok(v.expect("result") as u32),
        Err(e) => match e.downcast::<Trap>() {
            Ok(t) => Err(*t),
            Err(other) => panic!("non-trap failure: {other}"),
        },
    }
}

// 2 pages committed = 131072 bytes; keep i32 accesses within it.
const LIMIT: u32 = 2 * 65536 - 4;

proptest! {
    #[test]
    fn in_bounds_programs_agree_across_all_strategies(
        stores in proptest::collection::vec((0u32..=LIMIT, any::<u32>()), 0..12),
        loads in proptest::collection::vec(0u32..=LIMIT, 1..12),
    ) {
        let m = access_module(&stores, &loads);
        let reference = run(&m, Tier::Optimized, BoundsStrategy::Software).expect("in bounds");
        for (tier, bounds) in [
            (Tier::Optimized, BoundsStrategy::GuardRegion),
            (Tier::Optimized, BoundsStrategy::MpxEmulated),
            (Tier::Optimized, BoundsStrategy::None),
            (Tier::Optimized, BoundsStrategy::Static),
            (Tier::Naive, BoundsStrategy::Software),
            (Tier::Naive, BoundsStrategy::GuardRegion),
            (Tier::Naive, BoundsStrategy::Static),
        ] {
            prop_assert_eq!(
                run(&m, tier, bounds).expect("in bounds"),
                reference,
                "strategy {:?}/{:?}", tier, bounds
            );
        }
    }

    #[test]
    fn out_of_bounds_loads_trap_under_checking_strategies(
        base in LIMIT + 1..u32::MAX - 4,
    ) {
        let m = access_module(&[], &[base]);
        for bounds in [
            BoundsStrategy::Software,
            BoundsStrategy::MpxEmulated,
            BoundsStrategy::Static,
        ] {
            prop_assert_eq!(
                run(&m, Tier::Optimized, bounds),
                Err(Trap::OutOfBounds),
                "bounds {:?}", bounds
            );
        }
        // Guard-region wraps (documented substitution) but must not crash.
        prop_assert!(run(&m, Tier::Optimized, BoundsStrategy::GuardRegion).is_ok());
    }

    /// The differential property behind bounds-check elision: for *any*
    /// access pattern — in bounds or not — the `Static` strategy must be
    /// observationally identical to `Software`, both in results and traps.
    /// Elision may only fire where the analyzer proved the check redundant.
    #[test]
    fn static_strategy_is_observationally_identical_to_software(
        stores in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..12),
        loads in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        let m = access_module(&stores, &loads);
        for tier in [Tier::Optimized, Tier::Naive] {
            prop_assert_eq!(
                run(&m, tier, BoundsStrategy::Static),
                run(&m, tier, BoundsStrategy::Software),
                "tier {:?}", tier
            );
        }
    }

    #[test]
    fn stores_then_loads_roundtrip_values(
        addr in proptest::collection::vec(0u32..=LIMIT / 8, 1..8),
        vals in proptest::collection::vec(any::<u32>(), 8),
    ) {
        // Non-overlapping 4-byte slots: scale addresses by 8.
        let mut dedup: Vec<u32> = addr.iter().map(|a| a * 8).collect();
        dedup.sort_unstable();
        dedup.dedup();
        let stores: Vec<(u32, u32)> =
            dedup.iter().zip(&vals).map(|(a, v)| (*a, *v)).collect();
        let loads: Vec<u32> = stores.iter().map(|(a, _)| *a).collect();
        let expect: u32 = stores.iter().map(|(_, v)| *v).fold(0u32, u32::wrapping_add);
        let m = access_module(&stores, &loads);
        let got = run(&m, Tier::Optimized, BoundsStrategy::Software).expect("in bounds");
        prop_assert_eq!(got, expect);
    }
}
