//! Differential property tests for the translate-time optimizer: for
//! randomly generated guest programs, the optimized translation must be
//! observationally identical to the unoptimized one — same result, same
//! trap, same `fuel_used`, same full-memory hash — across both engine
//! tiers and both checking bounds strategies, and a recycled optimized
//! instance must stay identical to a fresh one.

use awsm::{
    translate_with, BoundsStrategy, EngineConfig, Instance, NullHost, Tier, TranslateOptions, Trap,
    Value, DEFAULT_MAX_CHECK_GAP,
};
use proptest::prelude::*;
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// Arithmetic AST biased toward what the optimizer rewrites: constant
/// subtrees (folding), local reads (propagation through `LocalSet`), and
/// guarded division (trap-preservation of the folder).
#[derive(Debug, Clone)]
enum Arith {
    Const(i32),
    X,
    Y,
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    DivU(Box<Arith>, Box<Arith>),
    Xor(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn to_expr(&self, x: sledge_guestc::Local, y: sledge_guestc::Local) -> Expr {
        match self {
            Arith::Const(c) => i32c(*c),
            Arith::X => local(x),
            Arith::Y => local(y),
            Arith::Add(a, b) => add(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Sub(a, b) => sub(a.to_expr(x, y), b.to_expr(x, y)),
            Arith::Mul(a, b) => mul(a.to_expr(x, y), b.to_expr(x, y)),
            // Guard divisor: `d | 1` keeps the program trap-free.
            Arith::DivU(a, b) => div_u(a.to_expr(x, y), or(b.to_expr(x, y), i32c(1))),
            Arith::Xor(a, b) => xor(a.to_expr(x, y), b.to_expr(x, y)),
        }
    }
}

fn arith_strategy() -> impl Strategy<Value = Arith> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Arith::Const),
        Just(Arith::X),
        Just(Arith::Y),
    ];
    leaf.prop_recursive(4, 40, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::DivU(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// A stateful guest the optimizer has plenty to chew on: a constant
/// preamble routed through locals (folding + propagation), a
/// constant-condition branch (one arm statically dead), stores at constant
/// and value-relative addresses (dominated-check elision), a loop with
/// memory traffic (fuel-site layout), and a global accumulator.
fn build_module(e: &Arith, iters: i32, dead_arm: bool) -> Module {
    let mut mb = ModuleBuilder::new("prop-opt");
    mb.memory(1, Some(2));
    mb.data(8, b"opt!".to_vec());
    let g = mb.global_i32(23);
    let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let y = f.arg(1);
    let v = f.local(ValType::I32);
    let k = f.local(ValType::I32);
    let i = f.local(ValType::I32);
    let a = f.local(ValType::I32);
    // An address loaded from memory is opaque to interval analysis (it is 0
    // at runtime: this reads pristine zeroed memory), so the first access
    // through it stays checked — and *dominates* the later, smaller
    // accesses, which the coverage pass converts to unchecked forms.
    f.push(set(a, load(Scalar::I32, i32c(0), 0)));
    f.push(store(Scalar::I32, local(a), 16, i32c(77)));
    f.push(store(Scalar::I32, local(a), 0, i32c(88)));
    f.push(set(v, load(Scalar::I32, local(a), 8)));
    // Constant preamble through a local: folds to a single constant.
    f.push(set(k, add(mul(i32c(7), i32c(3)), i32c(100))));
    // Constant-condition branch: one arm is statically dead.
    f.push(if_else(
        i32c(if dead_arm { 1 } else { 0 }),
        vec![set(v, add(e.to_expr(x, y), local(k)))],
        vec![set(v, xor(e.to_expr(x, y), local(k)))],
    ));
    f.push(set_global(g, add(global(g, ValType::I32), local(v))));
    // Constant-address stores: the second is dominated by the first.
    f.push(store(Scalar::I32, i32c(256), 0, local(v)));
    f.push(store(Scalar::I32, i32c(128), 0, global(g, ValType::I32)));
    // Relative pair off one base local: offset coverage.
    f.push(set(k, and(local(v), i32c(0xFF00))));
    f.push(store(Scalar::I32, local(k), 12, local(v)));
    f.push(store(Scalar::I32, local(k), 4, xor(local(v), i32c(-1))));
    // Loop with memory traffic and a data-dependent branch.
    f.push(for_loop(
        i,
        i32c(0),
        lt_s(local(i), i32c(iters)),
        1,
        vec![
            store(
                Scalar::I32,
                and(mul(local(i), i32c(4)), i32c(0xFFC)),
                0,
                xor(local(v), local(i)),
            ),
            if_(
                gt_s(local(v), i32c(0)),
                vec![set(v, sub(i32c(0), local(v)))],
            ),
            set(
                v,
                add(
                    local(v),
                    load(Scalar::I32, and(mul(local(i), i32c(4)), i32c(0xFFC)), 0),
                ),
            ),
        ],
    ));
    f.push(ret(Some(add(
        add(
            mul(global(g, ValType::I32), i32c(31)),
            load(Scalar::U8, i32c(8), 0),
        ),
        local(v),
    ))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("generated module must validate")
}

/// A guest whose single store traps iff `off` reaches past the page:
/// the trap-equivalence probe.
fn build_trapping(off: u32) -> Module {
    let mut mb = ModuleBuilder::new("prop-opt-trap");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    let v = f.local(ValType::I32);
    f.push(set(v, mul(local(x), i32c(3))));
    f.push(store(Scalar::I32, i32c(16), 0, local(v)));
    f.push(store(
        Scalar::I32,
        and(local(v), i32c(0xFFC)),
        off,
        local(v),
    ));
    f.push(ret(Some(load(Scalar::I32, i32c(16), 0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().expect("generated module must validate")
}

fn translate_opt(m: &Module, tier: Tier, optimize: bool) -> Arc<awsm::CompiledModule> {
    Arc::new(
        translate_with(
            m,
            tier,
            TranslateOptions {
                max_check_gap: DEFAULT_MAX_CHECK_GAP,
                optimize,
            },
        )
        .unwrap(),
    )
}

fn fnv_memory_hash(inst: &Instance) -> u64 {
    let mem = inst.memory();
    let bytes = mem
        .read_bytes(0, mem.size_bytes() as u32)
        .expect("full-memory read");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run to completion; returns (result, memory hash, fuel used).
fn observe(
    cm: Arc<awsm::CompiledModule>,
    tier: Tier,
    bounds: BoundsStrategy,
    args: &[Value],
) -> (Option<u64>, u64, u64) {
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .unwrap();
    let out = inst
        .call_complete("main", args, &mut NullHost)
        .expect("trap-free guest must complete");
    (out, fnv_memory_hash(&inst), inst.fuel_used())
}

/// Run a possibly-trapping guest; returns Ok(result) or the trap, plus
/// fuel used up to the outcome.
fn observe_trap(
    cm: Arc<awsm::CompiledModule>,
    tier: Tier,
    bounds: BoundsStrategy,
    args: &[Value],
) -> (Result<Option<u64>, Trap>, u64) {
    let mut inst = Instance::new(
        cm,
        EngineConfig {
            bounds,
            tier,
            ..Default::default()
        },
    )
    .unwrap();
    let out = match inst.call_complete("main", args, &mut NullHost) {
        Ok(v) => Ok(v),
        Err(e) => match e.downcast::<Trap>() {
            Ok(t) => Err(*t),
            Err(other) => panic!("non-trap failure: {other}"),
        },
    };
    (out, inst.fuel_used())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core translation-validation property, dynamically: optimized and
    /// unoptimized translations of the same module are observationally
    /// identical — result, full-memory hash, and total fuel — across both
    /// tiers and both checking bounds strategies.
    #[test]
    fn optimized_is_observationally_unoptimized(
        e in arith_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
        iters in 1i32..16,
        dead_arm in any::<bool>(),
    ) {
        let m = build_module(&e, iters, dead_arm);
        let args = [Value::I32(x), Value::I32(y)];
        for tier in [Tier::Optimized, Tier::Naive] {
            let base = translate_opt(&m, tier, false);
            let opt = translate_opt(&m, tier, true);
            prop_assert!(opt.analysis.opt.is_some(), "optimizer report attached");
            awsm::validate_opt(&opt).expect("certificate must validate");
            for bounds in [BoundsStrategy::Software, BoundsStrategy::GuardRegion] {
                let want = observe(Arc::clone(&base), tier, bounds, &args);
                let got = observe(Arc::clone(&opt), tier, bounds, &args);
                prop_assert_eq!(
                    got, want,
                    "optimized != unoptimized: tier={:?} bounds={:?}", tier, bounds
                );
            }
        }
    }

    /// Trap preservation: a guest that traps does so identically with the
    /// optimizer on and off, in both tiers. Fuel is compared in the naive
    /// tier only (per-op charging observes the same executed prefix); the
    /// optimized tier prepays block segments whose layout the optimizer may
    /// legally reshape past the trap point.
    #[test]
    fn traps_are_preserved(
        x in any::<i32>(),
        off in prop_oneof![0u32..1024, 64_000u32..70_000],
    ) {
        let m = build_trapping(off);
        let args = [Value::I32(x)];
        for tier in [Tier::Optimized, Tier::Naive] {
            let base = translate_opt(&m, tier, false);
            let opt = translate_opt(&m, tier, true);
            for bounds in [BoundsStrategy::Software, BoundsStrategy::GuardRegion] {
                let (want, want_fuel) = observe_trap(Arc::clone(&base), tier, bounds, &args);
                let (got, got_fuel) = observe_trap(Arc::clone(&opt), tier, bounds, &args);
                prop_assert_eq!(
                    got.clone(), want.clone(),
                    "outcome: tier={:?} bounds={:?}", tier, bounds
                );
                if tier == Tier::Naive || want.is_ok() {
                    prop_assert_eq!(
                        got_fuel, want_fuel,
                        "fuel: tier={:?} bounds={:?}", tier, bounds
                    );
                }
            }
        }
    }

    /// Pool-path equivalence: a recycled instance of an *optimized* module
    /// (reset from its memory template) stays observationally identical to
    /// a fresh instance — the optimizer must not perturb the template or
    /// the high-water-mark reset.
    #[test]
    fn recycled_optimized_instance_is_fresh(
        e in arith_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
        dx in any::<i32>(),
        dy in any::<i32>(),
        iters in 1i32..8,
    ) {
        let m = build_module(&e, iters, false);
        let cm = translate_opt(&m, Tier::Optimized, true);
        let cfg = EngineConfig::default();
        let args = [Value::I32(x), Value::I32(y)];

        let mut fresh = Instance::new(Arc::clone(&cm), cfg).unwrap();
        let want_out = fresh.call_complete("main", &args, &mut NullHost).unwrap();
        let want = (want_out, fnv_memory_hash(&fresh), fresh.fuel_used());

        let mut recycled = Instance::new(cm, cfg).unwrap();
        recycled
            .call_complete("main", &[Value::I32(dx), Value::I32(dy)], &mut NullHost)
            .unwrap();
        recycled.reset_from_template().unwrap();
        let got_out = recycled.call_complete("main", &args, &mut NullHost).unwrap();
        let got = (got_out, fnv_memory_hash(&recycled), recycled.fuel_used());
        prop_assert_eq!(got, want);
    }
}
