//! White-box tests of the AoT translator: super-instruction fusion in the
//! optimized tier, its absence in the naive tier, and fusion barriers at
//! branch targets.

use awsm::code::{NumBin, Op};
use awsm::{translate, translate_with, Tier, TranslateOptions, DEFAULT_MAX_CHECK_GAP};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;

fn module_of(f: FuncBuilder) -> Module {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

// White-box op-stream checks pin the dataflow optimizer off: these tests
// are about the *translator's* tier-dependent fusion, and the optimizer
// (which fuses in both tiers) would blur the tier distinction.
fn ops_of(m: &Module, tier: Tier) -> Vec<Op> {
    let cm = translate_with(
        m,
        tier,
        TranslateOptions {
            max_check_gap: DEFAULT_MAX_CHECK_GAP,
            optimize: false,
        },
    )
    .unwrap();
    cm.funcs[0].code.clone()
}

#[test]
fn local_local_binop_fuses_in_optimized_tier() {
    let mut f = FuncBuilder::new(&[ValType::I32, ValType::I32], Some(ValType::I32));
    let (a, b) = (f.arg(0), f.arg(1));
    f.push(ret(Some(add(local(a), local(b)))));
    let m = module_of(f);

    let opt = ops_of(&m, Tier::Optimized);
    assert!(
        opt.iter()
            .any(|o| matches!(o, Op::Bin2L(NumBin::I32Add, 0, 1))),
        "expected Bin2L in {opt:?}"
    );
    let naive = ops_of(&m, Tier::Naive);
    assert!(
        naive.iter().all(|o| !matches!(o, Op::Bin2L(..))),
        "naive tier must not fuse: {naive:?}"
    );
    assert!(naive.iter().any(|o| matches!(o, Op::Bin(NumBin::I32Add))));
}

#[test]
fn loop_counter_increment_fuses_to_inc() {
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let i = f.local(ValType::I32);
    let acc = f.local(ValType::I32);
    f.extend([
        for_loop(
            i,
            i32c(0),
            lt_s(local(i), i32c(10)),
            1,
            vec![set(acc, add(local(acc), local(i)))],
        ),
        ret(Some(local(acc))),
    ]);
    let m = module_of(f);
    let opt = ops_of(&m, Tier::Optimized);
    assert!(
        opt.iter().any(|o| matches!(o, Op::IncI32(0, 1))),
        "expected IncI32 for the loop counter in {opt:?}"
    );
    // And the body's local-local add + store fused to Bin2LS.
    assert!(
        opt.iter()
            .any(|o| matches!(o, Op::Bin2LS(NumBin::I32Add, 1, 0, 1))),
        "expected Bin2LS in {opt:?}"
    );
}

#[test]
fn local_then_load_fuses() {
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let p = f.arg(0);
    f.push(ret(Some(load(Scalar::I32, local(p), 16))));
    let m = module_of(f);
    let opt = ops_of(&m, Tier::Optimized);
    assert!(
        opt.iter().any(|o| matches!(o, Op::LoadL(_, 0, 16))),
        "expected LoadL in {opt:?}"
    );
}

#[test]
fn eqz_brif_fuses_to_brifz() {
    // while(cond) lowers to cond; eqz; br_if — must fuse to BrIfZ.
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let n = f.arg(0);
    f.extend([
        while_(
            gt_s(local(n), i32c(0)),
            vec![set(n, sub(local(n), i32c(1)))],
        ),
        ret(Some(local(n))),
    ]);
    let m = module_of(f);
    let opt = ops_of(&m, Tier::Optimized);
    assert!(
        opt.iter().any(|o| matches!(o, Op::BrIfZ(_))),
        "expected BrIfZ in {opt:?}"
    );
    assert!(
        opt.iter()
            .all(|o| !matches!(o, Op::Un(awsm::code::NumUn::I32Eqz))),
        "eqz should have been folded into the branch: {opt:?}"
    );
}

#[test]
fn fusion_respects_loop_head_barriers() {
    // The last op before a loop head and the first op inside it must not be
    // fused across the barrier: branch targets must stay addressable.
    // Construct: set x; loop { x = x + 1; br_if } — the local.get at the
    // loop head is a branch target.
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    f.extend([
        set(x, i32c(5)),
        while_(
            lt_s(local(x), i32c(100)),
            vec![set(x, mul(local(x), i32c(2)))],
        ),
        ret(Some(local(x))),
    ]);
    let m = module_of(f);
    // Correctness is the real check: run both tiers and compare.
    use awsm::{EngineConfig, Instance, NullHost, Value};
    for tier in [Tier::Optimized, Tier::Naive] {
        let cm = std::sync::Arc::new(translate(&m, tier).unwrap());
        let mut inst = Instance::new(
            cm,
            EngineConfig {
                tier,
                ..Default::default()
            },
        )
        .unwrap();
        let v = inst
            .call_complete("main", &[Value::I32(0)], &mut NullHost)
            .unwrap();
        assert_eq!(v, Some(160), "{tier:?}"); // 5 -> 10 -> ... -> 160
    }
}

#[test]
fn drop_of_pure_value_is_elided() {
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.extend([exec(i32c(42)), ret(Some(i32c(1)))]);
    let m = module_of(f);
    let opt = ops_of(&m, Tier::Optimized);
    assert!(
        opt.iter().all(|o| !matches!(o, Op::Drop)),
        "const+drop should be elided: {opt:?}"
    );
    let naive = ops_of(&m, Tier::Naive);
    assert!(naive.iter().any(|o| matches!(o, Op::Drop)));
}

#[test]
fn code_size_reporting_is_sane() {
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let i = f.local(ValType::I32);
    f.extend([
        for_loop(i, i32c(0), lt_s(local(i), i32c(10)), 1, vec![]),
        ret(Some(local(i))),
    ]);
    let m = module_of(f);
    let cm = translate(&m, Tier::Optimized).unwrap();
    let size = cm.code_size_bytes();
    assert!(size > 0 && size < 16 * 1024, "size = {size}");
    // Fusion makes the optimized code no longer than the naive code.
    let naive = translate(&m, Tier::Naive).unwrap();
    assert!(cm.funcs[0].code.len() <= naive.funcs[0].code.len());
}

#[test]
fn imported_function_calls_become_call_host() {
    let mut mb = ModuleBuilder::new("t");
    mb.memory(1, Some(1));
    let clock = mb.import_func("env", "clock_ns", &[], Some(ValType::I64));
    let mut f = FuncBuilder::new(&[], Some(ValType::I64));
    f.push(ret(Some(call(clock, vec![]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    let cm = translate(&m, Tier::Optimized).unwrap();
    assert_eq!(cm.host_funcs.len(), 1);
    assert_eq!(cm.host_funcs[0].name, "clock_ns");
    assert!(cm.funcs[0]
        .code
        .iter()
        .any(|o| matches!(o, Op::CallHost(0))));
}

#[test]
fn start_functions_are_rejected_with_a_clear_error() {
    use sledge_wasm::module::FuncBody;
    use sledge_wasm::types::FuncType;
    let mut m = Module::new();
    let t = m.push_type(FuncType::new(vec![], vec![]));
    let f = m.push_function(
        t,
        FuncBody::new(vec![], vec![sledge_wasm::instr::Instr::End]),
    );
    m.start = Some(f);
    match translate(&m, Tier::Optimized) {
        Err(awsm::TranslateError::Unsupported(msg)) => {
            assert!(msg.contains("start function"), "{msg}")
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn statically_dead_code_is_skipped_without_miscompiling() {
    // Hand-assembled: a block whose tail is unreachable junk after `br`,
    // including nested dead blocks — exercises the translator's skip logic.
    use sledge_wasm::instr::{BlockType, Instr};
    use sledge_wasm::module::{Export, FuncBody};
    use sledge_wasm::types::FuncType;
    let mut m = Module::new();
    let t = m.push_type(FuncType::new(vec![], vec![ValType::I32]));
    use Instr::*;
    let f = m.push_function(
        t,
        FuncBody::new(
            vec![],
            vec![
                Block(BlockType::Value(ValType::I32)),
                I32Const(7),
                Br(0),
                // Dead code follows, with nested structure:
                Block(BlockType::Empty),
                I32Const(1),
                Drop,
                Loop(BlockType::Empty),
                Br(0),
                End,
                End,
                I32Const(99),
                I32Add,
                End,
                End,
            ],
        ),
    );
    m.exports.push(Export::func("main", f));
    use awsm::{EngineConfig, Instance, NullHost};
    for tier in [Tier::Optimized, Tier::Naive] {
        let cm = std::sync::Arc::new(translate(&m, tier).unwrap());
        let mut inst = Instance::new(
            cm,
            EngineConfig {
                tier,
                ..Default::default()
            },
        )
        .unwrap();
        let v = inst.call_complete("main", &[], &mut NullHost).unwrap();
        assert_eq!(v, Some(7), "{tier:?}");
    }
}

#[test]
fn if_with_unreachable_then_arm_reaches_else() {
    use sledge_wasm::instr::{BlockType, Instr};
    use sledge_wasm::module::{Export, FuncBody};
    use sledge_wasm::types::FuncType;
    let mut m = Module::new();
    let t = m.push_type(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    use Instr::*;
    let f = m.push_function(
        t,
        FuncBody::new(
            vec![],
            vec![
                LocalGet(0),
                If(BlockType::Empty),
                I32Const(10),
                Return, // then-arm ends unreachable
                Else,
                I32Const(20),
                Return,
                End,
                Unreachable,
                End,
            ],
        ),
    );
    m.exports.push(Export::func("main", f));
    use awsm::{EngineConfig, Instance, NullHost, Value};
    for tier in [Tier::Optimized, Tier::Naive] {
        let cm = std::sync::Arc::new(translate(&m, tier).unwrap());
        let mut inst = Instance::new(
            cm,
            EngineConfig {
                tier,
                ..Default::default()
            },
        )
        .unwrap();
        let v = inst
            .call_complete("main", &[Value::I32(1)], &mut NullHost)
            .unwrap();
        assert_eq!(v, Some(10), "{tier:?} taken");
        let cm = std::sync::Arc::new(translate(&m, tier).unwrap());
        let mut inst = Instance::new(
            cm,
            EngineConfig {
                tier,
                ..Default::default()
            },
        )
        .unwrap();
        let v = inst
            .call_complete("main", &[Value::I32(0)], &mut NullHost)
            .unwrap();
        assert_eq!(v, Some(20), "{tier:?} not taken");
    }
}
