//! Effect-certificate tests: crafted modules whose static capability sets
//! and write footprints must over-approximate everything the interpreter
//! actually does at runtime, plus the reset-policy derivation and the
//! recycled≡fresh differential under partial (static-span / elided) resets.

use awsm::{
    translate, BoundsStrategy, EngineConfig, Host, HostImport, HostOutcome, Instance, LinearMemory,
    NullHost, ResetApplied, ResetPolicy, Severity, Tier, Value, WriteFootprint,
};
use sledge_guestc::dsl::*;
use sledge_guestc::{Expr, FuncBuilder, ModuleBuilder, Scalar};
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::sync::Arc;

/// Records every host-call index it services and returns the first argument.
struct RecordingHost {
    seen: Vec<u32>,
}

impl Host for RecordingHost {
    fn call(
        &mut self,
        idx: u32,
        _import: &HostImport,
        args: &[u64],
        _memory: &mut LinearMemory,
    ) -> HostOutcome {
        self.seen.push(idx);
        HostOutcome::Value(args.first().copied().unwrap_or(0))
    }
}

/// Static capability set of `main` as qualified import names.
fn static_hostcalls(m: &Module) -> Vec<String> {
    let cm = translate(m, Tier::Optimized).unwrap();
    let eff = cm.analysis.effects.as_ref().expect("certificate");
    let entry = cm.export("main").expect("main export");
    let (calls, _, _) = eff.entry_effect(entry).expect("entry effect");
    calls
        .iter()
        .map(|&h| eff.imports[h as usize].clone())
        .collect()
}

// -------------------------------------------------- capability soundness

#[test]
fn direct_host_call_appears_in_capability_set() {
    let mut mb = ModuleBuilder::new("direct");
    let sink = mb.import_func("env", "sink", &[ValType::I32], Some(ValType::I32));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(call(sink, vec![i32c(7)]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    assert_eq!(static_hostcalls(&mb.build().unwrap()), ["env::sink"]);
}

#[test]
fn transitive_host_call_appears_in_capability_set() {
    // main -> helper -> env::sink: the closure must cross local calls.
    let mut mb = ModuleBuilder::new("transitive");
    let sink = mb.import_func("env", "sink", &[ValType::I32], Some(ValType::I32));
    let mut h = FuncBuilder::new(&[], Some(ValType::I32));
    h.push(ret(Some(call(sink, vec![i32c(1)]))));
    let helper = mb.add_func("helper", h);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(call(helper, vec![]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    assert_eq!(static_hostcalls(&mb.build().unwrap()), ["env::sink"]);
}

#[test]
fn call_indirect_over_approximates_table_host_imports() {
    // The table holds a host import and a local function of the same type;
    // `main` dispatches through a *dynamic* index. The analysis cannot know
    // which target runs, so the certificate must include the host import.
    let mut mb = ModuleBuilder::new("indirect");
    let sink = mb.import_func("env", "sink", &[ValType::I32], Some(ValType::I32));
    let sig = mb.signature(&[ValType::I32], Some(ValType::I32));
    let mut l = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let a = l.arg(0);
    l.push(ret(Some(add(local(a), i32c(1)))));
    let localf = mb.add_func("localf", l);
    mb.table(&[sink, localf]);
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let which = f.arg(0);
    f.push(ret(Some(call_indirect(&sig, local(which), vec![i32c(40)]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_eq!(static_hostcalls(&m), ["env::sink"]);

    // And the over-approximation is honest: running either branch never
    // calls anything outside the static set.
    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let eff = cm.analysis.effects.clone().expect("certificate");
    let entry = cm.export("main").unwrap();
    let (static_set, _, _) = eff.entry_effect(entry).unwrap();
    for which in [0i32, 1] {
        let mut host = RecordingHost { seen: Vec::new() };
        let mut inst = Instance::new(Arc::clone(&cm), EngineConfig::default()).unwrap();
        inst.call_complete("main", &[Value::I32(which)], &mut host)
            .unwrap();
        for idx in &host.seen {
            assert!(
                static_set.contains(idx),
                "runtime called import {idx} outside static set {static_set:?}"
            );
        }
    }
}

#[test]
fn runtime_host_calls_subset_of_static_set() {
    // Both imports are declared; only one is reachable from main. The
    // certificate must include the reachable one, and the recorded calls
    // must stay inside it.
    let mut mb = ModuleBuilder::new("subset");
    let used = mb.import_func("env", "used", &[ValType::I32], Some(ValType::I32));
    let unused = mb.import_func("env", "unused", &[ValType::I32], Some(ValType::I32));
    let mut dead = FuncBuilder::new(&[], Some(ValType::I32));
    dead.push(ret(Some(call(unused, vec![i32c(0)]))));
    mb.add_func("dead", dead);
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(call(used, vec![i32c(5)]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();
    assert_eq!(static_hostcalls(&m), ["env::used"]);

    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let eff = cm.analysis.effects.clone().unwrap();
    let entry = cm.export("main").unwrap();
    let (static_set, _, _) = eff.entry_effect(entry).unwrap();
    let mut host = RecordingHost { seen: Vec::new() };
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    let got = inst.call_complete("main", &[], &mut host).unwrap();
    assert_eq!(got, Some(5));
    assert!(!host.seen.is_empty(), "main must actually reach the host");
    for idx in &host.seen {
        assert!(static_set.contains(idx));
    }
}

// ------------------------------------------------- footprint soundness

#[test]
fn footprint_covers_runtime_high_water_mark() {
    // Constant-address stores at two disjoint spots: the certified span must
    // cover both, and the runtime high-water mark can never pass its end
    // (the template image itself is accounted separately).
    let mut mb = ModuleBuilder::new("span");
    mb.memory(1, Some(1));
    mb.data(16, b"abc".to_vec());
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(store(Scalar::I32, i32c(0x100), 0, i32c(1)));
    f.push(store(Scalar::I32, i32c(0x180), 0, i32c(2)));
    f.push(ret(Some(load(Scalar::I32, i32c(0x180), 0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let eff = cm.analysis.effects.clone().expect("certificate");
    let entry = cm.export("main").unwrap();
    let (_, footprint, may_grow) = eff.entry_effect(entry).unwrap();
    assert!(!may_grow);
    let WriteFootprint::Span { lo, hi } = footprint else {
        panic!("expected bounded span, got {footprint}");
    };
    assert!(lo <= 0x100 && hi >= 0x184, "span [{lo}, {hi})");

    let template_len = cm.template.image().len() as u64;
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    let got = inst.call_complete("main", &[], &mut NullHost).unwrap();
    assert_eq!(got, Some(2));
    let hwm = inst.memory().high_water_mark() as u64;
    assert!(
        hwm <= hi.max(template_len),
        "runtime hwm {hwm} escaped static bound {hi} (template {template_len})"
    );
}

#[test]
fn pure_entry_is_certified_and_memory_grow_defeats_it() {
    // No stores, no grow: Pure, footprint Empty, and the module-level policy
    // derivation elides the reset.
    let mut mb = ModuleBuilder::new("pure");
    mb.memory(1, Some(2));
    mb.data(0, b"seed".to_vec());
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    f.push(ret(Some(add(load(Scalar::I32, i32c(0), 0), local(x)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    let eff = cm.analysis.effects.as_ref().unwrap();
    let entry = cm.export("main").unwrap();
    let (_, footprint, may_grow) = eff.entry_effect(entry).unwrap();
    assert_eq!(footprint, WriteFootprint::Empty);
    assert!(!may_grow);
    assert_eq!(cm.reset_policy("main"), ResetPolicy::Elide);

    // Same shape plus a memory.grow: no longer elidable, hwm reset rules.
    let mut mb = ModuleBuilder::new("grower");
    mb.memory(1, Some(4));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let g = f.local(ValType::I32);
    f.push(set(g, Expr::MemoryGrow(Box::new(i32c(1)))));
    f.push(ret(Some(local(g))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert_eq!(cm.reset_policy("main"), ResetPolicy::HighWater);
}

#[test]
fn span_policy_derivation_requires_room_and_gap() {
    // Stores fit inside the initial page and start past the template: the
    // derivation picks a static span.
    let mut mb = ModuleBuilder::new("span");
    mb.memory(1, Some(1));
    mb.data(16, b"abc".to_vec());
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(store(Scalar::I32, i32c(0x8000), 0, i32c(9)));
    f.push(ret(Some(i32c(0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    match cm.reset_policy("main") {
        ResetPolicy::StaticSpan { lo, hi } => {
            assert!(lo <= 0x8000 && hi >= 0x8004, "[{lo}, {hi})");
            assert!(hi <= 65536, "span must fit the initial page");
        }
        other => panic!("expected StaticSpan, got {other:?}"),
    }

    // A store *into* the template span defeats the gap requirement: a
    // static reset that only zeroes the tail could never restore it.
    let mut mb = ModuleBuilder::new("clobber");
    mb.memory(1, Some(1));
    mb.data(16, b"abc".to_vec());
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(store(Scalar::U8, i32c(17), 0, i32c(0xFF)));
    f.push(ret(Some(i32c(0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert_eq!(cm.reset_policy("main"), ResetPolicy::HighWater);
}

// ------------------------------------- recycled ≡ fresh under partial reset

#[test]
fn static_span_reset_matches_fresh_exactly() {
    // The scratch writer dirties its certified span; a StaticSpan reset must
    // leave the instance indistinguishable from a fresh one, replay after
    // replay, under every bounds strategy the policy can ride with.
    let mut mb = ModuleBuilder::new("scratch");
    mb.memory(1, Some(1));
    mb.data(32, b"template!".to_vec());
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    f.push(store(Scalar::I32, i32c(0x8000), 0, local(x)));
    f.push(store(Scalar::I32, i32c(0x8100), 0, mul(local(x), i32c(3))));
    f.push(ret(Some(add(
        load(Scalar::I32, i32c(0x8000), 0),
        load(Scalar::I32, i32c(0x8100), 0),
    ))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    for bounds in [BoundsStrategy::Software, BoundsStrategy::GuardRegion] {
        let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
        let policy = cm.reset_policy("main");
        assert!(
            matches!(policy, ResetPolicy::StaticSpan { .. }),
            "{policy:?}"
        );
        let cfg = EngineConfig {
            bounds,
            ..Default::default()
        };

        let mut fresh = Instance::new(Arc::clone(&cm), cfg).unwrap();
        let want = fresh
            .call_complete("main", &[Value::I32(11)], &mut NullHost)
            .unwrap();
        assert_eq!(want, Some(44));
        let want_fuel = fresh.fuel_used();

        let mut recycled = Instance::new(cm, cfg).unwrap();
        for round in 0..20 {
            recycled
                .call_complete("main", &[Value::I32(round + 100)], &mut NullHost)
                .unwrap();
            let applied = recycled.reset_with(policy).unwrap();
            assert_eq!(applied, ResetApplied::Static, "round {round}");
            let got = recycled
                .call_complete("main", &[Value::I32(11)], &mut NullHost)
                .unwrap();
            assert_eq!(got, want, "round {round} bounds={bounds:?}");
            assert_eq!(recycled.fuel_used(), want_fuel, "round {round}");
            assert_eq!(
                recycled.memory().read_bytes(32, 9).unwrap(),
                b"template!",
                "round {round}"
            );
            recycled.reset_with(policy).unwrap();
        }
    }
}

#[test]
fn elided_reset_matches_fresh_exactly() {
    let mut mb = ModuleBuilder::new("pure");
    mb.memory(1, Some(2));
    mb.data(0, b"\x2a\x00\x00\x00".to_vec());
    let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
    let x = f.arg(0);
    f.push(ret(Some(add(load(Scalar::I32, i32c(0), 0), local(x)))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let policy = cm.reset_policy("main");
    assert_eq!(policy, ResetPolicy::Elide);

    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    let want = inst
        .call_complete("main", &[Value::I32(8)], &mut NullHost)
        .unwrap();
    assert_eq!(want, Some(50));
    for round in 0..20 {
        let applied = inst.reset_with(policy).unwrap();
        assert_eq!(applied, ResetApplied::Elided, "round {round}");
        let got = inst
            .call_complete("main", &[Value::I32(8)], &mut NullHost)
            .unwrap();
        assert_eq!(got, want, "round {round}");
    }
}

#[test]
fn host_dirty_memory_downgrades_partial_reset_to_full() {
    // A host-side write below the certified span invalidates the static
    // reset; `reset_with` must notice and fall back to a full reset rather
    // than leak the dirt into the next tenant.
    let mut mb = ModuleBuilder::new("scratch");
    mb.memory(1, Some(1));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(store(Scalar::I32, i32c(0x8000), 0, i32c(7)));
    f.push(ret(Some(i32c(0))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let m = mb.build().unwrap();

    let cm = Arc::new(translate(&m, Tier::Optimized).unwrap());
    let policy = cm.reset_policy("main");
    assert!(matches!(policy, ResetPolicy::StaticSpan { .. }));
    let mut inst = Instance::new(cm, EngineConfig::default()).unwrap();
    inst.call_complete("main", &[], &mut NullHost).unwrap();
    inst.memory_mut().write_bytes(0x40, b"dirty").unwrap();
    let applied = inst.reset_with(policy).unwrap();
    assert_eq!(applied, ResetApplied::Full, "host write forces full reset");
    assert_eq!(inst.memory().read_bytes(0x40, 5).unwrap(), &[0u8; 5]);
}

// ------------------------------------------------------ effect-aware lints

#[test]
fn dead_host_import_lints() {
    let mut mb = ModuleBuilder::new("deadimp");
    let used = mb.import_func("env", "used", &[ValType::I32], Some(ValType::I32));
    mb.import_func("env", "never", &[ValType::I32], Some(ValType::I32));
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    f.push(ret(Some(call(used, vec![i32c(1)]))));
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    let cm = translate(&mb.build().unwrap(), Tier::Optimized).unwrap();
    assert!(
        cm.analysis
            .with_severity(Severity::Warn)
            .any(|d| d.message.contains("env::never")),
        "{:?}",
        cm.analysis.diagnostics
    );
    assert!(
        !cm.analysis
            .diagnostics
            .iter()
            .any(|d| d.message.contains("env::used")),
        "{:?}",
        cm.analysis.diagnostics
    );
}
