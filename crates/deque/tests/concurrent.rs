//! Concurrency tests: every pushed item is consumed exactly once regardless
//! of how owner pops and thief steals interleave.

use sledge_deque::{deque, WorkStealingDeque};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

#[test]
fn exactly_once_under_contention() {
    const ITEMS: usize = 20_000;
    const THIEVES: usize = 4;

    let (w, s) = deque::<usize>();
    let done = Arc::new(AtomicBool::new(false));
    let stolen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for _ in 0..THIEVES {
        let s = s.clone();
        let done = Arc::clone(&done);
        let stolen = Arc::clone(&stolen);
        handles.push(thread::spawn(move || {
            let mut mine = Vec::new();
            loop {
                match s.steal() {
                    Some(v) => mine.push(v),
                    None => {
                        if done.load(Ordering::Acquire) && s.is_empty() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            stolen.lock().unwrap().extend(mine);
        }));
    }

    let mut popped = Vec::new();
    for i in 0..ITEMS {
        w.push(i);
        // Interleave pops to stress the bottom/top race.
        if i % 3 == 0 {
            if let Some(v) = w.pop() {
                popped.push(v);
            }
        }
    }
    while let Some(v) = w.pop() {
        popped.push(v);
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }

    let stolen = stolen.lock().unwrap();
    let mut all: Vec<usize> = popped.iter().chain(stolen.iter()).copied().collect();
    assert_eq!(all.len(), ITEMS, "lost or duplicated items");
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), ITEMS, "duplicated items");
    assert_eq!(*all.last().unwrap(), ITEMS - 1);
}

#[test]
fn single_element_race_never_duplicates() {
    // The classic Chase-Lev hazard: one element, owner pops while thief
    // steals. Repeat many rounds; exactly one side must win each round.
    const ROUNDS: usize = 30_000;
    let d = Arc::new(WorkStealingDeque::<usize>::new());
    let barrier = Arc::new(std::sync::Barrier::new(2));

    let thief = {
        let d = Arc::clone(&d);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            let mut got = Vec::new();
            for r in 0..ROUNDS {
                barrier.wait();
                if let Some(v) = d.steal() {
                    got.push((r, v));
                }
                barrier.wait();
            }
            got
        })
    };

    let mut owner_got = Vec::new();
    for r in 0..ROUNDS {
        d.push(r);
        barrier.wait();
        if let Some(v) = d.pop() {
            owner_got.push((r, v));
        }
        barrier.wait();
        assert!(d.is_empty(), "round {r} left residue");
    }
    let thief_got = thief.join().unwrap();

    let owner: HashSet<usize> = owner_got.iter().map(|(_, v)| *v).collect();
    let stolen: HashSet<usize> = thief_got.iter().map(|(_, v)| *v).collect();
    assert!(owner.is_disjoint(&stolen), "an element was consumed twice");
    assert_eq!(owner.len() + stolen.len(), ROUNDS, "an element was lost");
}

#[test]
fn many_producur_rounds_with_growth() {
    // Repeated fill/drain cycles across growth boundaries.
    let (w, s) = deque::<u64>();
    let mut next = 0u64;
    let mut total_consumed = 0u64;
    for round in 0..50 {
        let n = 1 + (round * 37) % 400;
        for _ in 0..n {
            w.push(next);
            next += 1;
        }
        let mut consumed = 0;
        loop {
            let got = if consumed % 2 == 0 {
                s.steal()
            } else {
                w.pop()
            };
            match got {
                Some(_) => consumed += 1,
                None => break,
            }
        }
        total_consumed += consumed;
    }
    assert_eq!(total_consumed, next);
}
