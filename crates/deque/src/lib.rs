//! A lock-free Chase–Lev work-stealing deque, implemented from scratch after
//! the algorithms in Chase & Lev (SPAA '05) and Lê et al. (PPoPP '13) — the
//! two papers the Sledge runtime cites for its load-balancing structure.
//!
//! The owner thread pushes and pops at the *bottom*; any number of thief
//! threads steal from the *top*. In Sledge, the listener core owns the
//! global deque and pushes freshly instantiated sandboxes; worker cores
//! steal them (work-conservation without a global lock).
//!
//! Values are stored as boxed pointers so arbitrary `T: Send` payloads are
//! supported without exposing uninitialized-memory hazards to users.
//!
//! # Examples
//!
//! ```
//! use sledge_deque::WorkStealingDeque;
//! use std::sync::Arc;
//!
//! let dq = Arc::new(WorkStealingDeque::new());
//! dq.push(1);
//! dq.push(2);
//! let thief = Arc::clone(&dq);
//! let stolen = std::thread::spawn(move || thief.steal()).join().unwrap();
//! assert!(stolen.is_some());
//! assert!(dq.pop().is_some());
//! assert_eq!(dq.pop(), None);
//! ```
//!
//! # Safety model
//!
//! `push`/`pop` must only be called by one thread at a time (the owner);
//! this is enforced at compile time by requiring `&self` but documented as
//! the single-owner protocol — the [`Worker`]/[`Stealer`] split below makes
//! it impossible to misuse.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Circular array of raw pointers with power-of-two capacity.
struct Buffer<T> {
    ptr: Box<[AtomicPtr<T>]>,
    cap: usize,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        let mut v = Vec::with_capacity(cap);
        for _ in 0..cap {
            v.push(AtomicPtr::new(ptr::null_mut()));
        }
        Buffer {
            ptr: v.into_boxed_slice(),
            cap,
        }
    }

    #[inline]
    fn slot(&self, i: isize) -> &AtomicPtr<T> {
        &self.ptr[(i as usize) & (self.cap - 1)]
    }
}

/// The shared deque state.
struct Inner<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    /// Current buffer; replaced on growth. Old buffers are kept alive until
    /// drop of the deque (epoch-free memory management: we leak at most
    /// O(log n) retired buffers per deque, reclaimed in `Drop`).
    buffer: AtomicPtr<Buffer<T>>,
    retired: RetiredStack<T>,
}

/// A tiny lock-free Treiber stack of retired buffers (reclaimed on drop).
struct RetiredStack<T> {
    head: AtomicPtr<RetiredNode<T>>,
}

struct RetiredNode<T> {
    buf: *mut Buffer<T>,
    next: *mut RetiredNode<T>,
}

impl<T> RetiredStack<T> {
    fn new() -> Self {
        RetiredStack {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    fn retire(&self, buf: *mut Buffer<T>) {
        let node = Box::into_raw(Box::new(RetiredNode {
            buf,
            next: ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: node was just allocated and is uniquely owned here.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// A work-stealing deque usable directly through a shared reference.
///
/// This is the ergonomic single-type facade; the [`Worker`]/[`Stealer`] pair
/// is the statically-checked variant. When using this type directly, `push`
/// and `pop` must follow the single-owner protocol (one pushing/popping
/// thread at a time); `steal` is safe from any thread. The Sledge runtime
/// uses the split types.
pub struct WorkStealingDeque<T> {
    inner: Inner<T>,
}

// SAFETY: the deque transfers ownership of boxed `T`s between threads; all
// shared state is atomic.
unsafe impl<T: Send> Send for WorkStealingDeque<T> {}
unsafe impl<T: Send> Sync for WorkStealingDeque<T> {}

impl<T: Send> Default for WorkStealingDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> WorkStealingDeque<T> {
    /// Create an empty deque with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// Create an empty deque with at least `cap` slots pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        let buf = Box::into_raw(Box::new(Buffer::<T>::new(cap)));
        WorkStealingDeque {
            inner: Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(buf),
                retired: RetiredStack::new(),
            },
        }
    }

    /// Push a value at the bottom (owner only).
    pub fn push(&self, value: T) {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: buffer pointer is always valid until deque drop.
        let size = b - t;
        if size >= unsafe { (*buf).cap } as isize - 1 {
            buf = self.grow(b, t, buf);
        }
        let boxed = Box::into_raw(Box::new(value));
        unsafe { (*buf).slot(b).store(boxed, Ordering::Relaxed) };
        // Make the element visible to thieves before publishing bottom.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        // SAFETY: old buffer valid; only the owner grows.
        let old_ref = unsafe { &*old };
        let new = Box::into_raw(Box::new(Buffer::<T>::new(old_ref.cap * 2)));
        for i in t..b {
            let v = old_ref.slot(i).load(Ordering::Relaxed);
            unsafe { (*new).slot(i).store(v, Ordering::Relaxed) };
        }
        self.inner.buffer.store(new, Ordering::Release);
        self.inner.retired.retire(old);
        new
    }

    /// Pop from the bottom (owner only). LIFO with respect to `push`.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence of the canonical algorithm, expressed via a
        // SeqCst RMW-free sequence: use a full fence.
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        let size = b - t;
        if size < 0 {
            // Empty: restore.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: slot at b was published by a prior push.
        let p = unsafe { (*buf).slot(b).load(Ordering::Relaxed) };
        if size > 0 {
            // More than one element: uncontended.
            return Some(unsafe { *Box::from_raw(p) });
        }
        // Exactly one element: race with thieves via CAS on top.
        let won = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        inner.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            Some(unsafe { *Box::from_raw(p) })
        } else {
            None
        }
    }

    /// Steal from the top (any thread). FIFO with respect to `push`.
    pub fn steal(&self) -> Option<T> {
        let inner = &self.inner;
        loop {
            let t = inner.top.load(Ordering::Acquire);
            std::sync::atomic::fence(Ordering::SeqCst);
            let b = inner.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let buf = inner.buffer.load(Ordering::Acquire);
            // SAFETY: buffer valid; slot published before bottom.
            let p = unsafe { (*buf).slot(t).load(Ordering::Relaxed) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(unsafe { *Box::from_raw(p) });
            }
            // Lost the race: retry.
            std::hint::spin_loop();
        }
    }

    /// Approximate number of queued items (may race).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque appears empty (may race).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for WorkStealingDeque<T> {
    fn drop(&mut self) {
        // Drain remaining elements.
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        let buf = self.inner.buffer.load(Ordering::Relaxed);
        for i in t..b {
            // SAFETY: exclusive access in drop; slots t..b are live.
            unsafe {
                let p = (*buf).slot(i).load(Ordering::Relaxed);
                drop(Box::from_raw(p));
            }
        }
        // SAFETY: exclusive access; free current and retired buffers.
        unsafe {
            drop(Box::from_raw(buf));
            let mut node = self.inner.retired.head.load(Ordering::Relaxed);
            while !node.is_null() {
                let n = Box::from_raw(node);
                drop(Box::from_raw(n.buf));
                node = n.next;
            }
        }
    }
}

/// Owner handle: can push and pop. Not `Clone`, so the single-owner
/// protocol is statically enforced.
pub struct Worker<T> {
    deque: Arc<WorkStealingDeque<T>>,
    _not_sync: PhantomData<*mut ()>,
}

// SAFETY: Worker is the unique owner handle; moving it between threads is
// fine, concurrent use from two threads is prevented by !Clone + !Sync.
unsafe impl<T: Send> Send for Worker<T> {}

/// Thief handle: can only steal. Freely cloneable across threads.
pub struct Stealer<T> {
    deque: Arc<WorkStealingDeque<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

/// Create a connected [`Worker`]/[`Stealer`] pair.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let d = Arc::new(WorkStealingDeque::new());
    (
        Worker {
            deque: Arc::clone(&d),
            _not_sync: PhantomData,
        },
        Stealer { deque: d },
    )
}

impl<T: Send> Worker<T> {
    /// Push a value at the bottom.
    pub fn push(&self, value: T) {
        self.deque.push(value);
    }

    /// Pop the most recently pushed value.
    pub fn pop(&self) -> Option<T> {
        self.deque.pop()
    }

    /// Approximate length.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// A new thief handle.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

impl<T: Send> Stealer<T> {
    /// Steal the oldest value.
    pub fn steal(&self) -> Option<T> {
        self.deque.steal()
    }

    /// Approximate length.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// Whether the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }
}

// Keep the unused-import lint honest: AtomicUsize is used in tests only.
#[allow(unused)]
fn _assert_traits() {
    fn send<T: Send>() {}
    send::<WorkStealingDeque<Vec<u8>>>();
    send::<Worker<Vec<u8>>>();
    send::<Stealer<Vec<u8>>>();
    let _ = AtomicUsize::new(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = WorkStealingDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Some(1)); // oldest
        assert_eq!(d.pop(), Some(3)); // newest
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn growth_preserves_elements() {
        let d = WorkStealingDeque::with_capacity(2);
        for i in 0..1000 {
            d.push(i);
        }
        assert_eq!(d.len(), 1000);
        let mut seen = Vec::new();
        while let Some(v) = d.steal() {
            seen.push(v);
        }
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn boxed_payloads_are_dropped_on_deque_drop() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let d = WorkStealingDeque::new();
            for _ in 0..10 {
                d.push(D);
            }
            drop(d.pop());
            drop(d.steal());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn worker_stealer_split() {
        let (w, s) = deque::<u32>();
        w.push(5);
        let s2 = s.clone();
        assert_eq!(s2.steal(), Some(5));
        assert!(w.pop().is_none());
        assert!(w.is_empty() && s.is_empty());
    }
}
