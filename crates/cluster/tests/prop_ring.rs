//! Property tests for the consistent-hash ring: the minimal-disruption
//! guarantee (membership change remaps only the changed node's keys, and
//! not many of them), seeded determinism, and replica-set shape — over
//! arbitrary memberships, seeds, and key sets.

use proptest::prelude::*;
use sledge_cluster::HashRing;
use std::collections::HashMap;

/// 2..=12 distinct node names.
fn members() -> impl Strategy<Value = Vec<String>> {
    (2usize..=12).prop_map(|n| (0..n).map(|i| format!("node-{i}")).collect())
}

fn ring_of(seed: u64, vnodes: usize, names: &[String]) -> HashRing {
    let mut r = HashRing::new(seed, vnodes);
    for n in names {
        r.add(n);
    }
    r
}

fn keys(count: usize, salt: u64) -> Vec<String> {
    (0..count).map(|i| format!("/fn/{salt:x}-{i}")).collect()
}

proptest! {
    /// Removing one of N nodes remaps only the keys that node owned —
    /// every surviving node keeps every key it had — and the remapped
    /// share stays in the ≈K/N ballpark instead of reshuffling the world.
    #[test]
    fn removal_remaps_about_one_nth_of_keys(
        names in members(),
        seed in any::<u64>(),
        victim_pick in any::<prop::sample::Index>(),
        salt in any::<u64>(),
    ) {
        let n = names.len();
        let before = ring_of(seed, 64, &names);
        let ks = keys(600, salt);
        let owners: HashMap<&String, String> = ks
            .iter()
            .map(|k| (k, before.lookup_name(k).unwrap().to_string()))
            .collect();

        let victim = &names[victim_pick.index(n)];
        let mut after = before.clone();
        prop_assert!(after.remove(victim));

        let mut remapped = 0usize;
        for k in &ks {
            let was = &owners[k];
            let now = after.lookup_name(k).unwrap();
            if was == victim {
                remapped += 1;
                prop_assert_ne!(now, victim.as_str());
            } else {
                prop_assert_eq!(
                    now, was.as_str(),
                    "key {} moved between surviving nodes", k
                );
            }
        }
        // The removed node owned ≈ K/N keys; allow a wide vnode-variance
        // band (×3 either way) but reject wholesale reshuffles.
        let expect = ks.len() / n;
        prop_assert!(
            remapped <= expect * 3 + 30,
            "{remapped} of {} keys remapped for 1/{n} membership change",
            ks.len()
        );
    }

    /// A joining node only steals keys — no key moves between two nodes
    /// that were both present before the join.
    #[test]
    fn addition_only_steals_for_the_new_node(
        names in members(),
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let before = ring_of(seed, 64, &names);
        let mut after = before.clone();
        after.add("joiner");
        for k in keys(400, salt) {
            let was = before.lookup_name(&k).unwrap().to_string();
            let now = after.lookup_name(&k).unwrap();
            if now != was {
                prop_assert_eq!(now, "joiner", "key {} moved between old nodes", k);
            }
        }
    }

    /// Placement is a pure function of (seed, vnodes, membership): two
    /// independently built rings agree on every key, regardless of the
    /// order nodes were added in.
    #[test]
    fn seeded_lookup_is_deterministic_and_order_free(
        names in members(),
        seed in any::<u64>(),
        vnodes in 1usize..=128,
        rot in any::<prop::sample::Index>(),
        salt in any::<u64>(),
    ) {
        let a = ring_of(seed, vnodes, &names);
        let mut shuffled = names.clone();
        shuffled.rotate_left(rot.index(names.len()));
        let b = ring_of(seed, vnodes, &shuffled);
        for k in keys(200, salt) {
            prop_assert_eq!(a.lookup_name(&k), b.lookup_name(&k), "key {}", k);
        }
    }

    /// Replica sets are the right length, duplicate-free, owner-first, and
    /// a prefix-consistent extension of smaller replica sets (so failover
    /// order never depends on how many replicas the caller asked for).
    #[test]
    fn replica_sets_are_distinct_owner_first_prefix_consistent(
        names in members(),
        seed in any::<u64>(),
        want in 1usize..=14,
        salt in any::<u64>(),
    ) {
        let r = ring_of(seed, 64, &names);
        for k in keys(100, salt) {
            let reps = r.replicas(&k, want);
            prop_assert_eq!(reps.len(), want.min(names.len()));
            prop_assert_eq!(Some(reps[0]), r.lookup(&k), "owner must lead for {}", k);
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), reps.len(), "duplicate replica for {}", k);
            if want > 1 {
                let shorter = r.replicas(&k, want - 1);
                prop_assert_eq!(&reps[..shorter.len()], &shorter[..], "prefix broke for {}", k);
            }
        }
    }
}
