//! End-to-end cluster tests: a real `Router` over in-process `sledged`
//! runtimes — certificate-carrying distribution, ring routing, and the
//! chaos case: a node killed mid-stream with exactly-one-completion
//! preserved through failover.

use awsm::{encode_artifact, translate_with, Tier, TranslateOptions};
use sledge_cluster::{ingest_frame, Router, RouterConfig};
use sledge_core::{Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_http::HttpClient;
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::net::SocketAddr;
use std::time::Duration;

/// Echo the request body.
fn echo_guest(name: &str) -> Module {
    let mut mb = ModuleBuilder::new(name);
    mb.memory(2, Some(64));
    let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    f.extend([
        set(n, call(req_len, vec![])),
        exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
        exec(call(resp_write, vec![i32c(0), local(n)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

fn artifact_for(module: &Module) -> Vec<u8> {
    let compiled = translate_with(module, Tier::Optimized, TranslateOptions::default()).unwrap();
    encode_artifact(&compiled)
}

fn boot_node() -> Runtime {
    Runtime::with_http(
        RuntimeConfig {
            workers: 2,
            admin_routes: true,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap()
}

/// Fast-reacting router config for tests.
fn test_config() -> RouterConfig {
    RouterConfig {
        replicas: 2,
        probe_interval: Duration::from_millis(50),
        breaker: sledge_cluster::BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(200),
        },
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_secs(5),
        ..Default::default()
    }
}

fn boot_cluster(n: usize) -> (Vec<Runtime>, Router) {
    let nodes: Vec<Runtime> = (0..n).map(|_| boot_node()).collect();
    let members: Vec<(String, SocketAddr)> = nodes
        .iter()
        .enumerate()
        .map(|(i, rt)| (format!("node-{i}"), rt.http_addr().unwrap()))
        .collect();
    let router = Router::start(test_config(), members, "127.0.0.1:0".parse().unwrap()).unwrap();
    (nodes, router)
}

#[test]
fn distribution_pushes_certified_artifact_to_every_node() {
    let (nodes, router) = boot_cluster(3);
    let pushes = router.distribute(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")));
    assert_eq!(pushes.len(), 3);
    for p in &pushes {
        assert!(p.result.is_ok(), "{}: {:?}", p.node, p.result);
    }
    // Every node re-validated the certificates on ingest (no fallback).
    for rt in &nodes {
        let reg = rt.registry_stats();
        assert_eq!(reg.modules_verified, 1);
        assert_eq!(reg.opt_fallbacks, 0);
    }
    assert_eq!(router.stats().modules_pushed, 3);

    // The module serves through the ring.
    let mut client = HttpClient::new(router.addr());
    let resp = client
        .request("POST", "/echo", &[], b"over the ring")
        .unwrap();
    assert_eq!(
        resp.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    assert_eq!(resp.body, b"over the ring");
    assert!(router.stats().routed >= 1);

    router.shutdown();
    for rt in nodes {
        rt.shutdown();
    }
}

#[test]
fn corrupt_artifact_rejected_by_nodes_while_ring_keeps_serving() {
    let (nodes, router) = boot_cluster(3);
    assert!(router
        .distribute(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")))
        .iter()
        .all(|p| p.result.is_ok()));

    // Tamper with the artifact: every node's ingest gate rejects it.
    let mut bad = artifact_for(&echo_guest("evil"));
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let pushes = router.distribute(r#"{"name": "evil"}"#, &bad);
    assert!(pushes.iter().all(|p| p.result.is_err()), "{pushes:?}");
    assert_eq!(router.stats().module_rejects, 3);
    for rt in &nodes {
        assert!(rt.function_by_name("evil").is_none());
    }

    // Rejection is control-plane only: invocations still flow.
    let mut client = HttpClient::new(router.addr());
    let resp = client
        .request("POST", "/echo", &[], b"still serving")
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"still serving");

    router.shutdown();
    for rt in nodes {
        rt.shutdown();
    }
}

#[test]
fn admin_push_through_router_endpoint() {
    let (nodes, router) = boot_cluster(2);
    let frame = ingest_frame(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")));
    let mut client = HttpClient::new(router.addr());
    let resp = client
        .request("POST", "/admin/modules", &[], &frame)
        .unwrap();
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    assert_eq!(resp.status, 200, "{body}");
    assert!(body.contains("\"accepted\":2"), "{body}");

    let resp = client
        .request("POST", "/echo", &[], b"pushed via router")
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"pushed via router");

    // Garbage frame is rejected at the router without bothering the nodes.
    let resp = client
        .request("POST", "/admin/modules", &[], b"xy")
        .unwrap();
    assert_eq!(resp.status, 400);

    router.shutdown();
    for rt in nodes {
        rt.shutdown();
    }
}

#[test]
fn router_metrics_and_stats_expose_ring_series() {
    let (nodes, router) = boot_cluster(3);
    assert!(router
        .distribute(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")))
        .iter()
        .all(|p| p.result.is_ok()));
    let mut client = HttpClient::new(router.addr());
    let resp = client.request("POST", "/echo", &[], b"x").unwrap();
    assert_eq!(resp.status, 200);

    let resp = client.request("GET", "/healthz", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"ok");

    let resp = client.request("GET", "/metrics", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8_lossy(&resp.body).into_owned();
    assert!(text.contains("sledge_ring_nodes 3"), "{text}");
    for series in [
        "sledge_ring_node_healthy{node=\"node-0\"}",
        "sledge_ring_node_hot_pool{node=\"node-1\"}",
        "sledge_ring_node_failures_total{node=\"node-2\"}",
        "sledge_ring_routed_total",
        "sledge_ring_retried_total",
        "sledge_ring_failed_over_total",
        "sledge_ring_steered_total",
        "sledge_ring_failed_total",
        "sledge_ring_modules_pushed_total 3",
        "sledge_ring_downstream_completed_total",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }

    let resp = client.request("GET", "/stats", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let doc = sledge_core::parse_json(&String::from_utf8_lossy(&resp.body)).unwrap();
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("routed"))
            .and_then(|r| r.as_u64()),
        Some(1)
    );

    // The probers aggregate downstream completion counts into the ring
    // metrics once the nodes' own /stats report the finished invocation.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client.request("GET", "/metrics", &[], b"").unwrap();
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        let done = text
            .lines()
            .find_map(|l| l.strip_prefix("sledge_ring_downstream_completed_total "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if done >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "downstream completion never aggregated:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    router.shutdown();
    for rt in nodes {
        rt.shutdown();
    }
}

#[test]
fn unknown_route_is_passed_through_not_failed_over() {
    let (nodes, router) = boot_cluster(2);
    let mut client = HttpClient::new(router.addr());
    // A 404 from the owning node is the function's business — the router
    // must relay it, not burn it as a node failure and retry elsewhere.
    let resp = client.request("POST", "/no-such-fn", &[], b"x").unwrap();
    assert_eq!(resp.status, 404);
    let s = router.stats();
    assert_eq!(s.failed_over, 0);
    assert_eq!(s.failed, 0);
    router.shutdown();
    for rt in nodes {
        rt.shutdown();
    }
}

/// The chaos case the ISSUE pins down: kill a node mid-stream and prove
/// every request completes exactly once — the killed node's keys fail over
/// to the next ring replica, nothing is lost, nothing is double-answered.
#[test]
fn chaos_node_kill_fails_over_with_exactly_one_completion() {
    let (mut nodes, router) = boot_cluster(3);
    assert!(router
        .distribute(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")))
        .iter()
        .all(|p| p.result.is_ok()));

    // Find which node owns /echo so the kill is guaranteed to hit the
    // serving replica, not a bystander.
    let owner = router.ring().lookup_name("/echo").unwrap().to_string();
    let owner_idx: usize = owner.strip_prefix("node-").unwrap().parse().unwrap();

    let mut client = HttpClient::new(router.addr());
    let total = 40usize;
    let mut completions = 0usize;
    for i in 0..total {
        if i == total / 2 {
            // SIGKILL-equivalent for an in-process node: tear the runtime
            // down mid-stream, listener socket and all.
            nodes.remove(owner_idx).shutdown();
        }
        let body = format!("req-{i}");
        let resp = client
            .request("POST", "/echo", &[], body.as_bytes())
            .unwrap_or_else(|e| panic!("request {i} died at the router: {e}"));
        // Exactly-one-completion: every request gets exactly one 200 and
        // it carries this request's unique body — no loss, no duplication,
        // no stale answer from the killed node.
        assert_eq!(
            resp.status,
            200,
            "request {i}: {:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert_eq!(
            resp.body,
            body.as_bytes(),
            "request {i} answered with wrong body"
        );
        completions += 1;
    }
    assert_eq!(completions, total);

    let s = router.stats();
    assert_eq!(s.routed as usize, total);
    assert_eq!(s.failed, 0, "no request may be lost to the kill");
    assert!(
        s.failed_over >= 1,
        "the killed owner's keys must have failed over: {s:?}"
    );

    // The prober notices the death and the ring metrics say so.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let resp = client.request("GET", "/metrics", &[], b"").unwrap();
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        if text.contains(&format!("sledge_ring_node_healthy{{node=\"{owner}\"}} 0")) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "prober never marked {owner} down:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // And the ring keeps serving without the dead node.
    let resp = client
        .request("POST", "/echo", &[], b"after the wake")
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"after the wake");

    router.shutdown();
    for rt in nodes {
        rt.shutdown();
    }
}
