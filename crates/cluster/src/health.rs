//! Per-node health: failure counters feeding a circuit breaker with the
//! same threshold/cooldown/half-open-probe discipline the runtime's
//! per-function breakers use, plus the prober's liveness and warm-pool
//! observations.

pub use sledge_core::BreakerConfig;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped: fast-skip this node until `until_ns` (epoch-relative).
    Open { until_ns: u64 },
    /// Cooldown elapsed and one probe request is in flight; its outcome
    /// decides between `Closed` and another `Open` round.
    HalfOpen,
}

/// One node's health, shared between the forwarders and the prober.
#[derive(Debug)]
pub struct NodeHealth {
    /// Last liveness verdict from the prober (`GET /healthz` == 200).
    /// Nodes start healthy so the ring serves before the first probe.
    healthy: AtomicBool,
    /// Whether the node's `/stats` last reported parked warm instances
    /// (`pool.size > 0`) — the locality-steering signal.
    hot_pool: AtomicBool,
    /// Consecutive request/probe failures (reset on any success).
    consecutive: AtomicU32,
    /// Lifetime failure count (exposed in the ring metrics).
    pub failures: AtomicU64,
    /// Lifetime probe count.
    pub probes: AtomicU64,
    /// Last `counters.completed` observed in the node's `/stats`, for the
    /// ring-level downstream aggregation.
    pub downstream_completed: AtomicU64,
    state: Mutex<BreakerState>,
}

impl Default for NodeHealth {
    fn default() -> Self {
        NodeHealth {
            healthy: AtomicBool::new(true),
            hot_pool: AtomicBool::new(false),
            consecutive: AtomicU32::new(0),
            failures: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            downstream_completed: AtomicU64::new(0),
            state: Mutex::new(BreakerState::Closed),
        }
    }
}

impl NodeHealth {
    /// Whether the last probe found the node serving.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Whether the node last reported a warm pool.
    pub fn is_hot(&self) -> bool {
        self.hot_pool.load(Ordering::Relaxed)
    }

    /// Prober verdicts.
    pub fn set_probed(&self, healthy: bool, hot_pool: bool) {
        self.healthy.store(healthy, Ordering::Relaxed);
        self.hot_pool.store(hot_pool, Ordering::Relaxed);
    }

    /// Consecutive failure count (diagnostics).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive.load(Ordering::Relaxed)
    }

    /// Breaker admission for one attempt at this node. `Ok(false)` is the
    /// normal closed-state pass, `Ok(true)` admits the single half-open
    /// probe, `Err(retry_after)` fast-skips a tripped node.
    pub fn admit(&self, now_ns: u64) -> Result<bool, Duration> {
        let mut st = self.state.lock().expect("breaker lock");
        match *st {
            BreakerState::Closed => Ok(false),
            BreakerState::Open { until_ns } if now_ns >= until_ns => {
                *st = BreakerState::HalfOpen;
                Ok(true)
            }
            BreakerState::Open { until_ns } => {
                Err(Duration::from_nanos(until_ns.saturating_sub(now_ns)))
            }
            // One probe at a time: concurrent attempts keep skipping until
            // the in-flight probe settles the state.
            BreakerState::HalfOpen => Err(Duration::from_millis(1)),
        }
    }

    /// A request (or probe) against this node succeeded: reset the failure
    /// streak and close the breaker.
    pub fn record_success(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
        *self.state.lock().expect("breaker lock") = BreakerState::Closed;
    }

    /// A request (or probe) against this node failed: bump the streak and
    /// trip the breaker at the configured threshold. A half-open probe
    /// failure re-opens immediately regardless of the streak.
    pub fn record_failure(&self, cfg: &BreakerConfig, now_ns: u64) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let streak = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        let mut st = self.state.lock().expect("breaker lock");
        let reopen = matches!(*st, BreakerState::HalfOpen) || streak >= cfg.threshold;
        if reopen {
            *st = BreakerState::Open {
                until_ns: now_ns + cfg.cooldown.as_nanos() as u64,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn trips_after_threshold_and_half_opens_after_cooldown() {
        let h = NodeHealth::default();
        assert_eq!(h.admit(0), Ok(false));
        h.record_failure(&cfg(), 0);
        h.record_failure(&cfg(), 0);
        assert_eq!(h.admit(0), Ok(false), "below threshold stays closed");
        h.record_failure(&cfg(), 0);
        let wait = h.admit(MS).unwrap_err();
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        // Cooldown elapsed: exactly one probe is admitted.
        assert_eq!(h.admit(101 * MS), Ok(true));
        assert!(h.admit(101 * MS).is_err(), "second probe must wait");
        // Probe success closes the breaker and resets the streak.
        h.record_success();
        assert_eq!(h.admit(102 * MS), Ok(false));
        assert_eq!(h.consecutive_failures(), 0);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let h = NodeHealth::default();
        for _ in 0..3 {
            h.record_failure(&cfg(), 0);
        }
        assert_eq!(h.admit(101 * MS), Ok(true));
        h.record_failure(&cfg(), 101 * MS);
        let wait = h.admit(102 * MS).unwrap_err();
        assert!(wait > Duration::from_millis(90), "reopened for {wait:?}");
        assert_eq!(h.failures.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn success_resets_the_streak() {
        let h = NodeHealth::default();
        h.record_failure(&cfg(), 0);
        h.record_failure(&cfg(), 0);
        h.record_success();
        h.record_failure(&cfg(), 0);
        h.record_failure(&cfg(), 0);
        assert_eq!(h.admit(0), Ok(false), "streak was reset by the success");
    }

    #[test]
    fn probe_observations_are_visible() {
        let h = NodeHealth::default();
        assert!(h.is_healthy(), "nodes start healthy");
        assert!(!h.is_hot());
        h.set_probed(false, true);
        assert!(!h.is_healthy());
        assert!(h.is_hot());
    }
}
