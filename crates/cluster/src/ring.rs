//! The consistent-hash ring: seeded virtual-node placement mapping request
//! keys onto cluster nodes, with distinct-node replica ordering for
//! failover.
//!
//! Classic Karger-style construction: each node contributes `vnodes`
//! points on a 64-bit ring; a key is owned by the first point clockwise
//! from its hash. Removing a node removes only its own points, so only
//! keys it owned are remapped (≈ K/N of them) — the property the
//! ring proptests pin down exactly.

/// FNV-1a 64-bit — the same dependency-free hash the artifact checksum
/// uses, reimplemented here so the ring stands alone.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: cheap avalanche so the seed and the vnode index
/// perturb every output bit (bare FNV of short strings clusters badly).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Default virtual nodes per physical node. Enough to keep the per-node
/// load spread within a few percent at small cluster sizes without making
/// ring rebuilds noticeable.
pub const DEFAULT_VNODES: usize = 64;

/// A seeded consistent-hash ring over named nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    nodes: Vec<String>,
    /// `(point hash, node index)` sorted by hash; rebuilt on membership
    /// change (mutation is a control-plane event, lookup is the hot path).
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Empty ring. The same `(seed, vnodes, membership)` always produces
    /// the same placement — placement is part of the cluster's contract,
    /// not an accident of insertion order.
    pub fn new(seed: u64, vnodes: usize) -> HashRing {
        HashRing {
            seed,
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Ring with [`DEFAULT_VNODES`] virtual nodes.
    pub fn with_seed(seed: u64) -> HashRing {
        HashRing::new(seed, DEFAULT_VNODES)
    }

    /// Add a node; returns its index (stable until a removal). Adding an
    /// already-present name is a no-op returning the existing index.
    pub fn add(&mut self, name: &str) -> usize {
        if let Some(i) = self.nodes.iter().position(|n| n == name) {
            return i;
        }
        self.nodes.push(name.to_string());
        self.rebuild();
        self.nodes.len() - 1
    }

    /// Remove a node by name; returns whether it was present. Indices of
    /// later nodes shift down — identify nodes by name across mutations.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(i) = self.nodes.iter().position(|n| n == name) else {
            return false;
        };
        self.nodes.remove(i);
        self.rebuild();
        true
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (i, name) in self.nodes.iter().enumerate() {
            let base = self.seed ^ fnv1a(name.as_bytes());
            for v in 0..self.vnodes {
                self.points.push((mix(base ^ ((v as u64) << 32)), i as u32));
            }
        }
        self.points.sort_unstable();
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node names in index order.
    pub fn node_names(&self) -> &[String] {
        &self.nodes
    }

    /// Name of the node at `index`.
    pub fn name_of(&self, index: usize) -> Option<&str> {
        self.nodes.get(index).map(String::as_str)
    }

    fn key_point(&self, key: &str) -> u64 {
        mix(self.seed ^ fnv1a(key.as_bytes()))
    }

    /// Index of the node owning `key` (the first ring point clockwise from
    /// the key's hash).
    pub fn lookup(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = self.key_point(key);
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.points[at % self.points.len()];
        Some(idx as usize)
    }

    /// Name of the node owning `key`.
    pub fn lookup_name(&self, key: &str) -> Option<&str> {
        self.lookup(key).and_then(|i| self.name_of(i))
    }

    /// The first `n` *distinct* nodes clockwise from `key`: the owner
    /// first, then each failover replica in deterministic ring order.
    /// Shorter than `n` only when the ring has fewer nodes.
    pub fn replicas(&self, key: &str, n: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n.min(self.nodes.len()));
        if self.points.is_empty() || n == 0 {
            return out;
        }
        let h = self.key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for off in 0..self.points.len() {
            let (_, idx) = self.points[(start + off) % self.points.len()];
            let idx = idx as usize;
            if !out.contains(&idx) {
                out.push(idx);
                if out.len() == n || out.len() == self.nodes.len() {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring_of(seed: u64, names: &[&str]) -> HashRing {
        let mut r = HashRing::with_seed(seed);
        for n in names {
            r.add(n);
        }
        r
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("/fn/key-{i}")).collect()
    }

    #[test]
    fn seeded_lookup_is_deterministic() {
        let a = ring_of(42, &["alpha", "beta", "gamma"]);
        let b = ring_of(42, &["alpha", "beta", "gamma"]);
        let other = ring_of(43, &["alpha", "beta", "gamma"]);
        let mut differs = false;
        for k in keys(200) {
            assert_eq!(a.lookup_name(&k), b.lookup_name(&k), "key {k}");
            differs |= a.lookup_name(&k) != other.lookup_name(&k);
        }
        assert!(differs, "seed must perturb placement");
    }

    #[test]
    fn placement_ignores_insertion_order() {
        let a = ring_of(7, &["n0", "n1", "n2", "n3"]);
        let b = ring_of(7, &["n3", "n1", "n0", "n2"]);
        for k in keys(200) {
            assert_eq!(a.lookup_name(&k), b.lookup_name(&k), "key {k}");
        }
    }

    #[test]
    fn replicas_are_distinct_and_owner_first() {
        let r = ring_of(1, &["a", "b", "c", "d", "e"]);
        for k in keys(100) {
            let reps = r.replicas(&k, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(Some(reps[0]), r.lookup(&k), "owner leads for {k}");
            let mut uniq = reps.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), reps.len(), "duplicate replica for {k}");
        }
        // Asking for more replicas than nodes yields every node once.
        let all = r.replicas("/anything", 99);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn removal_remaps_only_the_removed_nodes_keys() {
        let names: Vec<String> = (0..10).map(|i| format!("node-{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let before = ring_of(99, &refs);
        let ks = keys(1000);
        let owners: HashMap<&String, String> = ks
            .iter()
            .map(|k| (k, before.lookup_name(k).unwrap().to_string()))
            .collect();

        let mut after = before.clone();
        assert!(after.remove("node-3"));
        let mut remapped = 0usize;
        for k in &ks {
            let was = &owners[k];
            let now = after.lookup_name(k).unwrap();
            if was == "node-3" {
                remapped += 1;
                assert_ne!(now, "node-3");
            } else {
                // The exact consistency property: a surviving node's keys
                // never move when some *other* node leaves.
                assert_eq!(now, was, "key {k} moved off a surviving node");
            }
        }
        // ~K/N keys lived on the removed node; allow generous spread.
        assert!(
            (20..=300).contains(&remapped),
            "expected ≈100 of 1000 keys remapped, got {remapped}"
        );
    }

    #[test]
    fn addition_steals_keys_only_for_the_new_node() {
        let before = ring_of(5, &["a", "b", "c"]);
        let mut after = before.clone();
        after.add("d");
        let mut stolen = 0usize;
        for k in keys(1000) {
            let was = before.lookup_name(&k).unwrap().to_string();
            let now = after.lookup_name(&k).unwrap();
            if now != was {
                assert_eq!(now, "d", "key {k} moved to a pre-existing node");
                stolen += 1;
            }
        }
        assert!(stolen > 0, "a joining node must take some keys");
    }

    #[test]
    fn empty_and_single_node_edges() {
        let mut r = HashRing::with_seed(0);
        assert!(r.is_empty());
        assert_eq!(r.lookup("/x"), None);
        assert!(r.replicas("/x", 2).is_empty());
        r.add("only");
        assert_eq!(r.lookup_name("/x"), Some("only"));
        assert_eq!(r.replicas("/x", 4), vec![0]);
        // Duplicate add is a no-op.
        assert_eq!(r.add("only"), 0);
        assert_eq!(r.len(), 1);
        assert!(!r.remove("ghost"));
        assert!(r.remove("only"));
        assert!(r.is_empty());
    }

    #[test]
    fn load_spread_is_reasonable() {
        let r = ring_of(11, &["a", "b", "c", "d"]);
        let mut counts = [0usize; 4];
        for k in keys(4000) {
            counts[r.lookup(&k).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (300..=2200).contains(&c),
                "node {i} owns {c} of 4000 keys — vnode spread collapsed"
            );
        }
    }
}
