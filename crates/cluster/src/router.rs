//! The routing tier: an HTTP front end that places every request on the
//! consistent-hash ring, forwards it to the owning `sledged` node, and
//! fails over to the next ring replica on connect/5xx failure — with
//! health probes, per-node circuit breakers, warm-pool locality steering,
//! and ring-level metrics aggregation.

use crate::health::{BreakerConfig, NodeHealth};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crossbeam::channel::{unbounded, Receiver, Sender};
use sledge_http::{
    ClientConfig, ClientResponse, ConnId, ConnectionEvent, HttpClient, HttpServer, Response,
    ServerConfig, StatusCode,
};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Ring replicas tried per key: the owner plus `replicas - 1` failover
    /// candidates in ring order.
    pub replicas: usize,
    /// Virtual nodes per physical node.
    pub vnodes: usize,
    /// Placement seed — part of the cluster contract: every router with
    /// the same seed and membership routes identically.
    pub seed: u64,
    /// Forwarder threads (each owns one keep-alive client per node).
    pub workers: usize,
    /// Health-probe period.
    pub probe_interval: Duration,
    /// Per-node circuit breaker (threshold/cooldown/half-open probe).
    pub breaker: BreakerConfig,
    /// Prefer a replica whose last `/stats` probe reported parked warm
    /// sandboxes when the key's owner reports a cold pool.
    pub locality: bool,
    /// Downstream connect timeout.
    pub connect_timeout: Duration,
    /// Downstream read timeout (covers function execution).
    pub read_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            vnodes: DEFAULT_VNODES,
            seed: 0x51ed_9e00,
            workers: 4,
            probe_interval: Duration::from_millis(500),
            breaker: BreakerConfig {
                threshold: 3,
                cooldown: Duration::from_millis(1000),
            },
            locality: true,
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Ring-level counters (all monotonic).
#[derive(Debug, Default)]
pub struct RingStats {
    /// Requests dispatched onto the ring.
    pub routed: AtomicU64,
    /// Forward attempts beyond a request's first (any reason).
    pub retried: AtomicU64,
    /// Requests answered by a non-first candidate after the one before it
    /// failed.
    pub failed_over: AtomicU64,
    /// Requests whose candidate order was reordered toward a warm pool.
    pub steered: AtomicU64,
    /// Requests that exhausted every candidate.
    pub failed: AtomicU64,
    /// Health probes issued.
    pub probes: AtomicU64,
    /// Module artifacts accepted by a node during distribution.
    pub modules_pushed: AtomicU64,
    /// Module artifacts rejected by a node during distribution.
    pub module_rejects: AtomicU64,
}

/// Plain-value copy of [`RingStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStatsSnapshot {
    pub routed: u64,
    pub retried: u64,
    pub failed_over: u64,
    pub steered: u64,
    pub failed: u64,
    pub probes: u64,
    pub modules_pushed: u64,
    pub module_rejects: u64,
}

impl RingStats {
    fn snapshot(&self) -> RingStatsSnapshot {
        RingStatsSnapshot {
            routed: self.routed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            failed_over: self.failed_over.load(Ordering::Relaxed),
            steered: self.steered.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            modules_pushed: self.modules_pushed.load(Ordering::Relaxed),
            module_rejects: self.module_rejects.load(Ordering::Relaxed),
        }
    }
}

/// One downstream node.
#[derive(Debug)]
struct Node {
    name: String,
    addr: SocketAddr,
    health: NodeHealth,
}

struct RouterShared {
    config: RouterConfig,
    /// Membership is fixed at startup; node indices align with the ring's.
    ring: HashRing,
    nodes: Vec<Node>,
    stats: RingStats,
    shutdown: AtomicBool,
    epoch: Instant,
}

impl RouterShared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn client_config(&self) -> ClientConfig {
        ClientConfig {
            connect_timeout: self.config.connect_timeout,
            read_timeout: Some(self.config.read_timeout),
            ..Default::default()
        }
    }
}

/// One request handed from the listener to a forwarder.
struct Job {
    conn: ConnId,
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Per-node outcome of a module distribution push.
#[derive(Debug)]
pub struct PushResult {
    /// Node name.
    pub node: String,
    /// `Ok(route)` when the node registered the module; `Err(reason)` when
    /// it rejected or was unreachable (the ring keeps serving either way).
    pub result: Result<String, String>,
}

/// The routing tier. Bind with [`Router::start`], push modules with
/// [`Router::distribute`], stop with [`Router::shutdown`].
pub struct Router {
    shared: Arc<RouterShared>,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Router {
    /// Start a router over `nodes` (name, address), serving on `listen`
    /// (port 0 for ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn start(
        config: RouterConfig,
        nodes: Vec<(String, SocketAddr)>,
        listen: SocketAddr,
    ) -> io::Result<Router> {
        let mut ring = HashRing::new(config.seed, config.vnodes);
        let nodes: Vec<Node> = nodes
            .into_iter()
            .map(|(name, addr)| {
                ring.add(&name);
                Node {
                    name,
                    addr,
                    health: NodeHealth::default(),
                }
            })
            .collect();
        // Ring indices must match `nodes` indices: the ring sorts nothing
        // across adds, so insertion order is index order.
        debug_assert!(ring
            .node_names()
            .iter()
            .zip(nodes.iter())
            .all(|(rn, n)| *rn == n.name));

        let server = HttpServer::bind(listen, ServerConfig::default())?;
        let addr = server.local_addr()?;
        let shared = Arc::new(RouterShared {
            config,
            ring,
            nodes,
            stats: RingStats::default(),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
        });

        let (job_tx, job_rx) = unbounded::<Job>();
        let (reply_tx, reply_rx) = unbounded::<(ConnId, Vec<u8>)>();
        let mut threads = Vec::new();
        for i in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let (job_rx, reply_tx) = (job_rx.clone(), reply_tx.clone());
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ring-forward-{i}"))
                    .spawn(move || forwarder_loop(shared, job_rx, reply_tx))
                    .expect("spawn forwarder"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ring-probe".into())
                    .spawn(move || prober_loop(shared))
                    .expect("spawn prober"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ring-listener".into())
                    .spawn(move || listener_loop(shared, server, job_tx, reply_rx))
                    .expect("spawn listener"),
            );
        }
        Ok(Router {
            shared,
            threads,
            addr,
        })
    }

    /// The router's own listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The placement ring (read-only; membership is fixed at startup).
    pub fn ring(&self) -> &HashRing {
        &self.shared.ring
    }

    /// Ring counter snapshot.
    pub fn stats(&self) -> RingStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Per-node `(name, healthy, hot_pool)` as last probed.
    pub fn node_health(&self) -> Vec<(String, bool, bool)> {
        self.shared
            .nodes
            .iter()
            .map(|n| (n.name.clone(), n.health.is_healthy(), n.health.is_hot()))
            .collect()
    }

    /// Push one certificate-carrying artifact to **every** node (modules
    /// are replicated cluster-wide; the ring only spreads invocations).
    /// A node that rejects the certificate or is unreachable is reported
    /// and skipped — the ring keeps serving with the nodes that accepted.
    pub fn distribute(&self, config_json: &str, artifact: &[u8]) -> Vec<PushResult> {
        distribute(&self.shared, config_json, artifact)
    }

    /// Stop every thread and close the listen socket.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shared.shutdown.store(true, Ordering::Release);
            for t in self.threads.drain(..) {
                let _ = t.join();
            }
        }
    }
}

/// Build the `POST /admin/modules` frame a node's ingest endpoint expects:
/// `u32 LE config length | function-config JSON | artifact bytes`.
pub fn ingest_frame(config_json: &str, artifact: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + config_json.len() + artifact.len());
    frame.extend_from_slice(&(config_json.len() as u32).to_le_bytes());
    frame.extend_from_slice(config_json.as_bytes());
    frame.extend_from_slice(artifact);
    frame
}

fn distribute(shared: &RouterShared, config_json: &str, artifact: &[u8]) -> Vec<PushResult> {
    let frame = ingest_frame(config_json, artifact);
    let mut results = Vec::with_capacity(shared.nodes.len());
    for node in &shared.nodes {
        let mut client = HttpClient::with_config(node.addr, shared.client_config());
        let result = match client.request("POST", "/admin/modules", &[], &frame) {
            Ok(resp) if resp.status == 200 => {
                shared.stats.modules_pushed.fetch_add(1, Ordering::Relaxed);
                Ok(String::from_utf8_lossy(&resp.body).into_owned())
            }
            Ok(resp) => {
                shared.stats.module_rejects.fetch_add(1, Ordering::Relaxed);
                Err(format!(
                    "{}: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body)
                ))
            }
            Err(e) => {
                shared.stats.module_rejects.fetch_add(1, Ordering::Relaxed);
                Err(format!("unreachable: {e}"))
            }
        };
        results.push(PushResult {
            node: node.name.clone(),
            result,
        });
    }
    results
}

/// Serialize a downstream response back onto the router's client,
/// preserving the status and the headers that matter (content type and
/// back-off hints); everything else is the router's own framing.
fn passthrough(resp: &ClientResponse) -> Vec<u8> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    };
    let mut out = Vec::with_capacity(resp.body.len() + 128);
    out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", resp.status, reason).as_bytes());
    for name in ["content-type", "retry-after"] {
        if let Some(v) = resp.header(name) {
            out.extend_from_slice(format!("{name}: {v}\r\n").as_bytes());
        }
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", resp.body.len()).as_bytes());
    out.extend_from_slice(&resp.body);
    out
}

/// Candidate order for one key: ring replicas, healthy nodes ahead of
/// unhealthy ones (kept as last resorts — the prober can lag reality),
/// optionally steered so a warm-pool node leads a cold owner.
fn candidate_order(shared: &RouterShared, key: &str) -> (Vec<usize>, bool) {
    let mut order = shared.ring.replicas(key, shared.config.replicas);
    order.sort_by_key(|&i| !shared.nodes[i].health.is_healthy());
    let mut steered = false;
    if shared.config.locality && order.len() > 1 {
        let hot = |i: usize| shared.nodes[i].health.is_healthy() && shared.nodes[i].health.is_hot();
        if let Some(pos) = order.iter().position(|&i| hot(i)) {
            if pos > 0 && !hot(order[0]) {
                let n = order.remove(pos);
                order.insert(0, n);
                steered = true;
            }
        }
    }
    (order, steered)
}

/// Forward one request with failover. Returns the response bytes to send
/// back to the router's client.
fn forward(shared: &RouterShared, clients: &mut Vec<Option<HttpClient>>, job: &Job) -> Vec<u8> {
    let (order, steered) = candidate_order(shared, &job.path);
    shared.stats.routed.fetch_add(1, Ordering::Relaxed);
    if steered {
        shared.stats.steered.fetch_add(1, Ordering::Relaxed);
    }
    if order.is_empty() {
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        return Response::error(StatusCode::ServiceUnavailable, "ring has no nodes").to_bytes();
    }
    let mut attempts = 0u64;
    let mut last_5xx: Option<Vec<u8>> = None;
    for &idx in &order {
        let health = &shared.nodes[idx].health;
        // Breaker gate: a tripped node is skipped outright; after its
        // cooldown this request doubles as the half-open probe.
        if health.admit(shared.now_ns()).is_err() {
            continue;
        }
        attempts += 1;
        if attempts > 1 {
            shared.stats.retried.fetch_add(1, Ordering::Relaxed);
        }
        let client = clients[idx].get_or_insert_with(|| {
            HttpClient::with_config(shared.nodes[idx].addr, shared.client_config())
        });
        match client.request(&job.method, &job.path, &[], &job.body) {
            // Any parseable sub-5xx response is the node answering: 4xx is
            // the function's business (admission rejects, unknown routes),
            // not a node failure — pass it through.
            Ok(resp) if resp.status < 500 => {
                health.record_success();
                if attempts > 1 {
                    shared.stats.failed_over.fetch_add(1, Ordering::Relaxed);
                }
                return passthrough(&resp);
            }
            Ok(resp) => {
                health.record_failure(&shared.config.breaker, shared.now_ns());
                last_5xx = Some(passthrough(&resp));
            }
            Err(_) => {
                health.record_failure(&shared.config.breaker, shared.now_ns());
            }
        }
    }
    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
    // Every candidate failed: relay the most informative downstream error,
    // or the router's own 503 when nothing even connected.
    last_5xx.unwrap_or_else(|| {
        Response::error(StatusCode::ServiceUnavailable, "no healthy replica")
            .retry_after(shared.config.breaker.cooldown)
            .to_bytes()
    })
}

fn forwarder_loop(
    shared: Arc<RouterShared>,
    jobs: Receiver<Job>,
    replies: Sender<(ConnId, Vec<u8>)>,
) {
    // One keep-alive client per node, owned by this thread.
    let mut clients: Vec<Option<HttpClient>> = shared.nodes.iter().map(|_| None).collect();
    loop {
        match jobs.recv_timeout(Duration::from_millis(5)) {
            Ok(job) => {
                let bytes = forward(&shared, &mut clients, &job);
                let _ = replies.send((job.conn, bytes));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

fn prober_loop(shared: Arc<RouterShared>) {
    let probe_config = ClientConfig {
        connect_timeout: shared.config.connect_timeout,
        read_timeout: Some(
            shared
                .config
                .connect_timeout
                .max(Duration::from_millis(250)),
        ),
        ..Default::default()
    };
    let mut clients: Vec<HttpClient> = shared
        .nodes
        .iter()
        .map(|n| HttpClient::with_config(n.addr, probe_config.clone()))
        .collect();
    loop {
        for (node, client) in shared.nodes.iter().zip(clients.iter_mut()) {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            shared.stats.probes.fetch_add(1, Ordering::Relaxed);
            node.health.probes.fetch_add(1, Ordering::Relaxed);
            let alive = matches!(
                client.request("GET", "/healthz", &[], b""),
                Ok(resp) if resp.status == 200
            );
            let mut hot = false;
            if alive {
                node.health.record_success();
                // Warm-pool and downstream-counter observation; `/stats`
                // may be disabled on the node (metrics_routes off) — that
                // only disables steering and aggregation, not routing.
                if let Ok(resp) = client.request("GET", "/stats", &[], b"") {
                    if resp.status == 200 {
                        if let Ok(doc) =
                            sledge_core::parse_json(&String::from_utf8_lossy(&resp.body))
                        {
                            hot = doc
                                .get("pool")
                                .and_then(|p| p.get("size"))
                                .and_then(|s| s.as_u64())
                                .is_some_and(|s| s > 0);
                            if let Some(completed) = doc
                                .get("counters")
                                .and_then(|c| c.get("completed"))
                                .and_then(|c| c.as_u64())
                            {
                                node.health
                                    .downstream_completed
                                    .store(completed, Ordering::Relaxed);
                            }
                        }
                    }
                }
            } else {
                node.health
                    .record_failure(&shared.config.breaker, shared.now_ns());
            }
            node.health.set_probed(alive, hot);
        }
        // Sleep in small slices so shutdown stays prompt.
        let mut left = shared.config.probe_interval;
        while !left.is_zero() {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let step = left.min(Duration::from_millis(20));
            std::thread::sleep(step);
            left -= step;
        }
    }
}

/// Ring-level Prometheus exposition: membership, per-node health, and the
/// routed/retried/failed-over counters, plus the aggregated downstream
/// completion count from the per-node `/stats` probes.
fn render_ring_metrics(shared: &RouterShared) -> String {
    let s = shared.stats.snapshot();
    let mut out = String::with_capacity(1024);
    out.push_str("# HELP sledge_ring_nodes Nodes in the routing ring.\n");
    out.push_str("# TYPE sledge_ring_nodes gauge\n");
    out.push_str(&format!("sledge_ring_nodes {}\n", shared.nodes.len()));
    out.push_str("# HELP sledge_ring_node_healthy Last probe verdict per node.\n");
    out.push_str("# TYPE sledge_ring_node_healthy gauge\n");
    for n in &shared.nodes {
        out.push_str(&format!(
            "sledge_ring_node_healthy{{node=\"{}\"}} {}\n",
            n.name,
            u8::from(n.health.is_healthy())
        ));
    }
    out.push_str("# HELP sledge_ring_node_hot_pool Node reported parked warm sandboxes.\n");
    out.push_str("# TYPE sledge_ring_node_hot_pool gauge\n");
    for n in &shared.nodes {
        out.push_str(&format!(
            "sledge_ring_node_hot_pool{{node=\"{}\"}} {}\n",
            n.name,
            u8::from(n.health.is_hot())
        ));
    }
    out.push_str("# HELP sledge_ring_node_failures_total Failed requests/probes per node.\n");
    out.push_str("# TYPE sledge_ring_node_failures_total counter\n");
    for n in &shared.nodes {
        out.push_str(&format!(
            "sledge_ring_node_failures_total{{node=\"{}\"}} {}\n",
            n.name,
            n.health.failures.load(Ordering::Relaxed)
        ));
    }
    for (name, v) in [
        ("sledge_ring_routed_total", s.routed),
        ("sledge_ring_retried_total", s.retried),
        ("sledge_ring_failed_over_total", s.failed_over),
        ("sledge_ring_steered_total", s.steered),
        ("sledge_ring_failed_total", s.failed),
        ("sledge_ring_probes_total", s.probes),
        ("sledge_ring_modules_pushed_total", s.modules_pushed),
        ("sledge_ring_module_rejects_total", s.module_rejects),
    ] {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    let downstream: u64 = shared
        .nodes
        .iter()
        .map(|n| n.health.downstream_completed.load(Ordering::Relaxed))
        .sum();
    out.push_str("# HELP sledge_ring_downstream_completed_total Completed invocations summed over node /stats.\n");
    out.push_str("# TYPE sledge_ring_downstream_completed_total counter\n");
    out.push_str(&format!(
        "sledge_ring_downstream_completed_total {downstream}\n"
    ));
    out
}

/// Ring-level JSON stats (same data as the Prometheus text).
fn render_ring_stats(shared: &RouterShared) -> String {
    let s = shared.stats.snapshot();
    let mut out = String::with_capacity(1024);
    out.push_str("{\"nodes\":[");
    for (i, n) in shared.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{:?},\"addr\":\"{}\",\"healthy\":{},\"hot_pool\":{},\"failures\":{},\"consecutive_failures\":{},\"downstream_completed\":{}}}",
            n.name,
            n.addr,
            n.health.is_healthy(),
            n.health.is_hot(),
            n.health.failures.load(Ordering::Relaxed),
            n.health.consecutive_failures(),
            n.health.downstream_completed.load(Ordering::Relaxed),
        ));
    }
    out.push_str(&format!(
        "],\"counters\":{{\"routed\":{},\"retried\":{},\"failed_over\":{},\"steered\":{},\"failed\":{},\"probes\":{},\"modules_pushed\":{},\"module_rejects\":{}}}}}",
        s.routed, s.retried, s.failed_over, s.steered, s.failed, s.probes,
        s.modules_pushed, s.module_rejects,
    ));
    out
}

fn listener_loop(
    shared: Arc<RouterShared>,
    mut server: HttpServer,
    jobs: Sender<Job>,
    replies: Receiver<(ConnId, Vec<u8>)>,
) {
    loop {
        let mut worked = false;
        while let Ok((conn, bytes)) = replies.try_recv() {
            worked = true;
            server.send(conn, &bytes);
        }
        for ev in server.poll(Duration::ZERO) {
            worked = true;
            let ConnectionEvent::Request(conn, req) = ev else {
                continue;
            };
            if req.method == "GET" && req.path == "/healthz" {
                server.send(conn, &Response::ok(b"ok".to_vec()).to_bytes());
                continue;
            }
            if req.method == "GET" && req.path == "/metrics" {
                let body = render_ring_metrics(&shared);
                server.send(
                    conn,
                    &Response::ok(body.into_bytes())
                        .header("Content-Type", "text/plain; version=0.0.4")
                        .to_bytes(),
                );
                continue;
            }
            if req.method == "GET" && req.path == "/stats" {
                let body = render_ring_stats(&shared);
                server.send(
                    conn,
                    &Response::ok(body.into_bytes())
                        .header("Content-Type", "application/json")
                        .to_bytes(),
                );
                continue;
            }
            if req.method == "POST" && req.path == "/admin/modules" {
                // Distribution through the router: relay the frame to every
                // node and report per-node outcomes. Served inline — admin
                // pushes are rare and the forwarders keep routing meanwhile.
                let resp = match parse_push_frame(&req.body) {
                    Ok((config_json, artifact)) => {
                        let results = distribute(&shared, config_json, artifact);
                        let ok = results.iter().filter(|r| r.result.is_ok()).count();
                        let mut body = String::from("{\"nodes\":{");
                        for (i, r) in results.iter().enumerate() {
                            if i > 0 {
                                body.push(',');
                            }
                            match &r.result {
                                Ok(_) => body.push_str(&format!("{:?}:\"ok\"", r.node)),
                                Err(e) => body.push_str(&format!("{:?}:{e:?}", r.node)),
                            }
                        }
                        body.push_str(&format!("}},\"accepted\":{ok}}}"));
                        if ok > 0 {
                            Response::ok(body.into_bytes())
                                .header("Content-Type", "application/json")
                        } else {
                            Response::error(StatusCode::BadRequest, &body)
                        }
                    }
                    Err(why) => Response::error(StatusCode::BadRequest, why),
                };
                server.send(conn, &resp.to_bytes());
                continue;
            }
            // Everything else rides the ring.
            let _ = jobs.send(Job {
                conn,
                method: req.method,
                path: req.path,
                body: req.body,
            });
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !worked {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Sanity-check a relayed push frame without decoding the artifact (the
/// nodes re-validate everything; the router only rejects obvious garbage).
fn parse_push_frame(body: &[u8]) -> Result<(&str, &[u8]), &'static str> {
    let Some(len_bytes) = body.get(..4) else {
        return Err("truncated frame: missing config length");
    };
    let cfg_len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let rest = &body[4..];
    if rest.len() < cfg_len {
        return Err("truncated frame: config length exceeds body");
    }
    let config_json = std::str::from_utf8(&rest[..cfg_len]).map_err(|_| "config is not UTF-8")?;
    Ok((config_json, &rest[cfg_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_frame_layout() {
        let frame = ingest_frame("{\"name\":\"f\"}", b"ART");
        assert_eq!(&frame[..4], &(12u32).to_le_bytes());
        assert_eq!(&frame[4..16], b"{\"name\":\"f\"}");
        assert_eq!(&frame[16..], b"ART");
        let (cfg, art) = parse_push_frame(&frame).unwrap();
        assert_eq!(cfg, "{\"name\":\"f\"}");
        assert_eq!(art, b"ART");
        assert!(parse_push_frame(b"ab").is_err());
        let mut bad = (100u32).to_le_bytes().to_vec();
        bad.extend_from_slice(b"short");
        assert!(parse_push_frame(&bad).is_err());
    }

    #[test]
    fn passthrough_preserves_status_and_interesting_headers() {
        let resp = ClientResponse {
            status: 429,
            headers: vec![
                ("content-type".into(), "text/plain".into()),
                ("retry-after".into(), "2".into()),
                ("x-internal".into(), "dropped".into()),
            ],
            body: b"slow down".to_vec(),
        };
        let bytes = passthrough(&resp);
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("content-type: text/plain\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(!text.contains("x-internal"));
        assert!(text.ends_with("\r\n\r\nslow down"));
    }
}
