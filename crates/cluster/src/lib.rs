//! Cluster mode for Sledge: a serverless-first routing tier that spreads
//! invocations over a set of `sledged` nodes with a seeded consistent-hash
//! ring, fails over to the next ring replica when a node dies, and
//! distributes compiled modules *with their translation certificates* so
//! nodes validate instead of re-translating on ingest.
//!
//! Three pieces:
//!
//! - [`ring`]: the consistent-hash placement (virtual nodes, seeded, with
//!   distinct-node replica ordering for failover).
//! - [`health`]: per-node failure counters and circuit breakers fed by both
//!   live traffic and a background prober, plus the warm-pool observation
//!   that drives locality steering.
//! - [`router`]: the HTTP front end tying them together — forwarding,
//!   retry-with-failover, module distribution, and ring-level metrics.

pub mod health;
pub mod ring;
pub mod router;

pub use health::{BreakerConfig, NodeHealth};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{ingest_frame, PushResult, RingStatsSnapshot, Router, RouterConfig};

/// Compile `wasm` into a distributable certificate-carrying artifact: the
/// translated module (with its analysis, cost, effect, and — when
/// `optimize` — dataflow-optimization certificates) serialized via
/// [`awsm::encode_artifact`]. Feed the result to [`Router::distribute`] or
/// a node's `POST /admin/modules`.
///
/// # Errors
///
/// Returns the decode/translate error text on a malformed module.
pub fn artifact_from_wasm(wasm: &[u8], optimize: bool) -> Result<Vec<u8>, String> {
    let module = sledge_wasm::decode::decode_module(wasm).map_err(|e| format!("decode: {e}"))?;
    let options = awsm::TranslateOptions {
        optimize,
        ..Default::default()
    };
    let compiled = awsm::translate_with(&module, awsm::Tier::Optimized, options)
        .map_err(|e| format!("translate: {e}"))?;
    Ok(awsm::encode_artifact(&compiled))
}
