//! sledge-router — the cluster routing tier.
//!
//! Boots a consistent-hash router over a set of `sledged` nodes,
//! optionally pushes certificate-carrying module artifacts to every node,
//! then serves until interrupted (or for `--run-for-s` seconds).
//!
//! ```text
//! sledge-router --listen 127.0.0.1:8090 \
//!     --node a=127.0.0.1:8081 --node b=127.0.0.1:8082 --node c=127.0.0.1:8083 \
//!     --module fixtures/echo.json=fixtures/echo.wasm
//! ```

use sledge_cluster::{artifact_from_wasm, Router, RouterConfig};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    listen: SocketAddr,
    nodes: Vec<(String, SocketAddr)>,
    /// `(config.json path, module.wasm path)` pairs to distribute at boot.
    modules: Vec<(String, String)>,
    config: RouterConfig,
    run_for: Option<Duration>,
    optimize: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sledge-router --listen ADDR --node NAME=ADDR [--node NAME=ADDR ...]\n\
         \x20      [--module CONFIG.json=MODULE.wasm ...] [--replicas N] [--vnodes V]\n\
         \x20      [--seed S] [--probe-ms MS] [--workers N] [--no-locality]\n\
         \x20      [--no-optimize] [--run-for-s SECS]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:8090".parse().expect("default listen addr"),
        nodes: Vec::new(),
        modules: Vec::new(),
        config: RouterConfig::default(),
        run_for: None,
        optimize: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => {
                args.listen = value("--listen").parse().unwrap_or_else(|e| {
                    eprintln!("bad --listen: {e}");
                    usage()
                });
            }
            "--node" => {
                let v = value("--node");
                let Some((name, addr)) = v.split_once('=') else {
                    eprintln!("--node wants NAME=ADDR, got {v:?}");
                    usage()
                };
                let addr: SocketAddr = addr.parse().unwrap_or_else(|e| {
                    eprintln!("bad node address {addr:?}: {e}");
                    usage()
                });
                args.nodes.push((name.to_string(), addr));
            }
            "--module" => {
                let v = value("--module");
                let Some((cfg, wasm)) = v.split_once('=') else {
                    eprintln!("--module wants CONFIG.json=MODULE.wasm, got {v:?}");
                    usage()
                };
                args.modules.push((cfg.to_string(), wasm.to_string()));
            }
            "--replicas" => args.config.replicas = parse_num(&value("--replicas")),
            "--vnodes" => args.config.vnodes = parse_num(&value("--vnodes")),
            "--seed" => args.config.seed = parse_num(&value("--seed")) as u64,
            "--workers" => args.config.workers = parse_num(&value("--workers")),
            "--probe-ms" => {
                args.config.probe_interval =
                    Duration::from_millis(parse_num(&value("--probe-ms")) as u64);
            }
            "--no-locality" => args.config.locality = false,
            "--no-optimize" => args.optimize = false,
            "--run-for-s" => {
                args.run_for = Some(Duration::from_secs(parse_num(&value("--run-for-s")) as u64));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.nodes.is_empty() {
        eprintln!("at least one --node is required");
        usage()
    }
    args
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|e| {
        eprintln!("bad number {s:?}: {e}");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let router = match Router::start(args.config.clone(), args.nodes.clone(), args.listen) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sledge-router: bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };

    println!("sledge-router listening on {}", router.addr());
    println!(
        "  ring: {} nodes, {} vnodes, {} replicas, seed {:#x}",
        args.nodes.len(),
        args.config.vnodes,
        args.config.replicas,
        args.config.seed
    );
    for (name, addr) in &args.nodes {
        println!("  node: {name} at {addr}");
    }

    let mut push_failures = 0usize;
    for (cfg_path, wasm_path) in &args.modules {
        let config_json = match std::fs::read_to_string(cfg_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sledge-router: read {cfg_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let wasm = match std::fs::read(wasm_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sledge-router: read {wasm_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let artifact = match artifact_from_wasm(&wasm, args.optimize) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("sledge-router: compile {wasm_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  module: {wasm_path} -> {} byte certificate-carrying artifact",
            artifact.len()
        );
        for push in router.distribute(&config_json, &artifact) {
            match push.result {
                Ok(_) => println!("    {}: ok", push.node),
                Err(e) => {
                    push_failures += 1;
                    eprintln!("    {}: REJECTED ({e})", push.node);
                }
            }
        }
    }
    if !args.modules.is_empty() && push_failures == args.nodes.len() * args.modules.len() {
        eprintln!("sledge-router: every node rejected every module");
        return ExitCode::FAILURE;
    }

    match args.run_for {
        Some(d) => std::thread::sleep(d),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let stats = router.stats();
    println!(
        "sledge-router: routed {} (retried {}, failed over {}, steered {}, failed {})",
        stats.routed, stats.retried, stats.failed_over, stats.steered, stats.failed
    );
    router.shutdown();
    ExitCode::SUCCESS
}
