//! The module registry: where the "heavyweight linking and loading" happens,
//! once per function, decoupled from per-request instantiation.

use crate::config::FunctionConfig;
use crate::stats::FunctionStats;
use awsm::{translate, CompiledModule, Tier, TranslateError};
use sledge_wasm::module::Module;
use sledge_wasm::DecodeError;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub(crate) u32);

/// A registered, fully translated function.
#[derive(Debug)]
pub struct RegisteredFunction {
    /// Registry id.
    pub id: FunctionId,
    /// Configuration (name, route, entry).
    pub config: FunctionConfig,
    /// The shared, immutable translated module.
    pub module: Arc<CompiledModule>,
    /// Size of the uploaded `.wasm` binary in bytes.
    pub wasm_size: usize,
    /// Per-function counters, updated by the workers.
    pub stats: FunctionStats,
}

impl RegisteredFunction {
    /// The execution deadline in force for this function: its own override
    /// if set, else the runtime-wide default.
    pub fn effective_deadline(&self, default: Option<Duration>) -> Option<Duration> {
        self.config.deadline.or(default)
    }
}

/// Registration failure.
#[derive(Debug)]
pub enum RegisterError {
    /// The `.wasm` binary failed to decode.
    Decode(DecodeError),
    /// The module failed validation/translation.
    Translate(TranslateError),
    /// The configured entry point is not an exported function.
    NoEntry(String),
    /// A function with this name already exists.
    DuplicateName(String),
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::Decode(e) => write!(f, "{e}"),
            RegisterError::Translate(e) => write!(f, "{e}"),
            RegisterError::NoEntry(e) => write!(f, "entry point {e:?} not exported"),
            RegisterError::DuplicateName(n) => write!(f, "function {n:?} already registered"),
        }
    }
}

impl Error for RegisterError {}

/// Registry of loaded functions, indexed by id, name, and HTTP route.
#[derive(Debug, Default)]
pub struct Registry {
    functions: Vec<Arc<RegisteredFunction>>,
    by_name: HashMap<String, FunctionId>,
    by_route: HashMap<String, FunctionId>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a function from raw `.wasm` bytes: decode, validate,
    /// translate (once), and index it.
    ///
    /// # Errors
    ///
    /// See [`RegisterError`].
    pub fn register_wasm(
        &mut self,
        config: FunctionConfig,
        wasm: &[u8],
        tier: Tier,
    ) -> Result<FunctionId, RegisterError> {
        let module = sledge_wasm::decode::decode_module(wasm).map_err(RegisterError::Decode)?;
        self.register_module(config, &module, tier, wasm.len())
    }

    /// Register a function from an already-decoded module (used by tests and
    /// in-process guests that skip the serialization roundtrip).
    ///
    /// # Errors
    ///
    /// See [`RegisterError`].
    pub fn register_module(
        &mut self,
        config: FunctionConfig,
        module: &Module,
        tier: Tier,
        wasm_size: usize,
    ) -> Result<FunctionId, RegisterError> {
        if self.by_name.contains_key(&config.name) {
            return Err(RegisterError::DuplicateName(config.name.clone()));
        }
        let compiled = translate(module, tier).map_err(RegisterError::Translate)?;
        if compiled.export(&config.entry).is_none() {
            return Err(RegisterError::NoEntry(config.entry.clone()));
        }
        let id = FunctionId(self.functions.len() as u32);
        let route = config.http_route();
        let name = config.name.clone();
        let rf = Arc::new(RegisteredFunction {
            id,
            config,
            module: Arc::new(compiled),
            wasm_size,
            stats: FunctionStats::default(),
        });
        self.functions.push(rf);
        self.by_name.insert(name, id);
        self.by_route.insert(route, id);
        Ok(id)
    }

    /// Look up by id.
    pub fn get(&self, id: FunctionId) -> Option<&Arc<RegisteredFunction>> {
        self.functions.get(id.0 as usize)
    }

    /// Look up by function name.
    pub fn by_name(&self, name: &str) -> Option<&Arc<RegisteredFunction>> {
        self.by_name.get(name).and_then(|id| self.get(*id))
    }

    /// Look up by HTTP route.
    pub fn by_route(&self, route: &str) -> Option<&Arc<RegisteredFunction>> {
        self.by_route.get(route).and_then(|id| self.get(*id))
    }

    /// All registered functions.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<RegisteredFunction>> {
        self.functions.iter()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sledge_guestc::dsl::*;
    use sledge_guestc::{FuncBuilder, ModuleBuilder};
    use sledge_wasm::types::ValType;

    fn tiny_module(name: &str) -> Module {
        let mut mb = ModuleBuilder::new(name);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(i32c(7))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        let m = tiny_module("seven");
        let wasm = sledge_wasm::encode::encode_module(&m);
        let id = r
            .register_wasm(FunctionConfig::new("seven"), &wasm, Tier::Optimized)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(id).unwrap().config.name, "seven");
        assert!(r.by_name("seven").is_some());
        assert!(r.by_route("/seven").is_some());
        assert!(r.by_name("eight").is_none());
        assert_eq!(r.get(id).unwrap().wasm_size, wasm.len());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut r = Registry::new();
        let m = tiny_module("dup");
        r.register_module(FunctionConfig::new("dup"), &m, Tier::Optimized, 0)
            .unwrap();
        assert!(matches!(
            r.register_module(FunctionConfig::new("dup"), &m, Tier::Optimized, 0),
            Err(RegisterError::DuplicateName(_))
        ));
    }

    #[test]
    fn missing_entry_rejected() {
        let mut r = Registry::new();
        let m = tiny_module("f");
        let mut cfg = FunctionConfig::new("f");
        cfg.entry = "not_main".into();
        assert!(matches!(
            r.register_module(cfg, &m, Tier::Optimized, 0),
            Err(RegisterError::NoEntry(_))
        ));
    }

    #[test]
    fn bad_wasm_rejected() {
        let mut r = Registry::new();
        assert!(matches!(
            r.register_wasm(FunctionConfig::new("x"), b"garbage", Tier::Optimized),
            Err(RegisterError::Decode(_))
        ));
    }
}
