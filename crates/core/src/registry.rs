//! The module registry: where the "heavyweight linking and loading" happens,
//! once per function, decoupled from per-request instantiation.

use crate::budget::TokenBucket;
use crate::config::{FunctionConfig, DEFAULT_COST_UNITS_PER_US};
use crate::histogram::HistogramSnapshot;
use crate::metrics::PhaseHistograms;
use crate::pool::SandboxPool;
use crate::stats::{FunctionStats, RegistryStats, RegistryStatsSnapshot};
use awsm::{
    translate_with, AnalysisReport, CompiledModule, Diagnostic, Severity, Tier, TranslateError,
    TranslateOptions,
};
use sledge_wasm::module::Module;
use sledge_wasm::DecodeError;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctionId(pub(crate) u32);

/// A registered, fully translated function.
#[derive(Debug)]
pub struct RegisteredFunction {
    /// Registry id.
    pub id: FunctionId,
    /// Configuration (name, route, entry).
    pub config: FunctionConfig,
    /// The shared, immutable translated module.
    pub module: Arc<CompiledModule>,
    /// Size of the uploaded `.wasm` binary in bytes.
    pub wasm_size: usize,
    /// Per-function counters, updated by the workers.
    pub stats: FunctionStats,
    /// Per-worker latency shards for this function (one entry per worker;
    /// worker `i` writes only `metrics[i]`). Readers merge on demand.
    pub metrics: Box<[PhaseHistograms]>,
    /// Warm sandbox pool (capacity 0 = disabled; see
    /// [`crate::RuntimeConfig::pool_size`]).
    pub pool: SandboxPool,
    /// Tokens charged against the work budget at admission: the entry
    /// point's statically certified cost (`FuncCost::total_cost`), or 1
    /// when the certificate has no entry for it (imported entry).
    pub admission_cost: u64,
    /// Work-budget token bucket, armed by the `budget` config knob
    /// (rate = `budget_us_per_s` × the calibrated `cost_units_per_us`).
    pub budget: Option<TokenBucket>,
    /// Cached queue-phase p99 for SLO admission (merging every worker
    /// shard per request would be too hot for the admission path).
    queue_p99: QueueP99Cache,
}

/// How long a cached queue-phase p99 stays fresh before the next admission
/// re-merges the worker shards.
const QUEUE_P99_REFRESH_NS: u64 = 5_000_000;

#[derive(Debug, Default)]
struct QueueP99Cache {
    value_ns: AtomicU64,
    stamp_ns: AtomicU64,
}

impl RegisteredFunction {
    /// The execution deadline in force for this function: its own override
    /// if set, else the runtime-wide default.
    pub fn effective_deadline(&self, default: Option<Duration>) -> Option<Duration> {
        self.config.deadline.or(default)
    }

    /// The static-analysis report computed when this module was translated.
    /// Cached with the module, so analysis runs once per module, not per
    /// sandbox.
    pub fn analysis(&self) -> &AnalysisReport {
        &self.module.analysis
    }

    /// This function's observed queue-phase p99 in nanoseconds, refreshed
    /// from the merged worker shards at most every few milliseconds (stale
    /// reads are fine: the SLO gate is a coarse overload signal, not an
    /// exact measurement).
    pub fn queue_p99_ns(&self, now_ns: u64) -> u64 {
        let stamp = self.queue_p99.stamp_ns.load(Ordering::Relaxed);
        if stamp != 0 && now_ns.saturating_sub(stamp) < QUEUE_P99_REFRESH_NS {
            return self.queue_p99.value_ns.load(Ordering::Relaxed);
        }
        let mut merged = HistogramSnapshot::default();
        for shard in self.metrics.iter() {
            merged.merge(&shard.queue.snapshot());
        }
        let v = merged.quantile(0.99);
        self.queue_p99.value_ns.store(v, Ordering::Relaxed);
        self.queue_p99
            .stamp_ns
            .store(now_ns.max(1), Ordering::Relaxed);
        v
    }
}

/// Registration failure.
#[derive(Debug)]
pub enum RegisterError {
    /// The `.wasm` binary failed to decode.
    Decode(DecodeError),
    /// The module failed validation/translation.
    Translate(TranslateError),
    /// The configured entry point is not an exported function.
    NoEntry(String),
    /// A function with this name already exists.
    DuplicateName(String),
    /// Static analysis rejected the module: error-severity lints and/or a
    /// worst-case stack bound over the configured budget.
    Analysis(Vec<Diagnostic>),
    /// The module's preemption-latency certificate is missing or its
    /// certified check-free gap exceeds the configured budget.
    Certificate(Diagnostic),
    /// The module's effect certificate violates the function's capability
    /// policy (`allowed_hostcalls` / `max_write_footprint_bytes`): the entry
    /// point can reach a host call outside the allowed set, or its certified
    /// write footprint exceeds the configured bound.
    Capability(Vec<Diagnostic>),
    /// Strict (ingest) registration only: the optimizer's translation-
    /// validation certificate failed re-verification. The local path falls
    /// back to the preserved unoptimized bodies instead; a distributed
    /// artifact is rejected outright — a peer shipping a module whose
    /// certificate does not re-prove is not trusted to have translated it
    /// honestly.
    OptValidation(String),
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::Decode(e) => write!(f, "{e}"),
            RegisterError::Translate(e) => write!(f, "{e}"),
            RegisterError::NoEntry(e) => write!(f, "entry point {e:?} not exported"),
            RegisterError::DuplicateName(n) => write!(f, "function {n:?} already registered"),
            RegisterError::Analysis(diags) => {
                write!(f, "static analysis rejected module")?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            RegisterError::Certificate(d) => {
                write!(f, "preemption-latency certificate rejected: {d}")
            }
            RegisterError::Capability(diags) => {
                write!(f, "capability policy rejected module")?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            RegisterError::OptValidation(e) => {
                write!(f, "optimization certificate rejected: {e}")
            }
        }
    }
}

impl Error for RegisterError {}

/// Registry of loaded functions, indexed by id, name, and HTTP route.
#[derive(Debug, Default)]
pub struct Registry {
    functions: Vec<Arc<RegisteredFunction>>,
    by_name: HashMap<String, FunctionId>,
    by_route: HashMap<String, FunctionId>,
    /// Worst-case guest stack budget enforced at registration; `None`
    /// disables the check.
    stack_budget: Option<u64>,
    /// Preemption-latency budget (max check-free gap, in cost units)
    /// enforced at registration. Also steers the translator: the cost pass
    /// splits blocks so the certificate meets this budget by construction.
    /// `None` uses [`awsm::DEFAULT_MAX_CHECK_GAP`] and accepts any
    /// certified gap — but a certificate must still be present.
    check_gap: Option<u32>,
    /// Latency-shard count for newly registered functions (the runtime's
    /// worker count; 0 means "not set" and falls back to a single shard).
    shards: usize,
    /// Warm-pool capacity for newly registered functions (0 = pooling
    /// disabled).
    pool_capacity: usize,
    /// Cost units per µs used to convert `budget` (µs/s) into a token-
    /// bucket rate (0 = "not set", falls back to the default calibration).
    calibration: u64,
    /// Whether newly registered modules go through the translate-time
    /// optimizer. `None` (the default) defers to the translator's own
    /// default (on, unless `SLEDGE_OPT=0`).
    optimize: Option<bool>,
    /// Load-time analysis counters.
    pub stats: RegistryStats,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Set the stack budget enforced on subsequently registered modules
    /// (see [`crate::RuntimeConfig::max_stack_bytes`]).
    pub fn set_stack_budget(&mut self, budget: Option<u64>) {
        self.stack_budget = budget;
    }

    /// Set the preemption-latency budget (max check-free gap, in cost
    /// units) enforced on subsequently registered modules (see
    /// [`crate::RuntimeConfig::max_check_gap`]).
    pub fn set_check_gap(&mut self, budget: Option<u32>) {
        self.check_gap = budget;
    }

    /// Set how many latency shards each subsequently registered function
    /// carries (the runtime passes its worker count, so every worker gets a
    /// private shard).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// Set the warm-pool capacity for subsequently registered functions
    /// (see [`crate::RuntimeConfig::pool_size`]; 0 disables pooling).
    pub fn set_pool_capacity(&mut self, capacity: usize) {
        self.pool_capacity = capacity;
    }

    /// Set the fuel calibration (cost units per µs) used to size the work-
    /// budget buckets of subsequently registered functions (see
    /// [`crate::RuntimeConfig::cost_units_per_us`]).
    pub fn set_calibration(&mut self, cost_units_per_us: u64) {
        self.calibration = cost_units_per_us;
    }

    /// Set whether subsequently registered modules run the translate-time
    /// optimizer (see [`crate::RuntimeConfig::optimize`]).
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = Some(on);
    }

    /// Register a function from raw `.wasm` bytes: decode, validate,
    /// translate (once), and index it.
    ///
    /// # Errors
    ///
    /// See [`RegisterError`].
    pub fn register_wasm(
        &mut self,
        config: FunctionConfig,
        wasm: &[u8],
        tier: Tier,
    ) -> Result<FunctionId, RegisterError> {
        let module = sledge_wasm::decode::decode_module(wasm).map_err(RegisterError::Decode)?;
        self.register_module(config, &module, tier, wasm.len())
    }

    /// Register a function from an already-decoded module (used by tests and
    /// in-process guests that skip the serialization roundtrip).
    ///
    /// # Errors
    ///
    /// See [`RegisterError`].
    pub fn register_module(
        &mut self,
        config: FunctionConfig,
        module: &Module,
        tier: Tier,
        wasm_size: usize,
    ) -> Result<FunctionId, RegisterError> {
        let opts = TranslateOptions {
            max_check_gap: self.check_gap.unwrap_or(awsm::DEFAULT_MAX_CHECK_GAP),
            optimize: self
                .optimize
                .unwrap_or_else(|| TranslateOptions::default().optimize),
        };
        let compiled = translate_with(module, tier, opts).map_err(RegisterError::Translate)?;
        self.register_compiled(config, compiled, wasm_size)
    }

    /// Register an already-translated module received as a distributed
    /// artifact (cluster-mode ingest). Unlike [`Registry::register_compiled`]
    /// — which reverts a module with a bad optimization certificate to its
    /// preserved unoptimized bodies — the strict path **rejects** it: the
    /// artifact crossed a trust boundary, and a certificate that does not
    /// re-prove means the payload cannot be trusted at all.
    ///
    /// # Errors
    ///
    /// [`RegisterError::OptValidation`] on certificate re-verification
    /// failure; otherwise everything [`Registry::register_compiled`] returns.
    pub fn register_artifact(
        &mut self,
        config: FunctionConfig,
        compiled: CompiledModule,
        wasm_size: usize,
    ) -> Result<FunctionId, RegisterError> {
        use std::sync::atomic::Ordering;
        if compiled.analysis.opt.is_some() {
            if let Err(e) = awsm::validate_opt(&compiled) {
                self.stats.modules_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(RegisterError::OptValidation(e));
            }
        }
        self.register_compiled(config, compiled, wasm_size)
    }

    /// Register an already-translated module. This is where the optimizer's
    /// translation-validation certificate is re-checked: a module whose
    /// certificate fails verification is not rejected — it is reverted to
    /// its preserved unoptimized bodies (re-analyzed and re-instrumented)
    /// and registered anyway, counted in
    /// [`RegistryStats::opt_fallbacks`](crate::stats::RegistryStats).
    ///
    /// # Errors
    ///
    /// See [`RegisterError`].
    pub fn register_compiled(
        &mut self,
        config: FunctionConfig,
        mut compiled: CompiledModule,
        wasm_size: usize,
    ) -> Result<FunctionId, RegisterError> {
        use std::sync::atomic::Ordering;
        if self.by_name.contains_key(&config.name) {
            return Err(RegisterError::DuplicateName(config.name.clone()));
        }
        if compiled.analysis.opt.is_some() {
            match awsm::validate_opt(&compiled) {
                Ok(()) => {
                    self.stats.opt_modules.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    eprintln!(
                        "[sledge] module {:?}: optimization certificate rejected ({e}); \
                         falling back to unoptimized body",
                        config.name
                    );
                    awsm::revert_optimizations(
                        &mut compiled,
                        self.check_gap.unwrap_or(awsm::DEFAULT_MAX_CHECK_GAP),
                    );
                    self.stats.opt_fallbacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if compiled.export(&config.entry).is_none() {
            return Err(RegisterError::NoEntry(config.entry.clone()));
        }
        self.gate_analysis(&config, &compiled)?;
        let id = FunctionId(self.functions.len() as u32);
        let route = config.http_route();
        let name = config.name.clone();
        // The entry's statically certified cost is what admission charges
        // against the work budget before the invocation has burned any
        // fuel; the worker trues it up with the real burn at completion.
        let admission_cost = compiled
            .export(&config.entry)
            .and_then(|idx| {
                let local = (idx as usize).checked_sub(compiled.num_imports() as usize)?;
                compiled.analysis.cost.as_ref()?.funcs.get(local)
            })
            .map(|fc| fc.total_cost)
            .unwrap_or(1)
            .max(1);
        let calibration = match self.calibration {
            0 => DEFAULT_COST_UNITS_PER_US,
            c => c,
        };
        let budget = config.budget_us_per_s.map(|us| {
            let rate = us.saturating_mul(calibration).max(1);
            // Burst capacity: one second's worth of work, and always at
            // least one invocation's charge so the bucket can ever admit.
            TokenBucket::new(rate, rate.max(admission_cost))
        });
        // Pool recycling adopts the cheapest reset the entry's effect
        // certificate licenses; runtime guards fall back to the full reset
        // whenever the certificate's preconditions do not hold dynamically.
        let reset_policy = compiled.reset_policy(&config.entry);
        let rf = Arc::new(RegisteredFunction {
            id,
            config,
            module: Arc::new(compiled),
            wasm_size,
            stats: FunctionStats::default(),
            metrics: (0..self.shards.max(1))
                .map(|_| PhaseHistograms::default())
                .collect(),
            pool: SandboxPool::with_policy(self.pool_capacity, reset_policy),
            admission_cost,
            budget,
            queue_p99: QueueP99Cache::default(),
        });
        self.functions.push(rf);
        self.by_name.insert(name, id);
        self.by_route.insert(route, id);
        Ok(id)
    }

    /// Apply the load-time analysis verdict: reject on error-severity lints,
    /// a stack bound over budget, a missing/over-budget preemption
    /// certificate, or a capability-policy violation; log warnings and
    /// update counters.
    fn gate_analysis(
        &self,
        config: &FunctionConfig,
        compiled: &CompiledModule,
    ) -> Result<(), RegisterError> {
        use std::sync::atomic::Ordering;
        let name = &config.name;
        let report = &compiled.analysis;
        let mut errors: Vec<Diagnostic> = report.with_severity(Severity::Error).cloned().collect();
        if let Some(budget) = self.stack_budget {
            if let Some(d) = report.check_stack(budget) {
                errors.push(d);
            }
        }
        if !errors.is_empty() {
            self.stats.modules_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(RegisterError::Analysis(errors));
        }
        // Certificate gate: every module must carry a preemption-latency
        // certificate; under a configured budget its gap must also fit.
        // (Splitting makes over-budget gaps rare — only a single opcode
        // heavier than the budget can produce one.)
        if let Some(d) = report.check_gap(self.check_gap.unwrap_or(u32::MAX)) {
            self.stats.modules_rejected.fetch_add(1, Ordering::Relaxed);
            self.stats
                .certificate_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(RegisterError::Certificate(d));
        }
        self.stats.cost_certified.fetch_add(1, Ordering::Relaxed);
        // Capability gate: deny-by-default host-call set and write-footprint
        // bound, both proven against the effect certificate. Modules without
        // a policy skip this entirely (and touch no capability counter).
        let mut capability_warn = None;
        if config.has_capability_policy() {
            let entry_idx = compiled
                .export(&config.entry)
                .expect("entry existence checked before gating");
            let mut violations: Vec<Diagnostic> = Vec::new();
            if let Some(allowed) = &config.allowed_hostcalls {
                violations.extend(report.check_hostcalls(entry_idx, allowed));
            }
            if let Some(max) = config.max_write_footprint_bytes {
                violations.extend(report.check_write_footprint(entry_idx, max));
            }
            if !violations.is_empty() {
                self.stats.modules_rejected.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .capability_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(RegisterError::Capability(violations));
            }
            self.stats
                .capability_certified
                .fetch_add(1, Ordering::Relaxed);
            if let Some(allowed) = &config.allowed_hostcalls {
                capability_warn = report.unused_grants(entry_idx, allowed);
            }
        }
        let mut warns = 0u64;
        for d in report
            .with_severity(Severity::Warn)
            .cloned()
            .chain(capability_warn)
        {
            eprintln!("[sledge] module {name:?}: {d}");
            warns += 1;
        }
        self.stats.modules_verified.fetch_add(1, Ordering::Relaxed);
        self.stats.lint_warnings.fetch_add(warns, Ordering::Relaxed);
        self.stats
            .checks_elided
            .fetch_add(u64::from(report.elided_sites), Ordering::Relaxed);
        Ok(())
    }

    /// Look up by id.
    pub fn get(&self, id: FunctionId) -> Option<&Arc<RegisteredFunction>> {
        self.functions.get(id.0 as usize)
    }

    /// Look up by function name.
    pub fn by_name(&self, name: &str) -> Option<&Arc<RegisteredFunction>> {
        self.by_name.get(name).and_then(|id| self.get(*id))
    }

    /// Look up by HTTP route.
    pub fn by_route(&self, route: &str) -> Option<&Arc<RegisteredFunction>> {
        self.by_route.get(route).and_then(|id| self.get(*id))
    }

    /// All registered functions.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<RegisteredFunction>> {
        self.functions.iter()
    }

    /// Registry counter snapshot with every function's warm-pool counters
    /// folded in (what `/stats` and `registry_stats()` report).
    pub fn stats_snapshot(&self) -> RegistryStatsSnapshot {
        let mut snap = self.stats.snapshot();
        for rf in &self.functions {
            snap.pool.merge(&rf.pool.snapshot());
        }
        snap
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sledge_guestc::dsl::*;
    use sledge_guestc::{FuncBuilder, ModuleBuilder};
    use sledge_wasm::types::ValType;

    fn tiny_module(name: &str) -> Module {
        let mut mb = ModuleBuilder::new(name);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(i32c(7))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        let m = tiny_module("seven");
        let wasm = sledge_wasm::encode::encode_module(&m);
        let id = r
            .register_wasm(FunctionConfig::new("seven"), &wasm, Tier::Optimized)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(id).unwrap().config.name, "seven");
        assert!(r.by_name("seven").is_some());
        assert!(r.by_route("/seven").is_some());
        assert!(r.by_name("eight").is_none());
        assert_eq!(r.get(id).unwrap().wasm_size, wasm.len());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut r = Registry::new();
        let m = tiny_module("dup");
        r.register_module(FunctionConfig::new("dup"), &m, Tier::Optimized, 0)
            .unwrap();
        assert!(matches!(
            r.register_module(FunctionConfig::new("dup"), &m, Tier::Optimized, 0),
            Err(RegisterError::DuplicateName(_))
        ));
    }

    #[test]
    fn missing_entry_rejected() {
        let mut r = Registry::new();
        let m = tiny_module("f");
        let mut cfg = FunctionConfig::new("f");
        cfg.entry = "not_main".into();
        assert!(matches!(
            r.register_module(cfg, &m, Tier::Optimized, 0),
            Err(RegisterError::NoEntry(_))
        ));
    }

    #[test]
    fn bad_wasm_rejected() {
        let mut r = Registry::new();
        assert!(matches!(
            r.register_wasm(FunctionConfig::new("x"), b"garbage", Tier::Optimized),
            Err(RegisterError::Decode(_))
        ));
    }

    /// A module the optimizer has real work on: an address loaded from
    /// memory (opaque to interval analysis, 0 at runtime) whose first
    /// checked access dominates later ones (elision claims), a constant
    /// preamble (folding), and a constant-condition branch (simplification
    /// plus a dead arm).
    fn optimizable_module(name: &str) -> Module {
        use sledge_guestc::Scalar;
        let mut mb = ModuleBuilder::new(name);
        mb.memory(1, Some(1));
        mb.data(8, b"opt!".to_vec());
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        let a = f.local(ValType::I32);
        let v = f.local(ValType::I32);
        let k = f.local(ValType::I32);
        f.push(set(a, load(Scalar::I32, i32c(0), 0)));
        f.push(store(Scalar::I32, local(a), 16, i32c(77)));
        f.push(store(Scalar::I32, local(a), 0, i32c(88)));
        f.push(set(v, load(Scalar::I32, local(a), 8)));
        f.push(set(k, add(mul(i32c(7), i32c(3)), i32c(100))));
        f.push(if_else(
            i32c(0),
            vec![set(v, add(local(v), i32c(1)))],
            vec![set(v, xor(local(v), local(k)))],
        ));
        f.push(ret(Some(add(local(v), load(Scalar::U8, i32c(9), 0)))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    fn run_main(module: Arc<CompiledModule>) -> Option<u64> {
        let mut inst = awsm::Instance::new(module, awsm::EngineConfig::default()).unwrap();
        inst.call_complete("main", &[], &mut awsm::NullHost)
            .unwrap()
    }

    #[test]
    fn corrupted_opt_certificate_falls_back_to_unoptimized() {
        let m = optimizable_module("tamper");
        let opts = TranslateOptions {
            max_check_gap: awsm::DEFAULT_MAX_CHECK_GAP,
            optimize: true,
        };
        // The expected observable behaviour, from an optimizer-off build.
        let plain = translate_with(
            &m,
            Tier::Optimized,
            TranslateOptions {
                optimize: false,
                ..opts
            },
        )
        .unwrap();
        let expect = run_main(Arc::new(plain));

        // Untampered registration validates the certificate and counts it.
        let mut r = Registry::new();
        let good = translate_with(&m, Tier::Optimized, opts).unwrap();
        assert!(good.analysis.opt.is_some());
        let id = r
            .register_compiled(FunctionConfig::new("good"), good, 0)
            .unwrap();
        let snap = r.stats.snapshot();
        assert_eq!((snap.opt_modules, snap.opt_fallbacks), (1, 0));
        assert!(r.get(id).unwrap().analysis().opt.is_some());
        assert_eq!(run_main(Arc::clone(&r.get(id).unwrap().module)), expect);

        // Tamper: un-elide one unchecked store while keeping its claim —
        // the certificate's site accounting no longer matches the body.
        let mut bad = translate_with(&m, Tier::Optimized, opts).unwrap();
        let mut tampered = false;
        'outer: for func in &mut bad.funcs {
            if let Some(cs) = &mut func.code_static {
                for op in cs.iter_mut() {
                    if let awsm::Op::StoreNc(kind, off) = *op {
                        *op = awsm::Op::Store(kind, off);
                        tampered = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(tampered, "workout must elide at least one store");
        assert!(awsm::validate_opt(&bad).is_err());

        // The registry must not reject the module: it reverts to the
        // preserved unoptimized bodies, counts the fallback, and serves.
        let id = r
            .register_compiled(FunctionConfig::new("tamper"), bad, 0)
            .unwrap();
        let snap = r.stats.snapshot();
        assert_eq!((snap.opt_modules, snap.opt_fallbacks), (1, 1));
        let rf = r.get(id).unwrap();
        assert!(
            rf.analysis().opt.is_none(),
            "fallback must strip the rejected certificate"
        );
        assert_eq!(run_main(Arc::clone(&rf.module)), expect);
    }

    #[test]
    fn strict_ingest_rejects_bad_certificate_instead_of_falling_back() {
        let m = optimizable_module("ingest");
        let opts = TranslateOptions {
            max_check_gap: awsm::DEFAULT_MAX_CHECK_GAP,
            optimize: true,
        };
        // An honest artifact passes the strict gate and registers.
        let mut r = Registry::new();
        let good = translate_with(&m, Tier::Optimized, opts).unwrap();
        assert!(good.analysis.opt.is_some());
        let id = r
            .register_artifact(FunctionConfig::new("good"), good, 0)
            .unwrap();
        assert!(r.get(id).unwrap().analysis().opt.is_some());
        assert_eq!(r.stats.snapshot().opt_modules, 1);

        // The same tamper the local path survives by reverting is a hard
        // rejection on the ingest path.
        let mut bad = translate_with(&m, Tier::Optimized, opts).unwrap();
        let mut tampered = false;
        'outer: for func in &mut bad.funcs {
            if let Some(cs) = &mut func.code_static {
                for op in cs.iter_mut() {
                    if let awsm::Op::StoreNc(kind, off) = *op {
                        *op = awsm::Op::Store(kind, off);
                        tampered = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(tampered, "workout must elide at least one store");
        let err = r
            .register_artifact(FunctionConfig::new("bad"), bad, 0)
            .unwrap_err();
        assert!(matches!(err, RegisterError::OptValidation(_)), "{err}");
        assert!(err.to_string().contains("certificate rejected"));
        // Rejected, not reverted: no fallback counted, nothing registered,
        // and the node keeps serving what it already has.
        let snap = r.stats.snapshot();
        assert_eq!(snap.opt_fallbacks, 0);
        assert_eq!(snap.modules_rejected, 1);
        assert_eq!(r.len(), 1);
        assert!(r.by_name("good").is_some());
        assert!(r.by_name("bad").is_none());
    }

    #[test]
    fn stack_budget_rejects_oversized_module() {
        let mut r = Registry::new();
        // One byte cannot hold any frame; every module is over budget.
        r.set_stack_budget(Some(1));
        let m = tiny_module("tiny");
        let err = r
            .register_module(FunctionConfig::new("tiny"), &m, Tier::Optimized, 0)
            .unwrap_err();
        let RegisterError::Analysis(diags) = err else {
            panic!("expected analysis rejection, got {err}");
        };
        assert!(diags.iter().any(|d| d.message.contains("exceeds budget")));
        assert!(r.is_empty(), "rejected module must not be registered");
        assert_eq!(r.stats.snapshot().modules_rejected, 1);
        // The same module passes under a sane budget.
        r.set_stack_budget(Some(1 << 20));
        r.register_module(FunctionConfig::new("tiny"), &m, Tier::Optimized, 0)
            .unwrap();
        assert_eq!(r.stats.snapshot().modules_verified, 1);
    }

    #[test]
    fn recursive_module_rejected_under_budget() {
        let mut mb = ModuleBuilder::new("rec");
        let fr = mb.declare("main", &[ValType::I32], Some(ValType::I32));
        let mut f = FuncBuilder::new(&[ValType::I32], Some(ValType::I32));
        let n = f.arg(0);
        f.push(if_(le_s(local(n), i32c(0)), vec![ret(Some(i32c(0)))]));
        f.push(ret(Some(call(fr, vec![sub(local(n), i32c(1))]))));
        mb.define(fr, f);
        mb.export_func(fr, "main");
        let m = mb.build().unwrap();
        let mut r = Registry::new();
        // Without a budget recursion is allowed (warn-level at most)...
        r.register_module(FunctionConfig::new("rec"), &m, Tier::Optimized, 0)
            .unwrap();
        // ...but any finite budget makes it unverifiable.
        let mut r2 = Registry::new();
        r2.set_stack_budget(Some(u64::MAX));
        let err = r2
            .register_module(FunctionConfig::new("rec"), &m, Tier::Optimized, 0)
            .unwrap_err();
        assert!(matches!(err, RegisterError::Analysis(_)), "{err}");
    }

    #[test]
    fn entry_unreachable_rejected_without_budget() {
        let mut mb = ModuleBuilder::new("boom");
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(sledge_guestc::Stmt::Unreachable);
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = mb.build().unwrap();
        let mut r = Registry::new();
        let err = r
            .register_module(FunctionConfig::new("boom"), &m, Tier::Optimized, 0)
            .unwrap_err();
        let RegisterError::Analysis(diags) = err else {
            panic!("expected analysis rejection, got {err}");
        };
        assert!(diags
            .iter()
            .any(|d| d.message.contains("traps unconditionally")));
        assert_eq!(r.stats.snapshot().modules_rejected, 1);
    }

    #[test]
    fn certificate_cached_and_counted() {
        let mut r = Registry::new();
        let m = tiny_module("cert");
        let id = r
            .register_module(FunctionConfig::new("cert"), &m, Tier::Optimized, 0)
            .unwrap();
        let rf = r.get(id).unwrap();
        let cost = rf
            .analysis()
            .cost
            .as_ref()
            .expect("translation always attaches a cost certificate");
        assert!(cost.within(awsm::DEFAULT_MAX_CHECK_GAP));
        assert_eq!(r.stats.snapshot().cost_certified, 1);
        assert_eq!(r.stats.snapshot().certificate_rejected, 0);
    }

    #[test]
    fn over_budget_certificate_rejected() {
        // A store op costs more than one unit, and no amount of check
        // splitting can slice a single opcode — so a 1-unit budget is
        // unsatisfiable for any module that touches memory.
        let mut mb = ModuleBuilder::new("heavy");
        mb.memory(1, Some(1));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(store_i32(i32c(0), i32c(42)));
        f.push(ret(Some(load_i32(i32c(0)))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = mb.build().unwrap();

        let mut r = Registry::new();
        r.set_check_gap(Some(1));
        let err = r
            .register_module(FunctionConfig::new("heavy"), &m, Tier::Optimized, 0)
            .unwrap_err();
        assert!(matches!(err, RegisterError::Certificate(_)), "{err}");
        assert!(err.to_string().contains("certificate"));
        assert!(r.is_empty());
        let snap = r.stats.snapshot();
        assert_eq!(snap.certificate_rejected, 1);
        assert_eq!(snap.modules_rejected, 1);

        // The translator splits to meet any budget a single op can fit in.
        let mut r2 = Registry::new();
        r2.set_check_gap(Some(awsm::DEFAULT_MAX_CHECK_GAP));
        let id = r2
            .register_module(FunctionConfig::new("heavy"), &m, Tier::Optimized, 0)
            .unwrap();
        let rf = r2.get(id).unwrap();
        let cost = rf.analysis().cost.as_ref().unwrap();
        assert!(cost.max_gap <= awsm::DEFAULT_MAX_CHECK_GAP);
        assert_eq!(r2.stats.snapshot().cost_certified, 1);
    }

    #[test]
    fn tight_budget_forces_splits() {
        // A long straight-line body under a small budget must come back
        // with split-inserted checks, and the certificate must honor it.
        let mut mb = ModuleBuilder::new("straight");
        mb.memory(1, Some(1));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        for i in 0..32 {
            f.push(store_i32(i32c(i * 4), mul(i32c(i), i32c(3))));
        }
        f.push(ret(Some(load_i32(i32c(0)))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = mb.build().unwrap();

        let mut r = Registry::new();
        r.set_check_gap(Some(8));
        let id = r
            .register_module(FunctionConfig::new("straight"), &m, Tier::Optimized, 0)
            .unwrap();
        let cost = r.get(id).unwrap().analysis().cost.clone().unwrap();
        assert!(cost.max_gap <= 8, "certified gap {} > budget", cost.max_gap);
        assert!(cost.splits > 0, "tight budget must force splits");
    }

    #[test]
    fn admission_cost_and_budget_from_certificate() {
        let mut r = Registry::new();
        r.set_calibration(100);
        let m = tiny_module("plain");
        let id = r
            .register_module(FunctionConfig::new("plain"), &m, Tier::Optimized, 0)
            .unwrap();
        let rf = r.get(id).unwrap();
        // The entry's certified total cost is the admission charge...
        let cert = rf.analysis().cost.as_ref().unwrap();
        let expect = cert.funcs[0].total_cost.max(1);
        assert_eq!(rf.admission_cost, expect);
        // ...and with no budget knob there is no bucket.
        assert!(rf.budget.is_none());

        let mut cfg = FunctionConfig::new("metered");
        cfg.budget_us_per_s = Some(2000);
        let id = r.register_module(cfg, &m, Tier::Optimized, 0).unwrap();
        let rf = r.get(id).unwrap();
        let b = rf.budget.as_ref().expect("budget knob arms a bucket");
        // 2000 µs/s × 100 units/µs.
        assert_eq!(b.rate(), 200_000);
        assert!(b.capacity() >= rf.admission_cost);
        // A fresh function has no queue samples: p99 reads zero.
        assert_eq!(rf.queue_p99_ns(1), 0);
    }

    fn hostcall_module(name: &str) -> Module {
        let mut mb = ModuleBuilder::new(name);
        mb.memory(1, Some(1));
        let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(call(req_len, vec![]))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        mb.build().unwrap()
    }

    #[test]
    fn capability_policy_denies_unlisted_hostcall() {
        let m = hostcall_module("gated");
        let mut r = Registry::new();
        let mut cfg = FunctionConfig::new("gated");
        // The module calls env::request_len; the policy only grants
        // response_write — deny-by-default must reject it.
        cfg.allowed_hostcalls = Some(vec!["env::response_write".into()]);
        let err = r.register_module(cfg, &m, Tier::Optimized, 0).unwrap_err();
        let RegisterError::Capability(diags) = &err else {
            panic!("expected capability rejection, got {err}");
        };
        assert!(diags[0].message.contains("request_len"), "{diags:?}");
        assert!(err.to_string().contains("capability policy rejected"));
        assert!(r.is_empty(), "rejected module must not be registered");
        let snap = r.stats.snapshot();
        assert_eq!(snap.capability_rejected, 1);
        assert_eq!(snap.modules_rejected, 1);
        assert_eq!(snap.modules_verified, 0);
        assert_eq!(snap.capability_certified, 0);
    }

    #[test]
    fn capability_policy_grants_reachable_hostcalls() {
        let m = hostcall_module("granted");
        let mut r = Registry::new();
        let mut cfg = FunctionConfig::new("granted");
        // Bare names match any import module.
        cfg.allowed_hostcalls = Some(vec!["request_len".into()]);
        r.register_module(cfg, &m, Tier::Optimized, 0).unwrap();
        let snap = r.stats.snapshot();
        assert_eq!(snap.capability_certified, 1);
        assert_eq!(snap.capability_rejected, 0);
        assert_eq!(snap.modules_verified, 1);
    }

    #[test]
    fn capability_grant_wider_than_needed_warns() {
        let m = hostcall_module("wide");
        let mut r = Registry::new();
        let mut cfg = FunctionConfig::new("wide");
        cfg.allowed_hostcalls = Some(vec![
            "env::request_len".into(),
            "env::launch_missiles".into(),
        ]);
        r.register_module(cfg, &m, Tier::Optimized, 0).unwrap();
        let snap = r.stats.snapshot();
        assert_eq!(snap.capability_certified, 1);
        assert!(
            snap.lint_warnings >= 1,
            "unused grant must surface as a warning"
        );
    }

    #[test]
    fn write_footprint_policy_enforced() {
        // Stores land at [0x8000, 0x8004): a 0x8000-byte cap must reject,
        // a 0x9000-byte cap must pass.
        let mut mb = ModuleBuilder::new("writer");
        mb.memory(1, Some(1));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(store_i32(i32c(0x8000), i32c(1)));
        f.push(ret(Some(i32c(0))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = mb.build().unwrap();

        let mut r = Registry::new();
        let mut cfg = FunctionConfig::new("writer");
        cfg.max_write_footprint_bytes = Some(0x8000);
        let err = r.register_module(cfg, &m, Tier::Optimized, 0).unwrap_err();
        assert!(matches!(err, RegisterError::Capability(_)), "{err}");
        assert_eq!(r.stats.snapshot().capability_rejected, 1);

        let mut cfg = FunctionConfig::new("writer");
        cfg.max_write_footprint_bytes = Some(0x9000);
        r.register_module(cfg, &m, Tier::Optimized, 0).unwrap();
        assert_eq!(r.stats.snapshot().capability_certified, 1);
    }

    #[test]
    fn no_policy_touches_no_capability_counter() {
        let m = hostcall_module("open");
        let mut r = Registry::new();
        r.register_module(FunctionConfig::new("open"), &m, Tier::Optimized, 0)
            .unwrap();
        let snap = r.stats.snapshot();
        assert_eq!(snap.capability_certified, 0);
        assert_eq!(snap.capability_rejected, 0);
    }

    #[test]
    fn warn_lints_counted_and_report_cached() {
        // A dead helper function: registered fine, but the warning is
        // counted and the cached report is reachable via the accessor.
        let mut mb = ModuleBuilder::new("warned");
        let mut h = FuncBuilder::new(&[], Some(ValType::I32));
        h.push(ret(Some(i32c(1))));
        mb.add_func("helper", h);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(i32c(2))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = mb.build().unwrap();
        let mut r = Registry::new();
        let id = r
            .register_module(FunctionConfig::new("warned"), &m, Tier::Optimized, 0)
            .unwrap();
        let snap = r.stats.snapshot();
        assert_eq!(snap.modules_verified, 1);
        assert!(snap.lint_warnings >= 1);
        let rf = r.get(id).unwrap();
        assert_eq!(rf.analysis().funcs.len(), 2);
        assert!(!rf.analysis().has_errors());
    }
}
