//! Weighted deficit-round-robin (DWRR) over per-tenant lanes.
//!
//! Replaces the worker's plain FIFO rotation when fairness is armed: each
//! function gets its own lane, and a lane may dispatch only while it holds
//! a positive *deficit* of fuel. Every time the rotation reaches a lane
//! whose deficit is spent, the lane is topped up by `weight × quantum`
//! (capped there, so an idle tenant cannot hoard credit) and the rotation
//! moves on. Workers charge each dispatch's *actual* fuel burn back against
//! the lane — classic DWRR uses the packet length; here the calibrated fuel
//! meter plays that role — so a tenant whose requests run long simply gets
//! scheduled proportionally less often, degrading its share smoothly
//! instead of starving anyone.
//!
//! Because a dispatch is admitted whenever the deficit is positive, a lane
//! can overdraw by at most one quantum's real burn; the overdraft carries
//! as negative deficit and is paid off by skipped turns, bounding any
//! tenant's excess share to one quantum per rotation.

use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
struct Lane<T> {
    items: VecDeque<T>,
    /// Fuel credit; dispatch requires `> 0`. May go negative (overdraft)
    /// when a dispatch burns past its remaining credit.
    deficit: i64,
    weight: u32,
    /// Whether the lane currently sits in the active rotation.
    active: bool,
}

/// A weighted deficit-round-robin queue keyed by tenant (function) id.
#[derive(Debug)]
pub struct Dwrr<T> {
    /// Fuel units one unweighted refill grants (the scheduler quantum).
    quantum: u64,
    lanes: HashMap<u32, Lane<T>>,
    /// Rotation of lanes with queued items, front = next to consider.
    active: VecDeque<u32>,
    len: usize,
    /// Times each lane was passed over while non-empty (its deficit was
    /// spent and another tenant took the core). Drained by
    /// [`Dwrr::take_deferrals`] into per-function counters.
    deferrals: HashMap<u32, u64>,
}

impl<T> Dwrr<T> {
    /// An empty queue with the given refill quantum (fuel units; clamped to
    /// ≥ 1 so refills always make progress).
    pub fn new(quantum: u64) -> Self {
        Dwrr {
            quantum: quantum.max(1),
            lanes: HashMap::new(),
            active: VecDeque::new(),
            len: 0,
            deferrals: HashMap::new(),
        }
    }

    /// Enqueue an item on `key`'s lane with the given weight (≥ 1; a
    /// lane's weight follows its most recent push).
    pub fn push(&mut self, key: u32, weight: u32, item: T) {
        let lane = self.lanes.entry(key).or_insert_with(|| Lane {
            items: VecDeque::new(),
            deficit: 0,
            weight: 1,
            active: false,
        });
        lane.weight = weight.max(1);
        lane.items.push_back(item);
        self.len += 1;
        if !lane.active {
            lane.active = true;
            self.active.push_back(key);
        }
    }

    /// Dequeue the next item under the DWRR discipline.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        loop {
            let key = *self.active.front()?;
            let lane = self.lanes.get_mut(&key).expect("active lane exists");
            if lane.items.is_empty() {
                // Lane drained since it was queued: retire it from the
                // rotation. Unspent credit is forfeited (no hoarding), but
                // an overdraft is still owed.
                lane.active = false;
                lane.deficit = lane.deficit.min(0);
                self.active.pop_front();
                continue;
            }
            if lane.deficit <= 0 {
                let refill = (lane.weight as i64).saturating_mul(self.quantum as i64);
                lane.deficit = lane.deficit.saturating_add(refill).min(refill);
                if self.active.len() > 1 {
                    // Someone else gets the core first; count the pass-over.
                    *self.deferrals.entry(key).or_insert(0) += 1;
                    self.active.rotate_left(1);
                }
                // Sole lane: keep refilling in place until it may run.
                continue;
            }
            self.len -= 1;
            return lane.items.pop_front();
        }
    }

    /// Charge `used` fuel units against `key`'s lane (the actual burn of
    /// the dispatch that [`Dwrr::pop`] granted).
    pub fn charge(&mut self, key: u32, used: u64) {
        if let Some(lane) = self.lanes.get_mut(&key) {
            lane.deficit = lane
                .deficit
                .saturating_sub(used.min(i64::MAX as u64) as i64);
        }
    }

    /// Queued items across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove and return every queued item (force-kill sweeps). Lane order
    /// is unspecified; item order within a lane is preserved.
    pub fn drain(&mut self) -> Vec<T> {
        self.active.clear();
        self.len = 0;
        let mut out = Vec::new();
        for lane in self.lanes.values_mut() {
            lane.active = false;
            lane.deficit = lane.deficit.min(0);
            out.extend(lane.items.drain(..));
        }
        out
    }

    /// Drain the per-lane pass-over counters accumulated since the last
    /// call (empty when nothing was deferred — the common case — so
    /// callers can skip their flush cheaply).
    pub fn take_deferrals(&mut self) -> Vec<(u32, u64)> {
        if self.deferrals.is_empty() {
            return Vec::new();
        }
        self.deferrals.drain().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the queue like a worker: pop, "run" (charge a per-tenant
    /// cost), refill lanes so they never empty, for `rounds` dispatches.
    /// Returns dispatch counts per key.
    fn simulate(costs: &[(u32, u32, u64)], quantum: u64, rounds: usize) -> HashMap<u32, usize> {
        let mut q: Dwrr<u32> = Dwrr::new(quantum);
        for &(key, weight, _) in costs {
            q.push(key, weight, key);
        }
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for _ in 0..rounds {
            let key = q.pop().expect("lanes kept non-empty");
            let &(_, weight, cost) = costs.iter().find(|(k, _, _)| *k == key).unwrap();
            q.charge(key, cost);
            *counts.entry(key).or_insert(0) += 1;
            q.push(key, weight, key); // keep the lane backlogged
        }
        counts
    }

    #[test]
    fn equal_weight_tenants_split_work_within_ten_percent() {
        // Tenant 0's requests burn 3× tenant 1's per dispatch; equal
        // weights must still equalize *fuel* share: over 1000 dispatches
        // each tenant's total burn lands within 10% of half.
        let costs = [(0u32, 1u32, 3000u64), (1, 1, 1000)];
        let counts = simulate(&costs, 1000, 1000);
        let burn0 = counts[&0] as u64 * 3000;
        let burn1 = counts[&1] as u64 * 1000;
        let total = burn0 + burn1;
        for (key, burn) in [(0, burn0), (1, burn1)] {
            let share = burn as f64 / total as f64;
            assert!(
                (share - 0.5).abs() < 0.05,
                "tenant {key}: fuel share {share:.3} (counts {counts:?})"
            );
        }
        // Sanity: equal fuel share means unequal dispatch counts (≈ 1:3).
        assert!(counts[&1] > counts[&0] * 2, "{counts:?}");
    }

    #[test]
    fn weights_skew_shares_proportionally() {
        // Weight 3 vs 1, identical per-dispatch cost → ≈ 75% / 25%.
        let costs = [(0u32, 3u32, 1000u64), (1, 1, 1000)];
        let counts = simulate(&costs, 1000, 1000);
        let share0 = counts[&0] as f64 / 1000.0;
        assert!((share0 - 0.75).abs() < 0.05, "{counts:?}");
    }

    #[test]
    fn no_tenant_starves_under_a_hog() {
        // A hog burning 50 quanta per dispatch cannot starve the mouse:
        // the mouse keeps dispatching while the hog pays off overdraft.
        let costs = [(0u32, 1u32, 50_000u64), (1, 1, 100)];
        let counts = simulate(&costs, 1000, 500);
        assert!(counts[&0] >= 1, "{counts:?}");
        assert!(counts[&1] >= 400, "mouse starved: {counts:?}");
    }

    #[test]
    fn single_lane_fifo_order() {
        let mut q: Dwrr<u32> = Dwrr::new(10);
        for i in 0..5 {
            q.push(7, 1, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn deferrals_counted_when_passed_over() {
        let mut q: Dwrr<u32> = Dwrr::new(10);
        q.push(0, 1, 0);
        q.push(1, 1, 1);
        // Burn lane 0 deep into overdraft; next rotation must pass it over
        // (counting deferrals) while lane 1 dispatches.
        assert_eq!(q.pop(), Some(0));
        q.charge(0, 100);
        q.push(0, 1, 0);
        assert_eq!(q.pop(), Some(1));
        let defs: HashMap<u32, u64> = q.take_deferrals().into_iter().collect();
        assert!(defs.get(&0).copied().unwrap_or(0) >= 1, "{defs:?}");
        // Counters reset after draining.
        assert!(q.take_deferrals().is_empty());
    }

    #[test]
    fn drain_returns_everything() {
        let mut q: Dwrr<u32> = Dwrr::new(10);
        for i in 0..4 {
            q.push(i % 2, 1, i);
        }
        let mut all = q.drain();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
        // Reusable after a drain.
        q.push(9, 1, 42);
        assert_eq!(q.pop(), Some(42));
    }
}
