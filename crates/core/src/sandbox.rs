//! Sandboxes: one per request, created by the listener, executed by workers.
//!
//! A sandbox couples an `awsm::Instance` with the request body, the response
//! buffer, and the host-call surface the guest sees (the paper's
//! stdin/stdout-over-HTTP plus asynchronous I/O).

use crate::fault::FaultPlan;
use crate::registry::{FunctionId, RegisteredFunction};
use awsm::{
    EngineConfig, Host, HostImport, HostOutcome, Instance, InstanceError, LinearMemory, StepResult,
    Trap,
};
use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a request finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Guest returned; body is the guest's stdout.
    Success(Vec<u8>),
    /// Guest trapped.
    Trapped(Trap),
    /// Request rejected before execution (admission control or routing).
    Rejected(&'static str),
    /// Guest killed at its execution deadline.
    TimedOut,
    /// Request fast-rejected because the function's circuit breaker is
    /// open; `retry_after` hints when the next probe will be admitted.
    CircuitOpen {
        /// Suggested client back-off.
        retry_after: Duration,
    },
    /// Request rejected by admission control (429): work budget exhausted,
    /// queue-phase SLO exceeded, or shed by the in-flight cap.
    Throttled {
        /// Suggested client back-off (budget refill time, or the SLO span).
        retry_after: Duration,
        /// Which admission gate rejected, for the response body and logs.
        why: &'static str,
    },
}

/// Timing record for one request, used by the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timings {
    /// When the request was accepted by the listener.
    pub arrival: Instant,
    /// Sandbox allocation (instantiation) time.
    pub instantiation: Duration,
    /// Time spent waiting for the first dispatch on a worker (enqueue →
    /// first run, excluding instantiation).
    pub queue_delay: Duration,
    /// Accumulated guest execution time.
    pub execution: Duration,
    /// Accumulated time parked on a runqueue after being preempted.
    pub preempted: Duration,
    /// Accumulated time parked on blocked (emulated) I/O, including the
    /// wake → redispatch latency.
    pub blocked: Duration,
    /// Arrival → response completion.
    pub total: Duration,
    /// Number of times the sandbox was preempted.
    pub preemptions: u32,
}

/// The completed response delivered to the invoker.
#[derive(Debug)]
pub struct Completion {
    /// Which function ran.
    pub function: FunctionId,
    /// Result.
    pub outcome: Outcome,
    /// Timings.
    pub timings: Timings,
}

/// The host-call surface one sandbox sees.
#[derive(Debug)]
pub struct SandboxHost {
    /// Request body ("stdin").
    pub request: Bytes,
    /// Response buffer ("stdout").
    pub response: Vec<u8>,
    /// Monotonic epoch for `clock_ns`.
    pub epoch: Instant,
    /// Deadline for an in-flight emulated async I/O (`io_delay`).
    pub io_deadline: Option<Instant>,
    /// Total host calls serviced (for tests/metrics).
    pub calls: u64,
    /// Fault-injection plan, if chaos testing is enabled.
    fault: Option<FaultPlan>,
    /// Listener-assigned invocation sequence number (fault decisions key
    /// off it).
    seq: u64,
    /// Logical host-call index: advances only on fresh calls, not on
    /// re-issues of a blocked call, so fault decisions are independent of
    /// scheduling timing.
    logical_calls: u64,
    /// Deadline of an injected-latency stall (mirrors into `io_deadline`
    /// so workers park the sandbox like real blocked I/O).
    fault_delay: Option<Instant>,
}

impl SandboxHost {
    fn new(request: Bytes, epoch: Instant) -> Self {
        SandboxHost {
            request,
            response: Vec::new(),
            epoch,
            io_deadline: None,
            calls: 0,
            fault: None,
            seq: 0,
            logical_calls: 0,
            fault_delay: None,
        }
    }
}

impl Host for SandboxHost {
    fn call(
        &mut self,
        _idx: u32,
        import: &HostImport,
        args: &[u64],
        memory: &mut LinearMemory,
    ) -> HostOutcome {
        self.calls += 1;
        // Fault injection runs before dispatch. An armed injected stall is
        // serviced like blocked I/O (re-issues stay Pending until its
        // deadline); a fresh call consumes one logical index and may trap
        // or stall per the plan. Re-issues of a genuinely blocked call
        // (io_deadline armed) bypass injection entirely so decisions stay
        // deterministic under any scheduling interleaving.
        if let Some(d) = self.fault_delay {
            if Instant::now() < d {
                return HostOutcome::Pending;
            }
            self.fault_delay = None;
            self.io_deadline = None;
        } else if self.io_deadline.is_none() {
            let idx = self.logical_calls;
            self.logical_calls += 1;
            if let Some(plan) = self.fault {
                if plan.trap_host_call(self.seq, idx) {
                    return HostOutcome::Trap(Trap::Unreachable);
                }
                if let Some(delay) = plan.delay_host_call(self.seq, idx) {
                    let deadline = Instant::now() + delay;
                    self.fault_delay = Some(deadline);
                    self.io_deadline = Some(deadline);
                    return HostOutcome::Pending;
                }
            }
        }
        if import.module != "env" {
            return HostOutcome::Trap(Trap::Unreachable);
        }
        match import.name.as_str() {
            // i32 request_len()
            "request_len" => HostOutcome::Value(self.request.len() as u32 as u64),
            // i32 request_read(dst: i32, len: i32, src_off: i32)
            "request_read" => {
                let dst = args[0] as u32;
                let len = args[1] as u32 as usize;
                let off = args[2] as u32 as usize;
                if off >= self.request.len() {
                    return HostOutcome::Value(0);
                }
                let n = len.min(self.request.len() - off);
                match memory.write_bytes(dst, &self.request[off..off + n]) {
                    Ok(()) => HostOutcome::Value(n as u64),
                    Err(t) => HostOutcome::Trap(t),
                }
            }
            // i32 response_write(src: i32, len: i32)
            "response_write" => {
                let src = args[0] as u32;
                let len = args[1] as u32;
                match memory.read_bytes(src, len) {
                    Ok(bytes) => {
                        self.response.extend_from_slice(bytes);
                        HostOutcome::Value(len as u64)
                    }
                    Err(t) => HostOutcome::Trap(t),
                }
            }
            // i64 clock_ns()
            "clock_ns" => HostOutcome::Value(self.epoch.elapsed().as_nanos() as u64),
            // i32 io_delay(micros: i32) — emulated asynchronous I/O: the
            // first call arms a deadline and blocks; re-issues complete once
            // the deadline passes.
            "io_delay" => match self.io_deadline {
                None => {
                    let micros = args[0] as u32 as u64;
                    self.io_deadline = Some(Instant::now() + Duration::from_micros(micros));
                    HostOutcome::Pending
                }
                Some(d) => {
                    if Instant::now() >= d {
                        self.io_deadline = None;
                        HostOutcome::Value(0)
                    } else {
                        HostOutcome::Pending
                    }
                }
            },
            _ => HostOutcome::Trap(Trap::Unreachable),
        }
    }
}

/// What a sandbox is currently waiting for while off-CPU; decides which
/// phase accumulator its wait is charged to at the next dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitKind {
    /// Enqueued, never run (listener → first dispatch).
    Queue,
    /// Preempted back onto a runqueue.
    Preempted,
    /// Parked on blocked (emulated) I/O.
    Blocked,
}

/// A request in execution: instance + host + bookkeeping.
pub struct Sandbox {
    /// The function being run.
    pub function: Arc<RegisteredFunction>,
    /// The engine instance.
    pub instance: Instance,
    /// Host surface.
    pub host: SandboxHost,
    /// Where the completion goes.
    pub responder: crate::listener::AnyResponder,
    /// Timing bookkeeping.
    pub arrival: Instant,
    /// Instantiation cost (measured by the listener).
    pub instantiation: Duration,
    /// First time a worker started running this sandbox.
    pub first_run: Option<Instant>,
    /// Accumulated execution time.
    pub exec_time: Duration,
    /// When the current off-CPU wait began (instantiation end, preemption,
    /// or I/O park).
    pub(crate) wait_since: Instant,
    /// Which phase the current wait is charged to.
    pub(crate) wait_kind: WaitKind,
    /// Accumulated enqueue → first-dispatch wait.
    pub queue_wait: Duration,
    /// Accumulated preemption → redispatch wait.
    pub preempted_wait: Duration,
    /// Accumulated I/O park → redispatch wait.
    pub blocked_wait: Duration,
    /// Preemption count.
    pub preemptions: u32,
    /// Wall-clock execution deadline; workers kill the sandbox with
    /// [`Outcome::TimedOut`] when it is (re)scheduled past this instant.
    pub deadline: Option<Instant>,
    /// Whether this invocation is a circuit breaker's half-open probe (its
    /// outcome decides whether the breaker closes or re-opens).
    pub breaker_probe: bool,
    /// Whether the instance came warm from the function's sandbox pool
    /// (rather than cold instantiation).
    pub pool_hit: bool,
    /// Tokens charged against the function's work budget at admission;
    /// the worker trues this up against `Instance::fuel_used` at
    /// completion. `None` when the function carries no budget.
    pub budget_charge: Option<u64>,
}

impl Sandbox {
    /// Allocate a sandbox for `function` with the given request body — the
    /// paper's µs-level function startup path.
    ///
    /// # Errors
    ///
    /// On [`InstanceError`] (e.g. data segments out of bounds) the
    /// responder is handed back so the caller can still deliver a
    /// completion — a failed instantiation must not strand the client.
    pub fn new(
        function: Arc<RegisteredFunction>,
        engine: EngineConfig,
        body: Bytes,
        responder: crate::listener::AnyResponder,
        epoch: Instant,
    ) -> Result<Box<Sandbox>, (InstanceError, crate::listener::AnyResponder)> {
        let arrival = Instant::now();
        // Warm path: pop a reset-and-ready instance from the function's
        // pool. The acquire happens *inside* the measured window, so a pool
        // hit records its (near-zero) cost in the `instantiation` phase
        // histogram — not smeared into `queue` — and the phase invariant
        // `sum of phases <= total` is preserved by construction.
        let (instance, pool_hit) = match function.pool.acquire(&engine) {
            Some(i) => (i, true),
            None => match Instance::new(Arc::clone(&function.module), engine) {
                Ok(i) => (i, false),
                Err(e) => return Err((e, responder)),
            },
        };
        let instantiation = arrival.elapsed();
        Ok(Box::new(Sandbox {
            function,
            instance,
            host: SandboxHost::new(body, epoch),
            responder,
            arrival,
            instantiation,
            first_run: None,
            exec_time: Duration::ZERO,
            wait_since: Instant::now(),
            wait_kind: WaitKind::Queue,
            queue_wait: Duration::ZERO,
            preempted_wait: Duration::ZERO,
            blocked_wait: Duration::ZERO,
            preemptions: 0,
            deadline: None,
            breaker_probe: false,
            pool_hit,
            budget_charge: None,
        }))
    }

    /// Attach a fault-injection plan and this invocation's sequence number
    /// (decisions key off both).
    pub fn set_fault(&mut self, plan: FaultPlan, seq: u64) {
        self.host.fault = Some(plan);
        self.host.seq = seq;
    }

    /// The fault plan and sequence number attached by the listener, if any
    /// (workers consult them for the pool-poisoning decision at retirement).
    pub(crate) fn fault(&self) -> Option<(FaultPlan, u64)> {
        self.host.fault.map(|p| (p, self.host.seq))
    }

    /// Start the entry function. Must be called once before `run_quantum`.
    ///
    /// # Errors
    ///
    /// Propagates [`InstanceError`] (unknown entry, arity mismatch).
    pub fn start(&mut self) -> Result<(), InstanceError> {
        let entry = self.function.config.entry.clone();
        let args = self.function.config.args.clone();
        self.instance.invoke_export(&entry, &args)
    }

    /// Close out the current off-CPU wait: charge `now − wait_since` to the
    /// phase accumulator named by `wait_kind`. Workers call this at every
    /// (re)dispatch — including the dispatch that kills a sandbox at its
    /// deadline, so killed invocations account their waits too.
    pub(crate) fn note_dispatch(&mut self, now: Instant) {
        let waited = now.saturating_duration_since(self.wait_since);
        match self.wait_kind {
            WaitKind::Queue => self.queue_wait += waited,
            WaitKind::Preempted => self.preempted_wait += waited,
            WaitKind::Blocked => self.blocked_wait += waited,
        }
        self.wait_since = now;
    }

    /// Begin a new off-CPU wait of the given kind (preemption requeue or
    /// I/O park).
    pub(crate) fn begin_wait(&mut self, kind: WaitKind, now: Instant) {
        self.wait_since = now;
        self.wait_kind = kind;
    }

    /// Run one scheduling quantum; updates accounting.
    pub fn run_quantum(&mut self, fuel: u64) -> StepResult {
        let started = Instant::now();
        if self.first_run.is_none() {
            self.first_run = Some(started);
        }
        let r = self.instance.run(&mut self.host, fuel);
        self.exec_time += started.elapsed();
        if matches!(r, StepResult::Preempted) {
            self.preemptions += 1;
        }
        r
    }

    /// Build the final timing record from the phase accumulators.
    pub fn timings(&self, now: Instant) -> Timings {
        Timings {
            arrival: self.arrival,
            instantiation: self.instantiation,
            queue_delay: self.queue_wait,
            execution: self.exec_time,
            preempted: self.preempted_wait,
            blocked: self.blocked_wait,
            total: now.duration_since(self.arrival),
            preemptions: self.preemptions,
        }
    }
}
