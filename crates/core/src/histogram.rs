//! Lock-free log-bucketed latency histograms — the always-on substrate for
//! the invocation-lifecycle observability layer.
//!
//! Each [`Histogram`] is a fixed-size array of relaxed atomics: recording a
//! sample is a handful of `fetch_add`/`fetch_min`/`fetch_max` operations
//! with no allocation, no locks, and no fences, so it is safe to leave on
//! the hot path (workers record one batch per completed invocation).
//! Workers write to per-worker *shards* ([`PhaseHistograms`] instances);
//! readers merge shard [`HistogramSnapshot`]s, which is where all the
//! (cheap, non-hot-path) aggregation happens.
//!
//! Bucketing: values 0..15 ns get exact unit buckets; above that each
//! power-of-two octave is split into 4 sub-buckets (2 significant bits),
//! bounding the relative quantile error at 25 % while covering the full
//! `u64` nanosecond range in [`BUCKETS`] = 256 slots.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in every histogram: 16 unit buckets + 60 octaves × 4
/// sub-buckets.
pub const BUCKETS: usize = 256;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns < 16 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros() as usize; // >= 4
    let sub = ((ns >> (octave - 2)) & 3) as usize;
    (octave - 4) * 4 + sub + 16
}

/// The inclusive `[lo, hi]` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS);
    if i < 16 {
        return (i as u64, i as u64);
    }
    let b = i - 16;
    let octave = b / 4 + 4;
    let sub = (b % 4) as u64;
    let width = 1u64 << (octave - 2);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo + (width - 1))
}

/// A lock-free histogram of nanosecond values.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Record one sample. Hot path: five relaxed atomic RMWs, nothing else.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.counts[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recording may tear between fields
    /// (`count` can lag a bucket increment by one sample); merged totals
    /// are exact once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A mergeable point-in-time copy of a [`Histogram`] (or of several merged
/// shards).
#[derive(Clone, Copy)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish_non_exhaustive()
    }
}

impl PartialEq for HistogramSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts == other.counts
    }
}

impl Eq for HistogramSnapshot {}

impl HistogramSnapshot {
    /// Fold another snapshot (e.g. a sibling worker shard) into this one.
    /// Merging is commutative and associative: any merge order over the
    /// same shard set produces the identical snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (ns).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (ns), or `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }

    /// Estimated `q`-quantile in nanoseconds (`q` in `[0, 1]`): the upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped into `[min, max]` so the estimate can
    /// never leave the range of genuinely recorded values. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        // Tearing during a live snapshot can leave count > Σcounts; fall
        // back to the observed maximum.
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every bucket's range is non-empty, contiguous with its neighbour,
        // and maps back to itself through bucket_of.
        let mut expect_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} not contiguous");
            assert!(hi >= lo);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(expect_lo, 0, "last bucket must end at u64::MAX");
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn recorded_values_land_in_their_bucket() {
        // Deterministic pseudo-random sample set (no external crates): the
        // same splitmix-style generator the fault plan uses.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x
        };
        let h = Histogram::default();
        for _ in 0..10_000 {
            let v = next() >> (next() % 60); // cover many magnitudes
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            assert!((lo..=hi).contains(&v), "{v} outside bucket {b}");
            h.record(v);
        }
        assert_eq!(h.snapshot().count(), 10_000);
    }

    #[test]
    fn quantiles_bounded_by_min_and_max() {
        let h = Histogram::default();
        let values = [3u64, 17, 17, 90, 1_000, 12_345, 999_999_999];
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.max(), Some(999_999_999));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            assert!((3..=999_999_999).contains(&est), "q={q} est={est}");
        }
        // The p50 estimate is within one bucket (≤25 % relative error) of
        // the true median (90).
        let p50 = s.quantile(0.5);
        let (lo, hi) = bucket_bounds(bucket_of(90));
        assert!((lo..=hi).contains(&p50), "p50={p50}");
    }

    #[test]
    fn merge_is_order_independent_and_lossless() {
        let shards: Vec<Histogram> = (0..4).map(|_| Histogram::default()).collect();
        let mut n = 0u64;
        for (i, sh) in shards.iter().enumerate() {
            for k in 0..100 {
                sh.record((i as u64 + 1) * 1000 + k * 37);
                n += 1;
            }
        }
        let snaps: Vec<_> = shards.iter().map(Histogram::snapshot).collect();
        let merge_in = |order: &[usize]| {
            let mut acc = HistogramSnapshot::default();
            for &i in order {
                acc.merge(&snaps[i]);
            }
            acc
        };
        let a = merge_in(&[0, 1, 2, 3]);
        let b = merge_in(&[3, 1, 0, 2]);
        let c = merge_in(&[2, 3, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.count(), n);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.99), 0);
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..25_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 100_000);
    }
}
