//! Invocation-lifecycle metrics: per-phase latency shards, the merged
//! [`LatencyReport`], and the `/metrics` (Prometheus text) and `/stats`
//! (JSON) renderings.
//!
//! Every completed invocation is decomposed into phases (queue wait,
//! instantiation, pure execution, preempted time, blocked time, end-to-end
//! total) and recorded into one [`PhaseHistograms`] *shard*. Each worker
//! owns a private shard per key (one global, one per function), so the hot
//! path touches only cache lines no other worker writes; readers merge
//! shard snapshots on demand.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::pool::PoolStatsSnapshot;
use crate::sandbox::Timings;
use crate::stats::StatsSnapshot;
use crate::Shared;
use sledge_http::ConnSnapshot;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The lifecycle phases a latency sample is split into, in render order.
pub const PHASES: [&str; 6] = [
    "queue",
    "instantiation",
    "execution",
    "preempted",
    "blocked",
    "total",
];

/// One shard of per-phase histograms (one per worker per key).
#[derive(Debug, Default)]
pub struct PhaseHistograms {
    /// Enqueue → first dispatch on a worker.
    pub queue: Histogram,
    /// Sandbox allocation on the listener.
    pub instantiation: Histogram,
    /// Accumulated guest execution.
    pub execution: Histogram,
    /// Time parked on the runqueue after preemption.
    pub preempted: Histogram,
    /// Time parked on the I/O wait list (includes wake → redispatch).
    pub blocked: Histogram,
    /// Arrival → completion delivery.
    pub total: Histogram,
}

impl PhaseHistograms {
    /// Record one finished invocation's phase breakdown.
    #[inline]
    pub fn record(&self, t: &Timings) {
        self.queue.record(t.queue_delay.as_nanos() as u64);
        self.instantiation.record(t.instantiation.as_nanos() as u64);
        self.execution.record(t.execution.as_nanos() as u64);
        self.preempted.record(t.preempted.as_nanos() as u64);
        self.blocked.record(t.blocked.as_nanos() as u64);
        self.total.record(t.total.as_nanos() as u64);
    }

    /// Point-in-time copy of all phases.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            queue: self.queue.snapshot(),
            instantiation: self.instantiation.snapshot(),
            execution: self.execution.snapshot(),
            preempted: self.preempted.snapshot(),
            blocked: self.blocked.snapshot(),
            total: self.total.snapshot(),
        }
    }
}

/// Merged (or single-shard) snapshot of every phase histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseSnapshot {
    pub queue: HistogramSnapshot,
    pub instantiation: HistogramSnapshot,
    pub execution: HistogramSnapshot,
    pub preempted: HistogramSnapshot,
    pub blocked: HistogramSnapshot,
    pub total: HistogramSnapshot,
}

impl PhaseSnapshot {
    /// Fold another snapshot into this one, phase by phase.
    pub fn merge(&mut self, other: &PhaseSnapshot) {
        self.queue.merge(&other.queue);
        self.instantiation.merge(&other.instantiation);
        self.execution.merge(&other.execution);
        self.preempted.merge(&other.preempted);
        self.blocked.merge(&other.blocked);
        self.total.merge(&other.total);
    }

    /// Merge a set of shards into one snapshot.
    pub fn merge_shards(shards: &[PhaseHistograms]) -> PhaseSnapshot {
        let mut acc = PhaseSnapshot::default();
        for s in shards {
            acc.merge(&s.snapshot());
        }
        acc
    }

    /// The phases in render order, labelled.
    pub fn phases(&self) -> [(&'static str, &HistogramSnapshot); 6] {
        [
            (PHASES[0], &self.queue),
            (PHASES[1], &self.instantiation),
            (PHASES[2], &self.execution),
            (PHASES[3], &self.preempted),
            (PHASES[4], &self.blocked),
            (PHASES[5], &self.total),
        ]
    }

    /// Samples recorded (every phase records once per invocation, so any
    /// phase's count is the invocation count; `total` is canonical).
    pub fn count(&self) -> u64 {
        self.total.count()
    }
}

/// Per-function admission-control counters for the fairness subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionFnSnapshot {
    /// Requests admitted past every gate (dispatched to a worker).
    pub admitted: u64,
    /// Requests shed (429) by the global in-flight cap.
    pub shed: u64,
    /// Requests rejected (429) on an empty work budget.
    pub budget_rejected: u64,
    /// Requests rejected (429) on a blown queue-phase p99 SLO.
    pub slo_rejected: u64,
    /// DWRR lane pass-overs while this function's deficit was spent.
    pub dwrr_deferrals: u64,
    /// Current work-budget balance in tokens, when a budget is armed.
    pub budget_balance: Option<u64>,
}

/// The admission-control view: present in a [`LatencyReport`] only when
/// some part of the fairness subsystem is armed (DWRR, an in-flight cap,
/// a budget, or a queue SLO), so a fully disarmed runtime renders output
/// byte-identical to one without the subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionReport {
    /// Whether DWRR scheduling is on.
    pub fairness: bool,
    /// Global in-flight cap (0 = uncapped).
    pub max_inflight: usize,
    /// Per-function admission counters, in registration order.
    pub per_function: Vec<(String, AdmissionFnSnapshot)>,
}

/// Capability-policy counters: present in a [`LatencyReport`] only when at
/// least one module was gated by a policy (certified or rejected), so a
/// runtime with no policies configured renders output byte-identical to one
/// without the subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CapabilityReport {
    /// Modules whose effect certificate satisfied their policy.
    pub certified: u64,
    /// Modules rejected by a policy.
    pub rejected: u64,
}

/// Optimizer-gate counters: translation-validation verdicts at
/// registration. `None` in [`LatencyReport`] while no optimized module has
/// been gated, keeping opt-off output byte-identical to a runtime without
/// the optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptGateReport {
    /// Modules registered with a validated optimization certificate.
    pub optimized: u64,
    /// Modules reverted to unoptimized bodies on certificate failure.
    pub fallbacks: u64,
}

/// The merged latency view over every worker shard: global plus
/// per-function breakdowns. Produced by [`crate::Runtime::latency_report`]
/// and by the `/metrics` / `/stats` endpoints.
#[derive(Debug, Clone, Default)]
pub struct LatencyReport {
    /// All invocations, across functions.
    pub global: PhaseSnapshot,
    /// Per-function breakdowns, in registration order.
    pub per_function: Vec<(String, PhaseSnapshot)>,
    /// Warm sandbox-pool counters summed over all functions. All-zero
    /// (capacity 0) when pooling is disabled — the renderers then emit no
    /// pool series at all, keeping the disabled output byte-for-byte
    /// identical to a runtime without the subsystem.
    pub pool: PoolStatsSnapshot,
    /// Admission-control counters; `None` when the fairness subsystem is
    /// fully disarmed (same discipline as the pool's capacity-0 gate).
    pub admission: Option<AdmissionReport>,
    /// Capability-policy counters; `None` when no module set a policy
    /// (same byte-identity discipline as the pool and admission gates).
    pub capability: Option<CapabilityReport>,
    /// Optimizer-gate counters; `None` until an optimized module has been
    /// gated (same byte-identity discipline as the sections above).
    pub opt: Option<OptGateReport>,
    /// Connection-lifecycle counters from the HTTP front end; `None` when
    /// the runtime serves no HTTP (same byte-identity discipline as the
    /// other gated sections).
    pub connections: Option<ConnSnapshot>,
}

/// A cheap, clonable handle for reading runtime metrics without holding the
/// [`crate::Runtime`] itself — `sledged`'s periodic reporter thread and the
/// bench binaries use it.
#[derive(Clone)]
pub struct MetricsHandle {
    pub(crate) shared: Arc<Shared>,
}

impl MetricsHandle {
    /// Merged latency report (see [`crate::Runtime::latency_report`]).
    pub fn latency_report(&self) -> LatencyReport {
        self.shared.latency_report()
    }

    /// Global counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }
}

impl Shared {
    /// Merge every worker shard into the global + per-function report.
    pub(crate) fn latency_report(&self) -> LatencyReport {
        let global = PhaseSnapshot::merge_shards(&self.phase_shards);
        let registry = self.registry.read();
        let per_function = registry
            .iter()
            .map(|rf| {
                (
                    rf.config.name.clone(),
                    PhaseSnapshot::merge_shards(&rf.metrics),
                )
            })
            .collect();
        let mut pool = PoolStatsSnapshot::default();
        for rf in registry.iter() {
            pool.merge(&rf.pool.snapshot());
        }
        // The admission view exists only when some part of the fairness
        // subsystem is armed; otherwise the report (and thus every
        // rendering) is identical to a runtime without it.
        let armed = self.config.fairness
            || self.config.max_inflight > 0
            || registry
                .iter()
                .any(|rf| rf.budget.is_some() || rf.config.queue_slo.is_some());
        let admission = armed.then(|| {
            let now = self.now_ns();
            AdmissionReport {
                fairness: self.config.fairness,
                max_inflight: self.config.max_inflight,
                per_function: registry
                    .iter()
                    .map(|rf| {
                        let s = &rf.stats;
                        (
                            rf.config.name.clone(),
                            AdmissionFnSnapshot {
                                admitted: s.admitted.load(Ordering::Relaxed),
                                shed: s.shed.load(Ordering::Relaxed),
                                budget_rejected: s.budget_rejected.load(Ordering::Relaxed),
                                slo_rejected: s.slo_rejected.load(Ordering::Relaxed),
                                dwrr_deferrals: s.dwrr_deferrals.load(Ordering::Relaxed),
                                budget_balance: rf.budget.as_ref().map(|b| b.balance(now)),
                            },
                        )
                    })
                    .collect(),
            }
        });
        // Capability counters appear only once a policy has actually gated
        // a module; a policy-free runtime reports `None` and renders
        // byte-identically to one without the subsystem.
        let rs = registry.stats.snapshot();
        let capability =
            (rs.capability_certified + rs.capability_rejected > 0).then_some(CapabilityReport {
                certified: rs.capability_certified,
                rejected: rs.capability_rejected,
            });
        let opt = (rs.opt_modules + rs.opt_fallbacks > 0).then_some(OptGateReport {
            optimized: rs.opt_modules,
            fallbacks: rs.opt_fallbacks,
        });
        drop(registry);
        LatencyReport {
            global,
            per_function,
            pool,
            admission,
            capability,
            opt,
            connections: self.http_conns.as_ref().map(|c| c.snapshot()),
        }
    }
}

fn fmt_ns_f64(ns: u64) -> String {
    // Prometheus convention: seconds as a float. 1 ns = 1e-9 s; u64 ns
    // round-trips exactly enough for monitoring purposes.
    format!("{:.9}", ns as f64 / 1e9)
}

/// Render the Prometheus text exposition served at `GET /metrics`.
pub fn render_prometheus(report: &LatencyReport, stats: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(4096);

    out.push_str("# HELP sledge_invocations_total Invocations by outcome.\n");
    out.push_str("# TYPE sledge_invocations_total counter\n");
    for (outcome, v) in [
        ("completed", stats.completed),
        ("trapped", stats.trapped),
        ("timed_out", stats.timed_out),
        ("rejected", stats.rejected),
        ("breaker_rejected", stats.breaker_rejected),
    ] {
        out.push_str(&format!(
            "sledge_invocations_total{{outcome=\"{outcome}\"}} {v}\n"
        ));
    }

    out.push_str("# HELP sledge_scheduler_events_total Scheduler events.\n");
    out.push_str("# TYPE sledge_scheduler_events_total counter\n");
    for (event, v) in [
        ("steal", stats.steals),
        ("preemption", stats.preemptions),
        ("block", stats.blocked),
    ] {
        out.push_str(&format!(
            "sledge_scheduler_events_total{{event=\"{event}\"}} {v}\n"
        ));
    }

    // Connection series exist only when the runtime serves HTTP; an
    // in-process-only runtime leaves the exposition byte-for-byte
    // unchanged.
    if let Some(c) = &report.connections {
        out.push_str("# HELP sledge_connections_total Connection lifecycle events.\n");
        out.push_str("# TYPE sledge_connections_total counter\n");
        for (event, v) in [
            ("accepted", c.accepted),
            ("closed", c.closed),
            ("shed", c.shed),
            ("reaped", c.reaped),
        ] {
            out.push_str(&format!(
                "sledge_connections_total{{event=\"{event}\"}} {v}\n"
            ));
        }
        out.push_str("# HELP sledge_connections_active Connections currently open.\n");
        out.push_str("# TYPE sledge_connections_active gauge\n");
        out.push_str(&format!("sledge_connections_active{{}} {}\n", c.active()));
        out.push_str("# HELP sledge_http_requests_total Complete HTTP requests parsed.\n");
        out.push_str("# TYPE sledge_http_requests_total counter\n");
        out.push_str(&format!("sledge_http_requests_total{{}} {}\n", c.requests));
        out.push_str("# HELP sledge_http_bytes_total Bytes moved on HTTP sockets.\n");
        out.push_str("# TYPE sledge_http_bytes_total counter\n");
        for (dir, v) in [("in", c.bytes_in), ("out", c.bytes_out)] {
            out.push_str(&format!(
                "sledge_http_bytes_total{{direction=\"{dir}\"}} {v}\n"
            ));
        }
    }

    // Pool series exist only when the pool subsystem is armed; a disabled
    // pool leaves the exposition byte-for-byte unchanged.
    if report.pool.capacity > 0 {
        let p = &report.pool;
        out.push_str("# HELP sledge_pool_events_total Warm sandbox-pool events.\n");
        out.push_str("# TYPE sledge_pool_events_total counter\n");
        for (event, v) in [
            ("hit", p.hits),
            ("miss", p.misses),
            ("recycled", p.recycled),
            ("discarded", p.discarded),
            ("poisoned", p.poisoned),
            ("prewarmed", p.prewarmed),
            ("evicted", p.evicted),
            ("reset_static", p.resets_static),
            ("reset_elided", p.resets_elided),
        ] {
            out.push_str(&format!(
                "sledge_pool_events_total{{event=\"{event}\"}} {v}\n"
            ));
        }
        out.push_str("# HELP sledge_pool_size Instances currently parked across all pools.\n");
        out.push_str("# TYPE sledge_pool_size gauge\n");
        out.push_str(&format!("sledge_pool_size{{}} {}\n", p.size));
        out.push_str("# HELP sledge_pool_capacity Summed pool capacity across functions.\n");
        out.push_str("# TYPE sledge_pool_capacity gauge\n");
        out.push_str(&format!("sledge_pool_capacity{{}} {}\n", p.capacity));
    }

    // Admission series exist only when the fairness subsystem is armed;
    // same byte-identity discipline as the pool above.
    if let Some(adm) = &report.admission {
        out.push_str("# HELP sledge_admission_total Admission-control decisions.\n");
        out.push_str("# TYPE sledge_admission_total counter\n");
        for (result, v) in [
            ("shed", stats.shed),
            ("budget_rejected", stats.budget_rejected),
            ("slo_rejected", stats.slo_rejected),
        ] {
            out.push_str(&format!(
                "sledge_admission_total{{result=\"{result}\"}} {v}\n"
            ));
        }
        for (name, s) in &adm.per_function {
            let fn_label = escape_label(name);
            for (result, v) in [
                ("admitted", s.admitted),
                ("shed", s.shed),
                ("budget_rejected", s.budget_rejected),
                ("slo_rejected", s.slo_rejected),
            ] {
                out.push_str(&format!(
                    "sledge_admission_total{{function=\"{fn_label}\",result=\"{result}\"}} {v}\n"
                ));
            }
        }
        if adm.fairness {
            out.push_str(
                "# HELP sledge_dwrr_deferrals_total DWRR lane pass-overs while deficit spent.\n",
            );
            out.push_str("# TYPE sledge_dwrr_deferrals_total counter\n");
            for (name, s) in &adm.per_function {
                out.push_str(&format!(
                    "sledge_dwrr_deferrals_total{{function=\"{}\"}} {}\n",
                    escape_label(name),
                    s.dwrr_deferrals
                ));
            }
        }
        if adm
            .per_function
            .iter()
            .any(|(_, s)| s.budget_balance.is_some())
        {
            out.push_str("# HELP sledge_budget_balance Work-budget tokens currently available.\n");
            out.push_str("# TYPE sledge_budget_balance gauge\n");
            for (name, s) in &adm.per_function {
                if let Some(balance) = s.budget_balance {
                    out.push_str(&format!(
                        "sledge_budget_balance{{function=\"{}\"}} {balance}\n",
                        escape_label(name)
                    ));
                }
            }
        }
    }

    // Capability series exist only when a policy gated at least one module;
    // same byte-identity discipline as the pool and admission blocks above.
    if let Some(cap) = &report.capability {
        out.push_str(
            "# HELP sledge_capability_modules_total Modules gated by a capability policy.\n",
        );
        out.push_str("# TYPE sledge_capability_modules_total counter\n");
        for (verdict, v) in [("certified", cap.certified), ("rejected", cap.rejected)] {
            out.push_str(&format!(
                "sledge_capability_modules_total{{verdict=\"{verdict}\"}} {v}\n"
            ));
        }
    }

    // Optimizer-gate series exist only once an optimized module has been
    // gated; same byte-identity discipline as the sections above.
    if let Some(opt) = &report.opt {
        out.push_str(
            "# HELP sledge_opt_modules_total Translation-validation verdicts at registration.\n",
        );
        out.push_str("# TYPE sledge_opt_modules_total counter\n");
        for (verdict, v) in [("optimized", opt.optimized), ("fallback", opt.fallbacks)] {
            out.push_str(&format!(
                "sledge_opt_modules_total{{verdict=\"{verdict}\"}} {v}\n"
            ));
        }
    }

    out.push_str(
        "# HELP sledge_phase_latency_seconds Per-phase invocation latency (merged shards).\n",
    );
    out.push_str("# TYPE sledge_phase_latency_seconds summary\n");
    let mut series = |prefix: &str, labels: &str, snap: &HistogramSnapshot| {
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{prefix}{{{labels}quantile=\"{label}\"}} {}\n",
                fmt_ns_f64(snap.quantile(q))
            ));
        }
        out.push_str(&format!(
            "{prefix}_count{{{labels_t}}} {}\n",
            snap.count(),
            labels_t = labels.trim_end_matches(',')
        ));
        out.push_str(&format!(
            "{prefix}_sum{{{labels_t}}} {}\n",
            fmt_ns_f64(snap.sum()),
            labels_t = labels.trim_end_matches(',')
        ));
    };
    for (phase, snap) in report.global.phases() {
        series(
            "sledge_phase_latency_seconds",
            &format!("phase=\"{phase}\","),
            snap,
        );
    }
    for (name, phases) in &report.per_function {
        let fn_label = escape_label(name);
        for (phase, snap) in phases.phases() {
            series(
                "sledge_phase_latency_seconds",
                &format!("function=\"{fn_label}\",phase=\"{phase}\","),
                snap,
            );
        }
    }
    out
}

/// Render the JSON document served at `GET /stats`.
pub fn render_json(report: &LatencyReport, stats: &StatsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"counters\":{");
    for (i, (k, v)) in [
        ("admitted", stats.admitted),
        ("completed", stats.completed),
        ("trapped", stats.trapped),
        ("timed_out", stats.timed_out),
        ("rejected", stats.rejected),
        ("breaker_rejected", stats.breaker_rejected),
        ("steals", stats.steals),
        ("preemptions", stats.preemptions),
        ("blocked", stats.blocked),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push('}');
    if let Some(c) = &report.connections {
        out.push_str(&format!(
            ",\"connections\":{{\"accepted\":{},\"closed\":{},\"active\":{},\"shed\":{},\"reaped\":{},\"requests\":{},\"responses\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
            c.accepted, c.closed, c.active(), c.shed, c.reaped, c.requests, c.responses, c.bytes_in, c.bytes_out,
        ));
    }
    if report.pool.capacity > 0 {
        let p = &report.pool;
        out.push_str(&format!(
            ",\"pool\":{{\"capacity\":{},\"size\":{},\"hits\":{},\"misses\":{},\"recycled\":{},\"discarded\":{},\"poisoned\":{},\"prewarmed\":{},\"evicted\":{},\"resets_static\":{},\"resets_elided\":{}}}",
            p.capacity, p.size, p.hits, p.misses, p.recycled, p.discarded, p.poisoned, p.prewarmed, p.evicted, p.resets_static, p.resets_elided,
        ));
    }
    if let Some(cap) = &report.capability {
        out.push_str(&format!(
            ",\"capability\":{{\"certified\":{},\"rejected\":{}}}",
            cap.certified, cap.rejected
        ));
    }
    if let Some(opt) = &report.opt {
        out.push_str(&format!(
            ",\"opt\":{{\"optimized\":{},\"fallbacks\":{}}}",
            opt.optimized, opt.fallbacks
        ));
    }
    if let Some(adm) = &report.admission {
        out.push_str(&format!(
            ",\"admission\":{{\"fairness\":{},\"max_inflight\":{},\"shed\":{},\"budget_rejected\":{},\"slo_rejected\":{},\"functions\":{{",
            adm.fairness, adm.max_inflight, stats.shed, stats.budget_rejected, stats.slo_rejected
        ));
        for (i, (name, s)) in adm.per_function.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"admitted\":{},\"shed\":{},\"budget_rejected\":{},\"slo_rejected\":{},\"dwrr_deferrals\":{}",
                escape_json(name),
                s.admitted,
                s.shed,
                s.budget_rejected,
                s.slo_rejected,
                s.dwrr_deferrals,
            ));
            if let Some(balance) = s.budget_balance {
                out.push_str(&format!(",\"budget_balance\":{balance}"));
            }
            out.push('}');
        }
        out.push_str("}}");
    }
    out.push_str(",\"global\":");
    json_phases(&mut out, &report.global);
    out.push_str(",\"functions\":{");
    for (i, (name, phases)) in report.per_function.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", escape_json(name)));
        json_phases(&mut out, phases);
    }
    out.push_str("}}");
    out
}

fn json_phases(out: &mut String, snap: &PhaseSnapshot) {
    out.push('{');
    for (i, (phase, h)) in snap.phases().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{phase}\":{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.mean().unwrap_or(0),
            h.quantile(0.5),
            h.quantile(0.99),
        ));
    }
    out.push('}');
}

/// One-line human summary (used by `sledged --stats-interval-s`).
pub fn summary_line(report: &LatencyReport, stats: &StatsSnapshot) -> String {
    let g = &report.global;
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut line = format!(
        "done={} trap={} timeout={} rej={} | total p50={:.3}ms p99={:.3}ms | queue p99={:.3}ms inst p99={:.3}ms exec p99={:.3}ms",
        stats.completed,
        stats.trapped,
        stats.timed_out,
        stats.rejected + stats.breaker_rejected,
        ms(g.total.quantile(0.5)),
        ms(g.total.quantile(0.99)),
        ms(g.queue.quantile(0.99)),
        ms(g.instantiation.quantile(0.99)),
        ms(g.execution.quantile(0.99)),
    );
    if let Some(c) = &report.connections {
        line.push_str(&format!(
            " | conns active={} accepted={} shed={} reqs={}",
            c.active(),
            c.accepted,
            c.shed,
            c.requests
        ));
    }
    if report.pool.capacity > 0 {
        let p = &report.pool;
        line.push_str(&format!(
            " | pool hit={} miss={} recycled={} size={}/{}",
            p.hits, p.misses, p.recycled, p.size, p.capacity
        ));
    }
    if report.admission.is_some() {
        line.push_str(&format!(
            " | adm shed={} budget={} slo={}",
            stats.shed, stats.budget_rejected, stats.slo_rejected
        ));
    }
    if let Some(cap) = &report.capability {
        line.push_str(&format!(
            " | cap certified={} rejected={}",
            cap.certified, cap.rejected
        ));
    }
    if let Some(opt) = &report.opt {
        line.push_str(&format!(
            " | opt modules={} fallbacks={}",
            opt.optimized, opt.fallbacks
        ));
    }
    line
}

fn escape_label(s: &str) -> String {
    // Prometheus label values escape backslash, quote, and newline.
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn timings(queue_us: u64, inst_us: u64, exec_us: u64) -> Timings {
        Timings {
            arrival: Instant::now(),
            instantiation: Duration::from_micros(inst_us),
            queue_delay: Duration::from_micros(queue_us),
            execution: Duration::from_micros(exec_us),
            preempted: Duration::ZERO,
            blocked: Duration::ZERO,
            total: Duration::from_micros(queue_us + inst_us + exec_us),
            preemptions: 0,
        }
    }

    fn sample_report() -> (LatencyReport, StatsSnapshot) {
        let shards = [PhaseHistograms::default(), PhaseHistograms::default()];
        shards[0].record(&timings(10, 5, 100));
        shards[1].record(&timings(20, 7, 300));
        let snap = PhaseSnapshot::merge_shards(&shards);
        let report = LatencyReport {
            global: snap,
            per_function: vec![("echo".into(), snap)],
            pool: PoolStatsSnapshot::default(),
            admission: None,
            capability: None,
            opt: None,
            connections: None,
        };
        (report, StatsSnapshot::default())
    }

    #[test]
    fn shard_merge_covers_all_phases() {
        let (report, _) = sample_report();
        assert_eq!(report.global.count(), 2);
        for (phase, h) in report.global.phases() {
            assert_eq!(h.count(), 2, "phase {phase}");
        }
        // Execution p99 is bounded by the true extrema.
        let p99 = report.global.execution.quantile(0.99);
        assert!((100_000..=300_000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn prometheus_rendering_has_expected_series() {
        let (report, stats) = sample_report();
        let text = render_prometheus(&report, &stats);
        assert!(text.contains("# TYPE sledge_phase_latency_seconds summary"));
        assert!(text.contains("sledge_phase_latency_seconds{phase=\"queue\",quantile=\"0.5\"}"));
        assert!(
            text.contains("sledge_phase_latency_seconds{phase=\"execution\",quantile=\"0.99\"}")
        );
        assert!(text
            .contains("sledge_phase_latency_seconds{function=\"echo\",phase=\"instantiation\",quantile=\"0.99\"}"));
        assert!(text.contains("sledge_phase_latency_seconds_count{phase=\"total\"} 2"));
        assert!(text.contains("sledge_invocations_total{outcome=\"completed\"} 0"));
        // Every non-comment line is "name{labels} value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(series.contains('{') && series.ends_with('}'), "{line}");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn json_rendering_parses_and_has_expected_fields() {
        let (report, stats) = sample_report();
        let text = render_json(&report, &stats);
        let doc = crate::json::parse(&text).expect("valid JSON");
        let global = doc.get("global").unwrap();
        for phase in PHASES {
            let p = global.get(phase).unwrap_or_else(|| panic!("phase {phase}"));
            assert_eq!(p.get("count").unwrap().as_u64(), Some(2));
            let p50 = p.get("p50_ns").unwrap().as_u64().unwrap();
            let min = p.get("min_ns").unwrap().as_u64().unwrap();
            let max = p.get("max_ns").unwrap().as_u64().unwrap();
            assert!(p50 >= min && p50 <= max, "{phase}: {min} <= {p50} <= {max}");
        }
        assert!(doc.get("functions").unwrap().get("echo").is_some());
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("completed")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    #[test]
    fn disabled_pool_renders_nothing() {
        let (report, stats) = sample_report();
        assert_eq!(report.pool.capacity, 0);
        assert!(!render_prometheus(&report, &stats).contains("sledge_pool"));
        assert!(!render_json(&report, &stats).contains("\"pool\""));
        assert!(!summary_line(&report, &stats).contains("pool"));
    }

    #[test]
    fn enabled_pool_renders_counters() {
        let (mut report, stats) = sample_report();
        report.pool = PoolStatsSnapshot {
            capacity: 4,
            size: 2,
            hits: 10,
            misses: 3,
            recycled: 9,
            discarded: 1,
            poisoned: 1,
            prewarmed: 2,
            evicted: 0,
            resets_static: 6,
            resets_elided: 3,
        };
        let text = render_prometheus(&report, &stats);
        assert!(text.contains("sledge_pool_events_total{event=\"hit\"} 10"));
        assert!(text.contains("sledge_pool_events_total{event=\"poisoned\"} 1"));
        assert!(text.contains("sledge_pool_events_total{event=\"reset_static\"} 6"));
        assert!(text.contains("sledge_pool_events_total{event=\"reset_elided\"} 3"));
        assert!(text.contains("sledge_pool_size{} 2"));
        assert!(text.contains("sledge_pool_capacity{} 4"));
        let json = render_json(&report, &stats);
        let doc = crate::json::parse(&json).expect("valid JSON");
        let pool = doc.get("pool").expect("pool object");
        assert_eq!(pool.get("hits").unwrap().as_u64(), Some(10));
        assert_eq!(pool.get("capacity").unwrap().as_u64(), Some(4));
        assert_eq!(pool.get("resets_static").unwrap().as_u64(), Some(6));
        assert_eq!(pool.get("resets_elided").unwrap().as_u64(), Some(3));
        let line = summary_line(&report, &stats);
        assert!(line.contains("pool hit=10 miss=3"), "{line}");
    }

    #[test]
    fn disabled_fairness_renders_nothing() {
        let (report, stats) = sample_report();
        assert!(report.admission.is_none());
        let prom = render_prometheus(&report, &stats);
        assert!(!prom.contains("sledge_admission"));
        assert!(!prom.contains("sledge_dwrr"));
        assert!(!prom.contains("sledge_budget"));
        let json = render_json(&report, &stats);
        assert!(!json.contains("\"admission\""));
        assert!(!summary_line(&report, &stats).contains("adm"));
    }

    #[test]
    fn enabled_admission_renders_counters() {
        let (mut report, mut stats) = sample_report();
        stats.shed = 4;
        stats.budget_rejected = 7;
        stats.slo_rejected = 2;
        report.admission = Some(AdmissionReport {
            fairness: true,
            max_inflight: 16,
            per_function: vec![(
                "echo".into(),
                AdmissionFnSnapshot {
                    admitted: 40,
                    shed: 4,
                    budget_rejected: 7,
                    slo_rejected: 2,
                    dwrr_deferrals: 9,
                    budget_balance: Some(12345),
                },
            )],
        });
        let prom = render_prometheus(&report, &stats);
        assert!(prom.contains("sledge_admission_total{result=\"budget_rejected\"} 7"));
        assert!(prom.contains("sledge_admission_total{function=\"echo\",result=\"admitted\"} 40"));
        assert!(prom.contains("sledge_dwrr_deferrals_total{function=\"echo\"} 9"));
        assert!(prom.contains("sledge_budget_balance{function=\"echo\"} 12345"));
        let json = render_json(&report, &stats);
        let doc = crate::json::parse(&json).expect("valid JSON");
        let adm = doc.get("admission").expect("admission object");
        assert_eq!(adm.get("shed").unwrap().as_u64(), Some(4));
        let f = adm.get("functions").unwrap().get("echo").expect("echo");
        assert_eq!(f.get("budget_rejected").unwrap().as_u64(), Some(7));
        assert_eq!(f.get("budget_balance").unwrap().as_u64(), Some(12345));
        let line = summary_line(&report, &stats);
        assert!(line.contains("adm shed=4 budget=7 slo=2"), "{line}");
    }

    #[test]
    fn no_capability_policy_renders_nothing() {
        let (report, stats) = sample_report();
        assert!(report.capability.is_none());
        assert!(!render_prometheus(&report, &stats).contains("capability"));
        assert!(!render_json(&report, &stats).contains("capability"));
        assert!(!summary_line(&report, &stats).contains("cap "));
    }

    #[test]
    fn enabled_capability_renders_counters() {
        let (mut report, stats) = sample_report();
        report.capability = Some(CapabilityReport {
            certified: 5,
            rejected: 2,
        });
        let prom = render_prometheus(&report, &stats);
        assert!(prom.contains("sledge_capability_modules_total{verdict=\"certified\"} 5"));
        assert!(prom.contains("sledge_capability_modules_total{verdict=\"rejected\"} 2"));
        let json = render_json(&report, &stats);
        let doc = crate::json::parse(&json).expect("valid JSON");
        let cap = doc.get("capability").expect("capability object");
        assert_eq!(cap.get("certified").unwrap().as_u64(), Some(5));
        assert_eq!(cap.get("rejected").unwrap().as_u64(), Some(2));
        let line = summary_line(&report, &stats);
        assert!(line.contains("cap certified=5 rejected=2"), "{line}");
    }

    #[test]
    fn no_http_renders_no_connection_series() {
        let (report, stats) = sample_report();
        assert!(report.connections.is_none());
        let prom = render_prometheus(&report, &stats);
        assert!(!prom.contains("sledge_connections"));
        assert!(!prom.contains("sledge_http"));
        assert!(!render_json(&report, &stats).contains("\"connections\""));
        assert!(!summary_line(&report, &stats).contains("conns"));
    }

    #[test]
    fn http_front_end_renders_connection_counters() {
        let (mut report, stats) = sample_report();
        report.connections = Some(ConnSnapshot {
            accepted: 10,
            closed: 6,
            shed: 3,
            reaped: 1,
            requests: 25,
            responses: 24,
            bytes_in: 4096,
            bytes_out: 8192,
        });
        let prom = render_prometheus(&report, &stats);
        assert!(prom.contains("sledge_connections_total{event=\"accepted\"} 10"));
        assert!(prom.contains("sledge_connections_total{event=\"shed\"} 3"));
        assert!(prom.contains("sledge_connections_total{event=\"reaped\"} 1"));
        assert!(prom.contains("sledge_connections_active{} 4"));
        assert!(prom.contains("sledge_http_requests_total{} 25"));
        assert!(prom.contains("sledge_http_bytes_total{direction=\"in\"} 4096"));
        assert!(prom.contains("sledge_http_bytes_total{direction=\"out\"} 8192"));
        let json = render_json(&report, &stats);
        let doc = crate::json::parse(&json).expect("valid JSON");
        let c = doc.get("connections").expect("connections object");
        assert_eq!(c.get("accepted").unwrap().as_u64(), Some(10));
        assert_eq!(c.get("active").unwrap().as_u64(), Some(4));
        assert_eq!(c.get("requests").unwrap().as_u64(), Some(25));
        let line = summary_line(&report, &stats);
        assert!(line.contains("conns active=4 accepted=10 shed=3"), "{line}");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn summary_line_mentions_key_figures() {
        let (report, mut stats) = sample_report();
        stats.completed = 2;
        let line = summary_line(&report, &stats);
        assert!(line.starts_with("done=2"), "{line}");
        assert!(line.contains("p99"), "{line}");
    }
}
