//! Per-function warm sandbox pool: recycling and pre-warmed instantiation.
//!
//! The paper's headline decoupling — load a module once, instantiate a
//! sandbox per request — makes startup cheap; this subsystem drives the
//! remaining per-request instantiation cost toward zero by *recycling*
//! sandboxes. A bounded, per-function, LIFO pool holds instances whose
//! linear memory has been reset in place from the module's
//! [`MemoryTemplate`](awsm::MemoryTemplate) (memcpy the initialized image,
//! zero only the dirtied span beyond it), so a warm acquire is a pop plus
//! nothing — no allocation, no zero-fill, no global/table rebuild.
//!
//! Eligibility is strict: only *clean* completions ([`Outcome::Success`]
//! without an armed poison fault) are recycled. Trapped, timed-out, and
//! fault-injected sandboxes are discarded, as is everything while the
//! runtime drains. The pool is disabled by default (`capacity == 0`), in
//! which case every operation is a no-op and the runtime behaves — and
//! meters — exactly as if the subsystem did not exist.
//!
//! [`Outcome::Success`]: crate::Outcome::Success

use awsm::{CompiledModule, EngineConfig, Instance, ResetApplied, ResetPolicy};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic pool counters, updated lock-free by workers and the
/// pre-warmer.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Acquires served from the pool (warm path).
    pub hits: AtomicU64,
    /// Acquires that found the pool empty (cold path).
    pub misses: AtomicU64,
    /// Sandboxes reset and returned to the pool after a clean completion.
    pub recycled: AtomicU64,
    /// Sandboxes rejected from recycling (unclean outcome, reset failure,
    /// config mismatch, or drain).
    pub discarded: AtomicU64,
    /// Subset of `discarded` forced by the pool-poisoning fault.
    pub poisoned: AtomicU64,
    /// Instances created by the background pre-warmer.
    pub prewarmed: AtomicU64,
    /// Clean sandboxes dropped because the pool was already full.
    pub evicted: AtomicU64,
    /// Subset of `recycled` whose reset used the certified static write
    /// footprint (zeroing only the certified span instead of up to the
    /// high-water mark).
    pub resets_static: AtomicU64,
    /// Subset of `recycled` whose reset was elided entirely (entry point
    /// certified `Pure`, memory proven already pristine).
    pub resets_elided: AtomicU64,
}

/// A point-in-time copy of [`PoolStats`], plus the pool's capacity and
/// current occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Configured capacity (0 = pool disabled).
    pub capacity: u64,
    /// Instances currently parked in the pool.
    pub size: u64,
    /// Acquires served warm.
    pub hits: u64,
    /// Acquires that fell back to cold instantiation.
    pub misses: u64,
    /// Clean completions recycled into the pool.
    pub recycled: u64,
    /// Sandboxes discarded instead of recycled.
    pub discarded: u64,
    /// Discards forced by the pool-poisoning fault.
    pub poisoned: u64,
    /// Instances created by the pre-warmer.
    pub prewarmed: u64,
    /// Clean sandboxes dropped because the pool was full.
    pub evicted: u64,
    /// Recycles that used a footprint-bounded static reset.
    pub resets_static: u64,
    /// Recycles whose reset was elided entirely.
    pub resets_elided: u64,
}

impl PoolStatsSnapshot {
    /// Accumulate another snapshot (used to aggregate across functions).
    pub fn merge(&mut self, other: &PoolStatsSnapshot) {
        self.capacity += other.capacity;
        self.size += other.size;
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled += other.recycled;
        self.discarded += other.discarded;
        self.poisoned += other.poisoned;
        self.prewarmed += other.prewarmed;
        self.evicted += other.evicted;
        self.resets_static += other.resets_static;
        self.resets_elided += other.resets_elided;
    }

    /// Warm-acquire fraction, if any acquires happened.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// A bounded, LIFO pool of reset-and-ready instances for one registered
/// function. LIFO keeps the hottest (most recently touched, cache-warm)
/// instance on top.
pub struct SandboxPool {
    capacity: usize,
    slots: Mutex<Vec<Instance>>,
    /// How [`release`](Self::release) resets linear memory, derived from the
    /// module's effect certificate for the configured entry point (see
    /// [`CompiledModule::reset_policy`]). Purely an optimization hint: the
    /// instance-level runtime guards fall back to the full reset whenever the
    /// certificate's preconditions do not hold.
    reset_policy: ResetPolicy,
    /// Counters; see [`PoolStats`].
    pub stats: PoolStats,
}

impl fmt::Debug for SandboxPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SandboxPool")
            .field("capacity", &self.capacity)
            .field("size", &self.size())
            .finish()
    }
}

impl SandboxPool {
    /// A pool holding at most `capacity` instances; 0 disables it. Resets
    /// use the always-sound high-water-mark path.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, ResetPolicy::HighWater)
    }

    /// A pool whose recycling resets follow `policy` (derived from the
    /// module's effect certificate; see [`CompiledModule::reset_policy`]).
    pub fn with_policy(capacity: usize, policy: ResetPolicy) -> Self {
        SandboxPool {
            capacity,
            slots: Mutex::new(Vec::new()),
            reset_policy: policy,
            stats: PoolStats::default(),
        }
    }

    /// The reset policy recycling runs under.
    pub fn reset_policy(&self) -> ResetPolicy {
        self.reset_policy
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the pool is enabled (`capacity > 0`).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Instances currently parked.
    pub fn size(&self) -> usize {
        self.slots.lock().len()
    }

    /// Pop a warm instance compatible with `engine`, if one is available.
    ///
    /// Instances parked under a different bounds strategy or tier (the
    /// runtime reconfigured between park and acquire) are discarded rather
    /// than served. Disabled pools return `None` without touching any
    /// counter, keeping the disabled path byte-for-byte identical to a
    /// build without the subsystem.
    pub fn acquire(&self, engine: &EngineConfig) -> Option<Instance> {
        if !self.enabled() {
            return None;
        }
        loop {
            let popped = self.slots.lock().pop();
            match popped {
                Some(inst) => {
                    let cfg = inst.config();
                    if cfg.bounds == engine.bounds && cfg.tier == engine.tier {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(inst);
                    }
                    self.stats.discarded.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
    }

    /// Reset a retired instance in place and park it for reuse.
    ///
    /// Returns `true` if the instance was recycled. The caller must only
    /// offer instances from *clean* completions; unclean retirements go to
    /// [`discard`](Self::discard). A failed reset or a full pool drops the
    /// instance.
    pub fn release(&self, mut inst: Instance) -> bool {
        if !self.enabled() {
            return false;
        }
        let applied = match inst.reset_with(self.reset_policy) {
            Ok(applied) => applied,
            Err(_) => {
                self.stats.discarded.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        };
        let mut slots = self.slots.lock();
        if slots.len() >= self.capacity {
            drop(slots);
            self.stats.evicted.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        slots.push(inst);
        drop(slots);
        self.stats.recycled.fetch_add(1, Ordering::Relaxed);
        match applied {
            ResetApplied::Static => {
                self.stats.resets_static.fetch_add(1, Ordering::Relaxed);
            }
            ResetApplied::Elided => {
                self.stats.resets_elided.fetch_add(1, Ordering::Relaxed);
            }
            ResetApplied::Full => {}
        }
        true
    }

    /// Count a retired instance that was not offered for recycling
    /// (unclean outcome, drain in progress, or recycling disabled);
    /// `poisoned` marks discards forced by the pool-poisoning fault.
    pub fn discard(&self, poisoned: bool) {
        if !self.enabled() {
            return;
        }
        self.stats.discarded.fetch_add(1, Ordering::Relaxed);
        if poisoned {
            self.stats.poisoned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Top the pool up to `target` instances (clamped to capacity) by cold
    /// instantiation. Returns how many instances were added. Instantiation
    /// happens outside the pool lock so acquires never wait on it.
    pub fn prewarm(
        &self,
        module: &Arc<CompiledModule>,
        engine: EngineConfig,
        target: usize,
    ) -> usize {
        if !self.enabled() {
            return 0;
        }
        let goal = target.min(self.capacity);
        let mut added = 0;
        loop {
            if self.slots.lock().len() >= goal {
                break;
            }
            let Ok(inst) = Instance::new(Arc::clone(module), engine) else {
                break;
            };
            let mut slots = self.slots.lock();
            if slots.len() >= goal {
                break;
            }
            slots.push(inst);
            drop(slots);
            added += 1;
            self.stats.prewarmed.fetch_add(1, Ordering::Relaxed);
        }
        added
    }

    /// Drop every parked instance (graceful drain / shutdown). Returns how
    /// many were released back to the allocator.
    pub fn drain(&self) -> usize {
        let drained: Vec<Instance> = std::mem::take(&mut *self.slots.lock());
        drained.len()
    }

    /// Counters plus capacity and current occupancy.
    pub fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            capacity: self.capacity as u64,
            size: self.size() as u64,
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            recycled: self.stats.recycled.load(Ordering::Relaxed),
            discarded: self.stats.discarded.load(Ordering::Relaxed),
            poisoned: self.stats.poisoned.load(Ordering::Relaxed),
            prewarmed: self.stats.prewarmed.load(Ordering::Relaxed),
            evicted: self.stats.evicted.load(Ordering::Relaxed),
            resets_static: self.stats.resets_static.load(Ordering::Relaxed),
            resets_elided: self.stats.resets_elided.load(Ordering::Relaxed),
        }
    }
}

/// Body of the background pre-warmer thread: periodically top every
/// function's pool up to the configured `prewarm` target. Pauses while the
/// runtime drains (drained pools must stay empty) and exits on shutdown.
pub(crate) fn prewarm_loop(shared: Arc<crate::Shared>) {
    let target = shared.config.prewarm;
    let engine = EngineConfig {
        bounds: shared.config.bounds,
        tier: shared.config.tier,
        ..EngineConfig::default()
    };
    while !shared.shutdown.load(Ordering::Acquire) {
        if !shared.draining.load(Ordering::Acquire) {
            let functions: Vec<Arc<crate::registry::RegisteredFunction>> =
                shared.registry.read().iter().map(Arc::clone).collect();
            for rf in functions {
                if shared.shutdown.load(Ordering::Acquire)
                    || shared.draining.load(Ordering::Acquire)
                {
                    break;
                }
                rf.pool.prewarm(&rf.module, engine, target);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awsm::{translate, BoundsStrategy, Tier};
    use sledge_guestc::dsl::*;
    use sledge_guestc::{FuncBuilder, ModuleBuilder};
    use sledge_wasm::types::ValType;

    fn module() -> Arc<CompiledModule> {
        let mut mb = ModuleBuilder::new("pool");
        mb.memory(1, Some(2));
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(store_i32(i32c(0), i32c(7)));
        f.push(ret(Some(load_i32(i32c(0)))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        Arc::new(translate(&mb.build().unwrap(), Tier::Optimized).unwrap())
    }

    fn engine() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn disabled_pool_is_inert() {
        let pool = SandboxPool::new(0);
        assert!(!pool.enabled());
        assert!(pool.acquire(&engine()).is_none());
        let inst = Instance::new(module(), engine()).unwrap();
        assert!(!pool.release(inst));
        pool.discard(true);
        assert_eq!(pool.prewarm(&module(), engine(), 4), 0);
        // Crucially: the disabled pool counts *nothing*.
        assert_eq!(pool.snapshot(), PoolStatsSnapshot::default());
    }

    #[test]
    fn release_then_acquire_is_a_hit() {
        let pool = SandboxPool::new(2);
        let m = module();
        assert!(pool.acquire(&engine()).is_none(), "cold pool misses");
        let inst = Instance::new(Arc::clone(&m), engine()).unwrap();
        assert!(pool.release(inst));
        assert_eq!(pool.size(), 1);
        assert!(pool.acquire(&engine()).is_some());
        let s = pool.snapshot();
        assert_eq!((s.hits, s.misses, s.recycled), (1, 1, 1));
        assert_eq!(s.size, 0);
        assert_eq!(s.hit_rate(), Some(0.5));
    }

    #[test]
    fn full_pool_evicts() {
        let pool = SandboxPool::new(1);
        let m = module();
        assert!(pool.release(Instance::new(Arc::clone(&m), engine()).unwrap()));
        assert!(!pool.release(Instance::new(Arc::clone(&m), engine()).unwrap()));
        let s = pool.snapshot();
        assert_eq!((s.recycled, s.evicted, s.size), (1, 1, 1));
    }

    #[test]
    fn mismatched_config_not_served() {
        let pool = SandboxPool::new(2);
        let m = module();
        let inst = Instance::new(
            Arc::clone(&m),
            EngineConfig {
                bounds: BoundsStrategy::Software,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(pool.release(inst));
        let want = EngineConfig {
            bounds: BoundsStrategy::GuardRegion,
            ..EngineConfig::default()
        };
        assert!(pool.acquire(&want).is_none());
        let s = pool.snapshot();
        assert_eq!((s.discarded, s.misses, s.hits), (1, 1, 0));
    }

    #[test]
    fn prewarm_fills_to_target_and_drain_empties() {
        let pool = SandboxPool::new(4);
        let m = module();
        assert_eq!(pool.prewarm(&m, engine(), 3), 3);
        assert_eq!(pool.size(), 3);
        // Idempotent: already at target.
        assert_eq!(pool.prewarm(&m, engine(), 3), 0);
        // Target clamps to capacity.
        assert_eq!(pool.prewarm(&m, engine(), 64), 1);
        assert_eq!(pool.snapshot().prewarmed, 4);
        assert_eq!(pool.drain(), 4);
        assert_eq!(pool.size(), 0);
    }

    fn run_main(inst: &mut Instance) {
        inst.invoke_export("main", &[]).unwrap();
        let mut host = awsm::NullHost;
        loop {
            match inst.run(&mut host, u64::MAX) {
                awsm::StepResult::Complete(_) => break,
                awsm::StepResult::Trapped(t) => panic!("trap: {t:?}"),
                _ => {}
            }
        }
    }

    #[test]
    fn pure_entry_gets_elided_resets() {
        // No stores, no growth: the effect certificate proves `main` Pure.
        let mut mb = ModuleBuilder::new("pure");
        mb.memory(1, Some(2));
        mb.data(0, &b"seed"[..]);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(ret(Some(i32c(42))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = Arc::new(translate(&mb.build().unwrap(), Tier::Optimized).unwrap());

        let policy = m.reset_policy("main");
        assert_eq!(policy, awsm::ResetPolicy::Elide);
        let pool = SandboxPool::with_policy(2, policy);
        let mut inst = Instance::new(Arc::clone(&m), engine()).unwrap();
        run_main(&mut inst);
        assert!(pool.release(inst));
        let s = pool.snapshot();
        assert_eq!((s.recycled, s.resets_elided, s.resets_static), (1, 1, 0));
        // The recycled sandbox really is pristine.
        let warm = pool.acquire(&engine()).unwrap();
        assert_eq!(warm.memory().read_bytes(0, 4).unwrap(), b"seed");
    }

    #[test]
    fn certified_footprint_gets_static_resets() {
        // Stores confined to [0x8000, 0x8004), template span [0, 4): the
        // certificate licenses zeroing only the store span on reset.
        let mut mb = ModuleBuilder::new("span");
        mb.memory(1, Some(2));
        mb.data(0, &b"seed"[..]);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(store_i32(i32c(0x8000), i32c(7)));
        f.push(ret(Some(load_i32(i32c(0x8000)))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = Arc::new(translate(&mb.build().unwrap(), Tier::Optimized).unwrap());

        let policy = m.reset_policy("main");
        assert_eq!(
            policy,
            awsm::ResetPolicy::StaticSpan {
                lo: 0x8000,
                hi: 0x8004
            }
        );
        let pool = SandboxPool::with_policy(2, policy);
        let mut inst = Instance::new(Arc::clone(&m), engine()).unwrap();
        run_main(&mut inst);
        assert!(pool.release(inst));
        let s = pool.snapshot();
        assert_eq!((s.recycled, s.resets_static, s.resets_elided), (1, 1, 0));
        let warm = pool.acquire(&engine()).unwrap();
        assert_eq!(warm.memory().read_bytes(0, 4).unwrap(), b"seed");
        assert_eq!(warm.memory().read_bytes(0x8000, 4).unwrap(), &[0; 4]);
    }

    #[test]
    fn host_write_defeats_partial_reset_but_recycles_full() {
        // A host payload written below the certified span must force the
        // always-sound full reset — and still recycle.
        let mut mb = ModuleBuilder::new("span2");
        mb.memory(1, Some(2));
        mb.data(0, &b"seed"[..]);
        let mut f = FuncBuilder::new(&[], Some(ValType::I32));
        f.push(store_i32(i32c(0x8000), i32c(7)));
        f.push(ret(Some(i32c(0))));
        let main = mb.add_func("main", f);
        mb.export_func(main, "main");
        let m = Arc::new(translate(&mb.build().unwrap(), Tier::Optimized).unwrap());
        let policy = m.reset_policy("main");
        assert!(matches!(policy, awsm::ResetPolicy::StaticSpan { .. }));
        let pool = SandboxPool::with_policy(2, policy);
        let mut inst = Instance::new(Arc::clone(&m), engine()).unwrap();
        run_main(&mut inst);
        inst.memory_mut().write_bytes(0x100, b"payload").unwrap();
        assert!(pool.release(inst));
        let s = pool.snapshot();
        assert_eq!((s.recycled, s.resets_static, s.resets_elided), (1, 0, 0));
        let warm = pool.acquire(&engine()).unwrap();
        assert_eq!(warm.memory().read_bytes(0x100, 7).unwrap(), &[0; 7]);
        assert_eq!(warm.memory().read_bytes(0x8000, 4).unwrap(), &[0; 4]);
    }

    #[test]
    fn recycled_instance_is_reset() {
        let pool = SandboxPool::new(1);
        let m = module();
        let mut inst = Instance::new(Arc::clone(&m), engine()).unwrap();
        inst.invoke_export("main", &[]).unwrap();
        let mut host = awsm::NullHost;
        loop {
            match inst.run(&mut host, u64::MAX) {
                awsm::StepResult::Complete(_) => break,
                awsm::StepResult::Trapped(t) => panic!("trap: {t:?}"),
                _ => {}
            }
        }
        assert!(inst.fuel_used() > 0);
        assert!(pool.release(inst));
        let warm = pool.acquire(&engine()).unwrap();
        assert_eq!(warm.fuel_used(), 0, "recycled instance starts fresh");
    }
}
