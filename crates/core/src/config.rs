//! Runtime and per-function configuration, loadable from the JSON format
//! the paper's runtime uses.

use crate::fault::FaultPlan;
use crate::json::{Json, JsonError};
use awsm::{BoundsStrategy, Tier};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Whole-runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker cores (threads). The listener runs on its own
    /// thread, matching the paper's dedicated listener core.
    pub workers: usize,
    /// Preemption time slice (the paper uses 5 ms).
    pub quantum: Duration,
    /// Explicit fuel budget per dispatch, in cost units. `None` (the
    /// default) derives the budget from `quantum` × [`cost_units_per_us`]
    /// via [`RuntimeConfig::effective_quantum_fuel`]; set it only to pin
    /// an exact budget (tests, reproducing a measurement).
    ///
    /// [`cost_units_per_us`]: RuntimeConfig::cost_units_per_us
    pub quantum_fuel: Option<u64>,
    /// Calibration constant: how many cost units (see `awsm::op_cost`) a
    /// worker core retires per microsecond. The default is a measured
    /// figure for the PolyBench kernels on a modern x86 core; recalibrate
    /// with `preemption_latency --calibrate` when deploying elsewhere.
    pub cost_units_per_us: u64,
    /// Preemption-latency budget enforced at registration: modules must
    /// carry a certificate that every check-free path costs at most this
    /// many units. `None` accepts any certificate (but still requires one).
    pub max_check_gap: Option<u32>,
    /// Admission limit: pending (not yet executing) requests beyond this
    /// are rejected with 503.
    pub max_pending: usize,
    /// Largest accepted HTTP request (head + body).
    pub max_request_size: usize,
    /// Default bounds strategy for new sandboxes.
    pub bounds: BoundsStrategy,
    /// Engine tier.
    pub tier: Tier,
    /// Worker scheduling policy (preemptive RR is the paper's design; run-
    /// to-completion exists as the ablation point §3.4 argues against).
    pub policy: SchedPolicy,
    /// Default per-invocation execution deadline. A sandbox whose wall-clock
    /// age exceeds this when it would be (re)scheduled is killed with
    /// [`crate::Outcome::TimedOut`]. `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Per-function circuit breaker configuration. `None` disables
    /// breakers entirely.
    pub circuit_breaker: Option<BreakerConfig>,
    /// Idle-connection timeout for the HTTP front end (slow-loris defense).
    /// `Duration::ZERO` disables reaping.
    pub conn_idle: Duration,
    /// Deterministic fault-injection plan, for chaos testing. `None` (the
    /// production setting) injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Worst-case guest stack budget enforced at registration. Modules whose
    /// statically-verified stack bound exceeds this (or is unbounded due to
    /// recursion) are rejected before any sandbox is created. `None`
    /// disables the check.
    pub max_stack_bytes: Option<u64>,
    /// Serve `GET /metrics` (Prometheus text) and `GET /stats` (JSON) on
    /// the HTTP front end. On by default; disable to reserve those routes
    /// for functions.
    pub metrics_routes: bool,
    /// Capacity of each function's warm sandbox pool. 0 (the default)
    /// disables the pool entirely — behavior and metrics are identical to a
    /// runtime without the subsystem.
    pub pool_size: usize,
    /// Instances the background pre-warmer keeps hot per function (clamped
    /// to `pool_size`). 0 disables the pre-warmer; warmth then comes only
    /// from recycling.
    pub prewarm: usize,
    /// Whether workers recycle cleanly-completed sandboxes back into the
    /// pool. With `recycle = false` and `prewarm > 0` every warm acquire
    /// was pre-warmed (useful for isolating the two mechanisms).
    pub recycle: bool,
    /// Arm weighted deficit-round-robin scheduling on the per-worker run
    /// queues. Off (the default) keeps the plain FIFO rotation; behavior,
    /// metrics, and `sledged` output are then byte-identical to a runtime
    /// without the fairness subsystem.
    pub fairness: bool,
    /// Global in-flight admission cap with priority-class load shedding:
    /// a request whose function has priority class `p` (0..=3) is shed
    /// with 429 once in-flight reaches `max_inflight × (p+1) / 4`, so
    /// low-priority tenants are shed first and the highest class only at
    /// the full cap. 0 (the default) disables the cap.
    pub max_inflight: usize,
    /// Connection budget for the HTTP front end: accepts beyond this many
    /// live connections are answered with a socket-tier 503 +
    /// `Connection: close` before any parse cost is paid (the first gate,
    /// ahead of every admission gate). 0 (the default) is unlimited.
    pub max_connections: usize,
    /// Serve HTTP with the epoll readiness reactor (the default). `false`
    /// falls back to the legacy non-blocking scan loop — the compat and
    /// ablation configuration.
    pub reactor: bool,
    /// Run the translate-time dataflow optimizer when registering modules
    /// (constant folding, dead-code elimination, dominated-check elision).
    /// Every optimized module carries a translation-validation certificate
    /// the registry re-checks; failures fall back to the unoptimized body.
    /// On by default; `false` is the ablation/baseline configuration.
    pub optimize: bool,
    /// Serve `POST /admin/modules` on the HTTP front end: certificate-
    /// carrying module ingest for cluster-mode distribution (the router
    /// pushes compiled artifacts; the node re-validates every certificate
    /// before registering). Off by default — a node without the knob is
    /// byte-identical to earlier releases.
    pub admin_routes: bool,
}

/// Default calibration for [`RuntimeConfig::cost_units_per_us`]: cost
/// units the interpreter retires per microsecond, measured by dividing
/// `Instance::fuel_used` by wall time across the PolyBench kernels
/// (see `preemption_latency --calibrate`). Conservative: real cores run
/// hotter, which only makes quanta shorter than requested, never longer.
pub const DEFAULT_COST_UNITS_PER_US: u64 = 150;

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: num_cpus(),
            quantum: Duration::from_millis(5),
            quantum_fuel: None,
            cost_units_per_us: DEFAULT_COST_UNITS_PER_US,
            max_check_gap: None,
            max_pending: 8192,
            max_request_size: 4 << 20,
            bounds: BoundsStrategy::GuardRegion,
            tier: Tier::Optimized,
            policy: SchedPolicy::PreemptiveRr,
            deadline: None,
            circuit_breaker: None,
            conn_idle: Duration::from_secs(10),
            fault_plan: None,
            max_stack_bytes: None,
            metrics_routes: true,
            // Env overrides let CI run the whole suite a second time with
            // the pool armed without touching any test's explicit config.
            pool_size: env_usize("SLEDGE_POOL_SIZE").unwrap_or(0),
            prewarm: env_usize("SLEDGE_PREWARM").unwrap_or(0),
            recycle: env_usize("SLEDGE_RECYCLE").map(|v| v != 0).unwrap_or(true),
            fairness: env_usize("SLEDGE_FAIRNESS")
                .map(|v| v != 0)
                .unwrap_or(false),
            max_inflight: env_usize("SLEDGE_MAX_INFLIGHT").unwrap_or(0),
            max_connections: env_usize("SLEDGE_MAX_CONNS").unwrap_or(0),
            reactor: env_usize("SLEDGE_REACTOR").map(|v| v != 0).unwrap_or(true),
            optimize: env_usize("SLEDGE_OPT").map(|v| v != 0).unwrap_or(true),
            admin_routes: env_usize("SLEDGE_ADMIN").map(|v| v != 0).unwrap_or(false),
        }
    }
}

/// Read a non-negative integer knob from the environment; unset, empty, or
/// unparsable values fall through to the built-in default.
fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Per-function circuit breaker parameters.
///
/// A function whose consecutive trap/timeout count reaches `threshold`
/// trips its breaker: subsequent requests are fast-rejected with 503 and a
/// `Retry-After` hint until `cooldown` elapses, at which point a single
/// half-open probe is admitted. The probe's success closes the breaker;
/// its failure re-opens it for another cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (traps or timeouts) that trip the breaker.
    pub threshold: u32,
    /// How long the breaker stays open before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown: Duration::from_millis(1000),
        }
    }
}

/// How workers schedule sandboxes on their core-local run queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Preemptive round-robin with the configured quantum — the paper's
    /// serverless-first design, providing temporal isolation.
    #[default]
    PreemptiveRr,
    /// Run each sandbox to completion (cooperative only at blocking I/O) —
    /// the model the paper's §3.4 argues is unsafe for untrusted,
    /// potentially unbounded computations. Kept as an ablation.
    RunToCompletion,
}

/// Best-effort CPU count without external crates.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Highest (and default) priority class; classes run 0 (shed first)
/// through this value (shed last, only at the full in-flight cap).
pub const MAX_PRIORITY: u8 = 3;

/// Per-function (module) configuration.
#[derive(Debug, Clone)]
pub struct FunctionConfig {
    /// Function name, also the default HTTP route (`/name`).
    pub name: String,
    /// HTTP route override.
    pub route: Option<String>,
    /// Exported entry point (default `"main"`).
    pub entry: String,
    /// Expected argument values for the entry point (most functions take
    /// none and communicate via the request body).
    pub args: Vec<awsm::Value>,
    /// Per-function execution deadline, overriding the runtime default.
    pub deadline: Option<Duration>,
    /// Work budget in worker-µs per wall second: converted through the
    /// `cost_units_per_us` calibration into a fuel-per-second token bucket
    /// charged at admission and trued-up at completion. `None` (the
    /// default) exempts the function from budget admission entirely.
    pub budget_us_per_s: Option<u64>,
    /// Priority class for overload shedding, 0..=[`MAX_PRIORITY`]; lower
    /// classes are shed earlier as in-flight load approaches
    /// [`RuntimeConfig::max_inflight`]. Defaults to the highest class.
    pub priority: u8,
    /// DWRR weight (≥ 1): this function's proportional share of worker
    /// execution when the run queues are contended and fairness is on.
    pub weight: u32,
    /// Queue-phase p99 SLO: when the function's observed queue-wait p99
    /// exceeds this, new requests are rejected early with 429 rather than
    /// queued behind an already-blown latency target. `None` disables.
    pub queue_slo: Option<Duration>,
    /// Deny-by-default host-call capability policy: when set, registration
    /// fails unless the module's effect certificate proves the entry point
    /// can only ever reach host imports in this list. Names match either
    /// fully qualified (`"env::response_write"`) or bare
    /// (`"response_write"`). `None` (the default) grants everything.
    pub allowed_hostcalls: Option<Vec<String>>,
    /// Upper bound in bytes on the entry point's certified static write
    /// footprint: registration fails if the certificate cannot prove every
    /// guest store lands below this address. `None` disables the gate.
    pub max_write_footprint_bytes: Option<u64>,
}

impl FunctionConfig {
    /// Configuration with defaults for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionConfig {
            name: name.into(),
            route: None,
            entry: "main".into(),
            args: Vec::new(),
            deadline: None,
            budget_us_per_s: None,
            priority: MAX_PRIORITY,
            weight: 1,
            queue_slo: None,
            allowed_hostcalls: None,
            max_write_footprint_bytes: None,
        }
    }

    /// Whether any capability policy is configured for this function.
    pub fn has_capability_policy(&self) -> bool {
        self.allowed_hostcalls.is_some() || self.max_write_footprint_bytes.is_some()
    }

    /// The HTTP route this function serves.
    pub fn http_route(&self) -> String {
        self.route
            .clone()
            .unwrap_or_else(|| format!("/{}", self.name))
    }
}

/// Error loading configuration.
#[derive(Debug)]
pub enum ConfigError {
    /// JSON syntax error.
    Json(JsonError),
    /// Structurally valid JSON with missing/mistyped fields.
    Schema(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "{e}"),
            ConfigError::Schema(s) => write!(f, "config schema error: {s}"),
        }
    }
}

impl Error for ConfigError {}

impl From<JsonError> for ConfigError {
    fn from(e: JsonError) -> Self {
        ConfigError::Json(e)
    }
}

impl RuntimeConfig {
    /// Fuel budget per dispatch, in cost units: the explicit
    /// [`quantum_fuel`](RuntimeConfig::quantum_fuel) override if set,
    /// otherwise `quantum` converted through the
    /// [`cost_units_per_us`](RuntimeConfig::cost_units_per_us)
    /// calibration. Never zero — a zero budget could not make progress.
    pub fn effective_quantum_fuel(&self) -> u64 {
        self.quantum_fuel
            .unwrap_or_else(|| self.quantum.as_micros() as u64 * self.cost_units_per_us)
            .max(1)
    }

    /// Parse a runtime configuration from the JSON format:
    ///
    /// ```json
    /// {
    ///   "workers": 15,
    ///   "quantum_us": 5000,
    ///   "max_pending": 8192,
    ///   "bounds": "vm-guard",
    ///   "tier": "aot-opt",
    ///   "modules": [ {"name": "echo", "route": "/echo", "entry": "main"} ]
    /// }
    /// ```
    ///
    /// Returns the runtime config plus the declared function configs (the
    /// module binaries themselves are registered programmatically).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for syntax or schema problems.
    pub fn from_json(text: &str) -> Result<(RuntimeConfig, Vec<FunctionConfig>), ConfigError> {
        let v = crate::json::parse(text)?;
        let mut cfg = RuntimeConfig::default();
        if let Some(w) = v.get("workers") {
            cfg.workers = w
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("workers must be a non-negative int".into()))?
                as usize;
        }
        if let Some(q) = v.get("quantum_us") {
            cfg.quantum = Duration::from_micros(
                q.as_u64()
                    .ok_or_else(|| ConfigError::Schema("quantum_us must be an int".into()))?,
            );
        }
        if let Some(q) = v.get("quantum_fuel") {
            let q = q
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("quantum_fuel must be an int".into()))?;
            if q == 0 {
                return Err(ConfigError::Schema(
                    "quantum_fuel must be >= 1 (a zero budget cannot make progress)".into(),
                ));
            }
            cfg.quantum_fuel = Some(q);
        }
        if let Some(c) = v.get("cost_units_per_us") {
            let c = c
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("cost_units_per_us must be an int".into()))?;
            if c == 0 {
                return Err(ConfigError::Schema("cost_units_per_us must be >= 1".into()));
            }
            cfg.cost_units_per_us = c;
        }
        if let Some(g) = v.get("max_check_gap") {
            cfg.max_check_gap = Some(
                g.as_u64()
                    .filter(|g| *g <= u32::MAX as u64)
                    .ok_or_else(|| ConfigError::Schema("max_check_gap must be a u32".into()))?
                    as u32,
            );
        }
        if let Some(p) = v.get("max_pending") {
            cfg.max_pending = p
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("max_pending must be an int".into()))?
                as usize;
        }
        if let Some(s) = v.get("max_request_size") {
            cfg.max_request_size = s
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("max_request_size must be an int".into()))?
                as usize;
        }
        if let Some(b) = v.get("bounds") {
            cfg.bounds = match b.as_str() {
                Some("no-checks") => BoundsStrategy::None,
                Some("bounds-chk") => BoundsStrategy::Software,
                Some("mpx") => BoundsStrategy::MpxEmulated,
                Some("vm-guard") => BoundsStrategy::GuardRegion,
                Some("static") => BoundsStrategy::Static,
                other => {
                    return Err(ConfigError::Schema(format!(
                        "unknown bounds strategy {other:?}"
                    )))
                }
            };
        }
        if let Some(t) = v.get("tier") {
            cfg.tier = match t.as_str() {
                Some("aot-opt") => Tier::Optimized,
                Some("aot-naive") => Tier::Naive,
                other => return Err(ConfigError::Schema(format!("unknown tier {other:?}"))),
            };
        }
        if let Some(pl) = v.get("policy") {
            cfg.policy = match pl.as_str() {
                Some("preemptive-rr") => SchedPolicy::PreemptiveRr,
                Some("run-to-completion") => SchedPolicy::RunToCompletion,
                other => return Err(ConfigError::Schema(format!("unknown policy {other:?}"))),
            };
        }
        if let Some(d) = v.get("deadline_ms") {
            cfg.deadline = Some(Duration::from_millis(d.as_u64().ok_or_else(|| {
                ConfigError::Schema("deadline_ms must be a non-negative int".into())
            })?));
        }
        if let Some(cb) = v.get("circuit_breaker") {
            cfg.circuit_breaker = Some(parse_breaker(cb)?);
        }
        if let Some(ci) = v.get("conn_idle_ms") {
            cfg.conn_idle = Duration::from_millis(ci.as_u64().ok_or_else(|| {
                ConfigError::Schema("conn_idle_ms must be a non-negative int".into())
            })?);
        }
        if let Some(fp) = v.get("fault_plan") {
            cfg.fault_plan = Some(parse_fault_plan(fp)?);
        }
        if let Some(msb) = v.get("max_stack_bytes") {
            cfg.max_stack_bytes = Some(msb.as_u64().ok_or_else(|| {
                ConfigError::Schema("max_stack_bytes must be a non-negative int".into())
            })?);
        }
        if let Some(mr) = v.get("metrics_routes") {
            cfg.metrics_routes = mr
                .as_bool()
                .ok_or_else(|| ConfigError::Schema("metrics_routes must be a bool".into()))?;
        }
        if let Some(ps) = v.get("pool_size") {
            cfg.pool_size = ps
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("pool_size must be a non-negative int".into()))?
                as usize;
        }
        if let Some(pw) = v.get("prewarm") {
            cfg.prewarm = pw
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("prewarm must be a non-negative int".into()))?
                as usize;
        }
        if let Some(r) = v.get("recycle") {
            cfg.recycle = r
                .as_bool()
                .ok_or_else(|| ConfigError::Schema("recycle must be a bool".into()))?;
        }
        if let Some(f) = v.get("fairness") {
            cfg.fairness = f
                .as_bool()
                .ok_or_else(|| ConfigError::Schema("fairness must be a bool".into()))?;
        }
        if let Some(mi) = v.get("max_inflight") {
            cfg.max_inflight = mi.as_u64().ok_or_else(|| {
                ConfigError::Schema("max_inflight must be a non-negative int".into())
            })? as usize;
        }
        if let Some(mc) = v.get("max_connections") {
            cfg.max_connections = mc.as_u64().ok_or_else(|| {
                ConfigError::Schema("max_connections must be a non-negative int".into())
            })? as usize;
        }
        if let Some(r) = v.get("reactor") {
            cfg.reactor = r
                .as_bool()
                .ok_or_else(|| ConfigError::Schema("reactor must be a bool".into()))?;
        }
        if let Some(o) = v.get("optimize") {
            cfg.optimize = o
                .as_bool()
                .ok_or_else(|| ConfigError::Schema("optimize must be a bool".into()))?;
        }
        if let Some(a) = v.get("admin_routes") {
            cfg.admin_routes = a
                .as_bool()
                .ok_or_else(|| ConfigError::Schema("admin_routes must be a bool".into()))?;
        }
        let mut funcs = Vec::new();
        if let Some(mods) = v.get("modules") {
            let arr = mods
                .as_array()
                .ok_or_else(|| ConfigError::Schema("modules must be an array".into()))?;
            for m in arr {
                funcs.push(parse_function(m)?);
            }
        }
        Ok((cfg, funcs))
    }
}

fn parse_breaker(cb: &Json) -> Result<BreakerConfig, ConfigError> {
    let mut b = BreakerConfig::default();
    if let Some(t) = cb.get("threshold") {
        let t = t.as_u64().ok_or_else(|| {
            ConfigError::Schema("circuit_breaker.threshold must be an int".into())
        })?;
        if t == 0 {
            return Err(ConfigError::Schema(
                "circuit_breaker.threshold must be >= 1".into(),
            ));
        }
        b.threshold = t as u32;
    }
    if let Some(c) = cb.get("cooldown_ms") {
        b.cooldown = Duration::from_millis(c.as_u64().ok_or_else(|| {
            ConfigError::Schema("circuit_breaker.cooldown_ms must be an int".into())
        })?);
    }
    Ok(b)
}

fn parse_fault_plan(fp: &Json) -> Result<FaultPlan, ConfigError> {
    let mut plan = FaultPlan::default();
    if let Some(s) = fp.get("seed") {
        plan.seed = s
            .as_u64()
            .ok_or_else(|| ConfigError::Schema("fault_plan.seed must be an int".into()))?;
    }
    let pct = |j: &Json, key: &str| -> Result<f64, ConfigError> {
        let p = j
            .as_f64()
            .ok_or_else(|| ConfigError::Schema(format!("fault_plan.{key} must be a number")))?;
        if !(0.0..=100.0).contains(&p) {
            return Err(ConfigError::Schema(format!(
                "fault_plan.{key} must be in 0..=100"
            )));
        }
        Ok(p)
    };
    if let Some(p) = fp.get("instantiation_failure_pct") {
        plan.instantiation_failure_pct = pct(p, "instantiation_failure_pct")?;
    }
    if let Some(p) = fp.get("host_trap_pct") {
        plan.host_trap_pct = pct(p, "host_trap_pct")?;
    }
    if let Some(p) = fp.get("host_latency_pct") {
        plan.host_latency_pct = pct(p, "host_latency_pct")?;
    }
    if let Some(l) = fp.get("host_latency_us") {
        plan.host_latency = Duration::from_micros(l.as_u64().ok_or_else(|| {
            ConfigError::Schema("fault_plan.host_latency_us must be an int".into())
        })?);
    }
    if let Some(p) = fp.get("pool_poison_pct") {
        plan.pool_poison_pct = pct(p, "pool_poison_pct")?;
    }
    if let Some(p) = fp.get("burst_pct") {
        plan.burst_pct = pct(p, "burst_pct")?;
    }
    if let Some(l) = fp.get("burst_latency_us") {
        plan.burst_latency = Duration::from_micros(l.as_u64().ok_or_else(|| {
            ConfigError::Schema("fault_plan.burst_latency_us must be an int".into())
        })?);
    }
    if let Some(p) = fp.get("conn_reset_pct") {
        plan.conn_reset_pct = pct(p, "conn_reset_pct")?;
    }
    Ok(plan)
}

pub(crate) fn parse_function(m: &Json) -> Result<FunctionConfig, ConfigError> {
    let name = m
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ConfigError::Schema("module missing \"name\"".into()))?;
    let mut f = FunctionConfig::new(name);
    if let Some(r) = m.get("route") {
        f.route = Some(
            r.as_str()
                .ok_or_else(|| ConfigError::Schema("route must be a string".into()))?
                .to_string(),
        );
    }
    if let Some(e) = m.get("entry") {
        f.entry = e
            .as_str()
            .ok_or_else(|| ConfigError::Schema("entry must be a string".into()))?
            .to_string();
    }
    if let Some(d) = m.get("deadline_ms") {
        f.deadline = Some(Duration::from_millis(d.as_u64().ok_or_else(|| {
            ConfigError::Schema("module deadline_ms must be a non-negative int".into())
        })?));
    }
    if let Some(b) = m.get("budget") {
        let b = b
            .as_u64()
            .ok_or_else(|| ConfigError::Schema("module budget must be an int".into()))?;
        if b == 0 {
            return Err(ConfigError::Schema(
                "module budget must be >= 1 µs/s (omit it to disable budgeting)".into(),
            ));
        }
        f.budget_us_per_s = Some(b);
    }
    if let Some(p) = m.get("priority") {
        let p = p
            .as_u64()
            .filter(|p| *p <= MAX_PRIORITY as u64)
            .ok_or_else(|| {
                ConfigError::Schema(format!("module priority must be in 0..={MAX_PRIORITY}"))
            })?;
        f.priority = p as u8;
    }
    if let Some(w) = m.get("weight") {
        let w = w
            .as_u64()
            .filter(|w| (1..=u32::MAX as u64).contains(w))
            .ok_or_else(|| ConfigError::Schema("module weight must be a u32 >= 1".into()))?;
        f.weight = w as u32;
    }
    if let Some(s) = m.get("queue_slo_ms") {
        f.queue_slo = Some(Duration::from_millis(s.as_u64().ok_or_else(|| {
            ConfigError::Schema("module queue_slo_ms must be a non-negative int".into())
        })?));
    }
    if let Some(a) = m.get("allowed_hostcalls") {
        let items = a.as_array().ok_or_else(|| {
            ConfigError::Schema("module allowed_hostcalls must be an array of strings".into())
        })?;
        let mut allowed = Vec::with_capacity(items.len());
        for item in items {
            allowed.push(
                item.as_str()
                    .ok_or_else(|| {
                        ConfigError::Schema(
                            "module allowed_hostcalls entries must be strings".into(),
                        )
                    })?
                    .to_string(),
            );
        }
        f.allowed_hostcalls = Some(allowed);
    }
    if let Some(b) = m.get("max_write_footprint_bytes") {
        f.max_write_footprint_bytes = Some(b.as_u64().ok_or_else(|| {
            ConfigError::Schema(
                "module max_write_footprint_bytes must be a non-negative int".into(),
            )
        })?);
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_roundtrip() {
        let text = r#"{
            "workers": 15,
            "quantum_us": 5000,
            "quantum_fuel": 123456,
            "max_pending": 64,
            "max_request_size": 1048576,
            "bounds": "bounds-chk",
            "tier": "aot-naive",
            "modules": [
                {"name": "echo"},
                {"name": "ekf", "route": "/gps", "entry": "run"}
            ]
        }"#;
        let (cfg, funcs) = RuntimeConfig::from_json(text).unwrap();
        assert_eq!(cfg.workers, 15);
        assert_eq!(cfg.quantum, Duration::from_millis(5));
        assert_eq!(cfg.quantum_fuel, Some(123456));
        assert_eq!(cfg.effective_quantum_fuel(), 123456);
        assert_eq!(cfg.max_pending, 64);
        assert_eq!(cfg.bounds, BoundsStrategy::Software);
        assert_eq!(cfg.tier, Tier::Naive);
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].http_route(), "/echo");
        assert_eq!(funcs[1].http_route(), "/gps");
        assert_eq!(funcs[1].entry, "run");
    }

    #[test]
    fn defaults_applied() {
        let (cfg, funcs) = RuntimeConfig::from_json("{}").unwrap();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.quantum, Duration::from_millis(5));
        assert!(funcs.is_empty());
    }

    #[test]
    fn schema_errors() {
        assert!(RuntimeConfig::from_json(r#"{"workers": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"bounds": "bogus"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"modules": [{}]}"#).is_err());
        assert!(RuntimeConfig::from_json("{").is_err());
        assert!(RuntimeConfig::from_json(r#"{"max_stack_bytes": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"max_stack_bytes": -1}"#).is_err());
    }

    #[test]
    fn quantum_fuel_derived_from_calibration() {
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        assert_eq!(cfg.quantum_fuel, None);
        assert_eq!(
            cfg.effective_quantum_fuel(),
            5000 * DEFAULT_COST_UNITS_PER_US,
            "5 ms quantum x default calibration"
        );
        let (cfg, _) =
            RuntimeConfig::from_json(r#"{"quantum_us": 100, "cost_units_per_us": 7}"#).unwrap();
        assert_eq!(cfg.effective_quantum_fuel(), 700);
        // An explicit override wins over derivation.
        let (cfg, _) =
            RuntimeConfig::from_json(r#"{"quantum_us": 100, "quantum_fuel": 42}"#).unwrap();
        assert_eq!(cfg.effective_quantum_fuel(), 42);
        // Degenerate quantum still yields a budget that can make progress.
        let (cfg, _) = RuntimeConfig::from_json(r#"{"quantum_us": 0}"#).unwrap();
        assert_eq!(cfg.effective_quantum_fuel(), 1);
    }

    #[test]
    fn zero_quantum_fuel_rejected() {
        let err = RuntimeConfig::from_json(r#"{"quantum_fuel": 0}"#).unwrap_err();
        assert!(
            matches!(err, ConfigError::Schema(ref s) if s.contains("quantum_fuel")),
            "expected schema error, got {err:?}"
        );
        assert!(RuntimeConfig::from_json(r#"{"quantum_fuel": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"cost_units_per_us": 0}"#).is_err());
    }

    #[test]
    fn max_check_gap_parsed() {
        let (cfg, _) = RuntimeConfig::from_json(r#"{"max_check_gap": 256}"#).unwrap();
        assert_eq!(cfg.max_check_gap, Some(256));
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        assert_eq!(cfg.max_check_gap, None);
        assert!(RuntimeConfig::from_json(r#"{"max_check_gap": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"max_check_gap": 4294967296}"#).is_err());
    }

    #[test]
    fn metrics_routes_knob_parsed() {
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        assert!(cfg.metrics_routes, "metrics routes default on");
        let (cfg, _) = RuntimeConfig::from_json(r#"{"metrics_routes": false}"#).unwrap();
        assert!(!cfg.metrics_routes);
        assert!(RuntimeConfig::from_json(r#"{"metrics_routes": 1}"#).is_err());
    }

    #[test]
    fn static_analysis_knobs_parsed() {
        let text = r#"{"bounds": "static", "max_stack_bytes": 1048576}"#;
        let (cfg, _) = RuntimeConfig::from_json(text).unwrap();
        assert_eq!(cfg.bounds, BoundsStrategy::Static);
        assert_eq!(cfg.max_stack_bytes, Some(1048576));
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        assert_eq!(cfg.max_stack_bytes, None);
    }

    #[test]
    fn pool_knobs_parsed() {
        let text = r#"{"pool_size": 8, "prewarm": 2, "recycle": false}"#;
        let (cfg, _) = RuntimeConfig::from_json(text).unwrap();
        assert_eq!(cfg.pool_size, 8);
        assert_eq!(cfg.prewarm, 2);
        assert!(!cfg.recycle);
        // Explicit JSON always wins over the SLEDGE_POOL_SIZE/SLEDGE_PREWARM/
        // SLEDGE_RECYCLE env overrides; absent knobs match the (possibly
        // env-overridden) defaults, so this test is green in both CI legs.
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        let dflt = RuntimeConfig::default();
        assert_eq!(cfg.pool_size, dflt.pool_size);
        assert_eq!(cfg.prewarm, dflt.prewarm);
        assert_eq!(cfg.recycle, dflt.recycle);
        assert!(RuntimeConfig::from_json(r#"{"pool_size": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"pool_size": -1}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"prewarm": 1.5}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"recycle": 1}"#).is_err());
    }

    #[test]
    fn capability_policy_knobs_parsed() {
        let text = r#"{"modules": [
            {"name": "echo",
             "allowed_hostcalls": ["env::request_len", "response_write"],
             "max_write_footprint_bytes": 65536},
            {"name": "open"}
        ]}"#;
        let (_, funcs) = RuntimeConfig::from_json(text).unwrap();
        assert_eq!(
            funcs[0].allowed_hostcalls.as_deref(),
            Some(&["env::request_len".to_string(), "response_write".to_string()][..])
        );
        assert_eq!(funcs[0].max_write_footprint_bytes, Some(65536));
        assert!(funcs[0].has_capability_policy());
        // Defaults off: no policy, nothing gated.
        assert_eq!(funcs[1].allowed_hostcalls, None);
        assert_eq!(funcs[1].max_write_footprint_bytes, None);
        assert!(!funcs[1].has_capability_policy());
        // An empty allow-list is a valid (deny-everything) policy.
        let (_, funcs) =
            RuntimeConfig::from_json(r#"{"modules": [{"name": "x", "allowed_hostcalls": []}]}"#)
                .unwrap();
        assert_eq!(funcs[0].allowed_hostcalls.as_deref(), Some(&[][..]));
        assert!(funcs[0].has_capability_policy());
        // Schema errors.
        for bad in [
            r#"{"modules": [{"name": "x", "allowed_hostcalls": "env::foo"}]}"#,
            r#"{"modules": [{"name": "x", "allowed_hostcalls": [1]}]}"#,
            r#"{"modules": [{"name": "x", "max_write_footprint_bytes": "big"}]}"#,
            r#"{"modules": [{"name": "x", "max_write_footprint_bytes": -1}]}"#,
        ] {
            assert!(RuntimeConfig::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn fairness_knobs_parsed() {
        let text = r#"{
            "fairness": true,
            "max_inflight": 256,
            "fault_plan": {"burst_pct": 12.5, "burst_latency_us": 900,
                           "conn_reset_pct": 15},
            "modules": [
                {"name": "victim", "budget": 200000, "priority": 3,
                 "weight": 4, "queue_slo_ms": 20},
                {"name": "antagonist", "priority": 0}
            ]
        }"#;
        let (cfg, funcs) = RuntimeConfig::from_json(text).unwrap();
        assert!(cfg.fairness);
        assert_eq!(cfg.max_inflight, 256);
        let fp = cfg.fault_plan.unwrap();
        assert_eq!(fp.burst_pct, 12.5);
        assert_eq!(fp.burst_latency, Duration::from_micros(900));
        assert_eq!(fp.conn_reset_pct, 15.0);
        assert_eq!(funcs[0].budget_us_per_s, Some(200000));
        assert_eq!(funcs[0].priority, 3);
        assert_eq!(funcs[0].weight, 4);
        assert_eq!(funcs[0].queue_slo, Some(Duration::from_millis(20)));
        assert_eq!(funcs[1].budget_us_per_s, None);
        assert_eq!(funcs[1].priority, 0);
        assert_eq!(funcs[1].weight, 1);
        assert_eq!(funcs[1].queue_slo, None);
    }

    #[test]
    fn fairness_knobs_default_off_and_schema_checked() {
        // Explicit JSON wins over the SLEDGE_FAIRNESS/SLEDGE_MAX_INFLIGHT
        // env overrides; absent knobs match the (possibly env-overridden)
        // defaults, so this test is green in both CI legs.
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        let dflt = RuntimeConfig::default();
        assert_eq!(cfg.fairness, dflt.fairness);
        assert_eq!(cfg.max_inflight, dflt.max_inflight);
        let f = FunctionConfig::new("x");
        assert_eq!(f.budget_us_per_s, None);
        assert_eq!(f.priority, MAX_PRIORITY);
        assert_eq!(f.weight, 1);
        assert_eq!(f.queue_slo, None);
        assert!(RuntimeConfig::from_json(r#"{"fairness": 1}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"max_inflight": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"modules": [{"name": "a", "budget": 0}]}"#).is_err());
        assert!(
            RuntimeConfig::from_json(r#"{"modules": [{"name": "a", "priority": 4}]}"#).is_err()
        );
        assert!(RuntimeConfig::from_json(r#"{"modules": [{"name": "a", "weight": 0}]}"#).is_err());
        assert!(
            RuntimeConfig::from_json(r#"{"modules": [{"name": "a", "queue_slo_ms": "x"}]}"#)
                .is_err()
        );
        assert!(RuntimeConfig::from_json(r#"{"fault_plan": {"burst_pct": 101}}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"fault_plan": {"conn_reset_pct": -1}}"#).is_err());
    }

    #[test]
    fn listener_knobs_parsed() {
        let text = r#"{"max_connections": 512, "reactor": false}"#;
        let (cfg, _) = RuntimeConfig::from_json(text).unwrap();
        assert_eq!(cfg.max_connections, 512);
        assert!(!cfg.reactor);
        // Explicit JSON wins over the SLEDGE_MAX_CONNS/SLEDGE_REACTOR env
        // overrides; absent knobs match the (possibly env-overridden)
        // defaults, so this test is green in both CI legs.
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        let dflt = RuntimeConfig::default();
        assert_eq!(cfg.max_connections, dflt.max_connections);
        assert_eq!(cfg.reactor, dflt.reactor);
        assert!(RuntimeConfig::from_json(r#"{"max_connections": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"max_connections": -1}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"reactor": 1}"#).is_err());
    }

    #[test]
    fn optimize_knob_parsed() {
        let (cfg, _) = RuntimeConfig::from_json(r#"{"optimize": false}"#).unwrap();
        assert!(!cfg.optimize);
        let (cfg, _) = RuntimeConfig::from_json(r#"{"optimize": true}"#).unwrap();
        assert!(cfg.optimize);
        // Explicit JSON wins over the SLEDGE_OPT env override; absent knobs
        // match the (possibly env-overridden) default, so this test is green
        // in both CI legs.
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        assert_eq!(cfg.optimize, RuntimeConfig::default().optimize);
        assert!(RuntimeConfig::from_json(r#"{"optimize": 1}"#).is_err());
    }

    #[test]
    fn admin_routes_knob_parsed() {
        let (cfg, _) = RuntimeConfig::from_json(r#"{"admin_routes": true}"#).unwrap();
        assert!(cfg.admin_routes);
        let (cfg, _) = RuntimeConfig::from_json(r#"{"admin_routes": false}"#).unwrap();
        assert!(!cfg.admin_routes);
        // Explicit JSON wins over the SLEDGE_ADMIN env override; absent knobs
        // match the (possibly env-overridden) default, so this test is green
        // in both CI legs.
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        assert_eq!(cfg.admin_routes, RuntimeConfig::default().admin_routes);
        assert!(RuntimeConfig::from_json(r#"{"admin_routes": 1}"#).is_err());
    }

    #[test]
    fn resilience_knobs_parsed() {
        let text = r#"{
            "deadline_ms": 250,
            "conn_idle_ms": 7000,
            "circuit_breaker": {"threshold": 3, "cooldown_ms": 200},
            "fault_plan": {
                "seed": 42,
                "instantiation_failure_pct": 5,
                "host_trap_pct": 2.5,
                "host_latency_pct": 10,
                "host_latency_us": 1500,
                "pool_poison_pct": 7.5
            },
            "modules": [
                {"name": "echo", "deadline_ms": 50},
                {"name": "slow"}
            ]
        }"#;
        let (cfg, funcs) = RuntimeConfig::from_json(text).unwrap();
        assert_eq!(cfg.deadline, Some(Duration::from_millis(250)));
        assert_eq!(cfg.conn_idle, Duration::from_millis(7000));
        let cb = cfg.circuit_breaker.unwrap();
        assert_eq!(cb.threshold, 3);
        assert_eq!(cb.cooldown, Duration::from_millis(200));
        let fp = cfg.fault_plan.unwrap();
        assert_eq!(fp.seed, 42);
        assert_eq!(fp.instantiation_failure_pct, 5.0);
        assert_eq!(fp.host_trap_pct, 2.5);
        assert_eq!(fp.host_latency_pct, 10.0);
        assert_eq!(fp.host_latency, Duration::from_micros(1500));
        assert_eq!(fp.pool_poison_pct, 7.5);
        assert_eq!(funcs[0].deadline, Some(Duration::from_millis(50)));
        assert_eq!(funcs[1].deadline, None);
    }

    #[test]
    fn resilience_knobs_default_off() {
        let (cfg, _) = RuntimeConfig::from_json("{}").unwrap();
        assert_eq!(cfg.deadline, None);
        assert!(cfg.circuit_breaker.is_none());
        assert!(cfg.fault_plan.is_none());
        assert_eq!(cfg.conn_idle, Duration::from_secs(10));
    }

    #[test]
    fn resilience_schema_errors() {
        assert!(RuntimeConfig::from_json(r#"{"deadline_ms": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"deadline_ms": -5}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"circuit_breaker": {"threshold": 0}}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"circuit_breaker": {"cooldown_ms": "x"}}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"fault_plan": {"host_trap_pct": 101}}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"fault_plan": {"host_trap_pct": -1}}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"fault_plan": {"pool_poison_pct": 200}}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"conn_idle_ms": 1.5}"#).is_err());
        assert!(
            RuntimeConfig::from_json(r#"{"modules": [{"name": "a", "deadline_ms": "x"}]}"#)
                .is_err()
        );
    }
}
