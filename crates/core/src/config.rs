//! Runtime and per-function configuration, loadable from the JSON format
//! the paper's runtime uses.

use crate::json::{Json, JsonError};
use awsm::{BoundsStrategy, Tier};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Whole-runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker cores (threads). The listener runs on its own
    /// thread, matching the paper's dedicated listener core.
    pub workers: usize,
    /// Preemption time slice (the paper uses 5 ms).
    pub quantum: Duration,
    /// Fuel budget per dispatch; the coarse-grained backstop under the
    /// timer-driven preemption.
    pub quantum_fuel: u64,
    /// Admission limit: pending (not yet executing) requests beyond this
    /// are rejected with 503.
    pub max_pending: usize,
    /// Largest accepted HTTP request (head + body).
    pub max_request_size: usize,
    /// Default bounds strategy for new sandboxes.
    pub bounds: BoundsStrategy,
    /// Engine tier.
    pub tier: Tier,
    /// Worker scheduling policy (preemptive RR is the paper's design; run-
    /// to-completion exists as the ablation point §3.4 argues against).
    pub policy: SchedPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: num_cpus(),
            quantum: Duration::from_millis(5),
            quantum_fuel: 4_000_000,
            max_pending: 8192,
            max_request_size: 4 << 20,
            bounds: BoundsStrategy::GuardRegion,
            tier: Tier::Optimized,
            policy: SchedPolicy::PreemptiveRr,
        }
    }
}

/// How workers schedule sandboxes on their core-local run queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Preemptive round-robin with the configured quantum — the paper's
    /// serverless-first design, providing temporal isolation.
    #[default]
    PreemptiveRr,
    /// Run each sandbox to completion (cooperative only at blocking I/O) —
    /// the model the paper's §3.4 argues is unsafe for untrusted,
    /// potentially unbounded computations. Kept as an ablation.
    RunToCompletion,
}

/// Best-effort CPU count without external crates.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Per-function (module) configuration.
#[derive(Debug, Clone)]
pub struct FunctionConfig {
    /// Function name, also the default HTTP route (`/name`).
    pub name: String,
    /// HTTP route override.
    pub route: Option<String>,
    /// Exported entry point (default `"main"`).
    pub entry: String,
    /// Expected argument values for the entry point (most functions take
    /// none and communicate via the request body).
    pub args: Vec<awsm::Value>,
}

impl FunctionConfig {
    /// Configuration with defaults for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionConfig {
            name: name.into(),
            route: None,
            entry: "main".into(),
            args: Vec::new(),
        }
    }

    /// The HTTP route this function serves.
    pub fn http_route(&self) -> String {
        self.route
            .clone()
            .unwrap_or_else(|| format!("/{}", self.name))
    }
}

/// Error loading configuration.
#[derive(Debug)]
pub enum ConfigError {
    /// JSON syntax error.
    Json(JsonError),
    /// Structurally valid JSON with missing/mistyped fields.
    Schema(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "{e}"),
            ConfigError::Schema(s) => write!(f, "config schema error: {s}"),
        }
    }
}

impl Error for ConfigError {}

impl From<JsonError> for ConfigError {
    fn from(e: JsonError) -> Self {
        ConfigError::Json(e)
    }
}

impl RuntimeConfig {
    /// Parse a runtime configuration from the JSON format:
    ///
    /// ```json
    /// {
    ///   "workers": 15,
    ///   "quantum_us": 5000,
    ///   "max_pending": 8192,
    ///   "bounds": "vm-guard",
    ///   "tier": "aot-opt",
    ///   "modules": [ {"name": "echo", "route": "/echo", "entry": "main"} ]
    /// }
    /// ```
    ///
    /// Returns the runtime config plus the declared function configs (the
    /// module binaries themselves are registered programmatically).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for syntax or schema problems.
    pub fn from_json(text: &str) -> Result<(RuntimeConfig, Vec<FunctionConfig>), ConfigError> {
        let v = crate::json::parse(text)?;
        let mut cfg = RuntimeConfig::default();
        if let Some(w) = v.get("workers") {
            cfg.workers = w
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("workers must be a non-negative int".into()))?
                as usize;
        }
        if let Some(q) = v.get("quantum_us") {
            cfg.quantum = Duration::from_micros(
                q.as_u64()
                    .ok_or_else(|| ConfigError::Schema("quantum_us must be an int".into()))?,
            );
        }
        if let Some(q) = v.get("quantum_fuel") {
            cfg.quantum_fuel = q
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("quantum_fuel must be an int".into()))?;
        }
        if let Some(p) = v.get("max_pending") {
            cfg.max_pending = p
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("max_pending must be an int".into()))?
                as usize;
        }
        if let Some(s) = v.get("max_request_size") {
            cfg.max_request_size = s
                .as_u64()
                .ok_or_else(|| ConfigError::Schema("max_request_size must be an int".into()))?
                as usize;
        }
        if let Some(b) = v.get("bounds") {
            cfg.bounds = match b.as_str() {
                Some("no-checks") => BoundsStrategy::None,
                Some("bounds-chk") => BoundsStrategy::Software,
                Some("mpx") => BoundsStrategy::MpxEmulated,
                Some("vm-guard") => BoundsStrategy::GuardRegion,
                other => {
                    return Err(ConfigError::Schema(format!(
                        "unknown bounds strategy {other:?}"
                    )))
                }
            };
        }
        if let Some(t) = v.get("tier") {
            cfg.tier = match t.as_str() {
                Some("aot-opt") => Tier::Optimized,
                Some("aot-naive") => Tier::Naive,
                other => return Err(ConfigError::Schema(format!("unknown tier {other:?}"))),
            };
        }
        if let Some(pl) = v.get("policy") {
            cfg.policy = match pl.as_str() {
                Some("preemptive-rr") => SchedPolicy::PreemptiveRr,
                Some("run-to-completion") => SchedPolicy::RunToCompletion,
                other => return Err(ConfigError::Schema(format!("unknown policy {other:?}"))),
            };
        }
        let mut funcs = Vec::new();
        if let Some(mods) = v.get("modules") {
            let arr = mods
                .as_array()
                .ok_or_else(|| ConfigError::Schema("modules must be an array".into()))?;
            for m in arr {
                funcs.push(parse_function(m)?);
            }
        }
        Ok((cfg, funcs))
    }
}

fn parse_function(m: &Json) -> Result<FunctionConfig, ConfigError> {
    let name = m
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ConfigError::Schema("module missing \"name\"".into()))?;
    let mut f = FunctionConfig::new(name);
    if let Some(r) = m.get("route") {
        f.route = Some(
            r.as_str()
                .ok_or_else(|| ConfigError::Schema("route must be a string".into()))?
                .to_string(),
        );
    }
    if let Some(e) = m.get("entry") {
        f.entry = e
            .as_str()
            .ok_or_else(|| ConfigError::Schema("entry must be a string".into()))?
            .to_string();
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_roundtrip() {
        let text = r#"{
            "workers": 15,
            "quantum_us": 5000,
            "quantum_fuel": 123456,
            "max_pending": 64,
            "max_request_size": 1048576,
            "bounds": "bounds-chk",
            "tier": "aot-naive",
            "modules": [
                {"name": "echo"},
                {"name": "ekf", "route": "/gps", "entry": "run"}
            ]
        }"#;
        let (cfg, funcs) = RuntimeConfig::from_json(text).unwrap();
        assert_eq!(cfg.workers, 15);
        assert_eq!(cfg.quantum, Duration::from_millis(5));
        assert_eq!(cfg.quantum_fuel, 123456);
        assert_eq!(cfg.max_pending, 64);
        assert_eq!(cfg.bounds, BoundsStrategy::Software);
        assert_eq!(cfg.tier, Tier::Naive);
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].http_route(), "/echo");
        assert_eq!(funcs[1].http_route(), "/gps");
        assert_eq!(funcs[1].entry, "run");
    }

    #[test]
    fn defaults_applied() {
        let (cfg, funcs) = RuntimeConfig::from_json("{}").unwrap();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.quantum, Duration::from_millis(5));
        assert!(funcs.is_empty());
    }

    #[test]
    fn schema_errors() {
        assert!(RuntimeConfig::from_json(r#"{"workers": "x"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"bounds": "bogus"}"#).is_err());
        assert!(RuntimeConfig::from_json(r#"{"modules": [{}]}"#).is_err());
        assert!(RuntimeConfig::from_json("{").is_err());
    }
}
