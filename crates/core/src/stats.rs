//! Global runtime counters, exported for tests, examples, and benchmarks,
//! plus the per-function circuit breaker state machine.

use crate::config::BreakerConfig;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Monotonic counters updated by the listener and workers.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Requests accepted by the listener.
    pub admitted: AtomicU64,
    /// Requests rejected by admission control.
    pub rejected: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests that trapped.
    pub trapped: AtomicU64,
    /// Requests killed at their execution deadline.
    pub timed_out: AtomicU64,
    /// Requests fast-rejected by a tripped circuit breaker (counted
    /// separately from admission-control `rejected`).
    pub breaker_rejected: AtomicU64,
    /// Requests shed (429) by the global in-flight cap, ordered by
    /// priority class.
    pub shed: AtomicU64,
    /// Requests rejected (429) because the function's work budget was
    /// exhausted.
    pub budget_rejected: AtomicU64,
    /// Requests rejected (429) because the function's queue-phase p99
    /// exceeded its SLO.
    pub slo_rejected: AtomicU64,
    /// Sandboxes stolen from the global deque by workers.
    pub steals: AtomicU64,
    /// Preemptions performed.
    pub preemptions: AtomicU64,
    /// Sandboxes that blocked on (emulated) I/O at least once.
    pub blocked: AtomicU64,
    /// Total instantiation time in nanoseconds (with `admitted` as count).
    pub instantiation_ns: AtomicU64,
    /// Total guest execution time in nanoseconds.
    pub execution_ns: AtomicU64,
}

impl RuntimeStats {
    /// Record an instantiation.
    pub fn record_instantiation(&self, d: Duration) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.instantiation_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A snapshot suitable for printing.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            trapped: self.trapped.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            breaker_rejected: self.breaker_rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            budget_rejected: self.budget_rejected.load(Ordering::Relaxed),
            slo_rejected: self.slo_rejected.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            instantiation_ns: self.instantiation_ns.load(Ordering::Relaxed),
            execution_ns: self.execution_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub trapped: u64,
    pub timed_out: u64,
    pub breaker_rejected: u64,
    pub shed: u64,
    pub budget_rejected: u64,
    pub slo_rejected: u64,
    pub steals: u64,
    pub preemptions: u64,
    pub blocked: u64,
    pub instantiation_ns: u64,
    pub execution_ns: u64,
}

impl StatsSnapshot {
    /// Mean instantiation time, if any requests were admitted.
    pub fn mean_instantiation(&self) -> Option<Duration> {
        self.instantiation_ns
            .checked_div(self.admitted)
            .map(Duration::from_nanos)
    }
}

/// Load-time static-analysis counters, updated by the registry as modules
/// are verified (or rejected) at registration.
#[derive(Debug, Default)]
pub struct RegistryStats {
    /// Modules that passed verification and were registered.
    pub modules_verified: AtomicU64,
    /// Modules rejected by the analyzer (error-severity lints or a stack
    /// bound over budget).
    pub modules_rejected: AtomicU64,
    /// Warning-severity lints surfaced across all registered modules.
    pub lint_warnings: AtomicU64,
    /// Memory-access sites whose bounds checks were statically elided,
    /// summed over registered modules.
    pub checks_elided: AtomicU64,
    /// Modules registered with a preemption-latency certificate within the
    /// configured check-gap budget.
    pub cost_certified: AtomicU64,
    /// Modules rejected because the certificate was missing or its
    /// check-free gap exceeded the budget (also counted in
    /// `modules_rejected`).
    pub certificate_rejected: AtomicU64,
    /// Modules whose effect certificate passed a configured capability
    /// policy (`allowed_hostcalls` / `max_write_footprint_bytes`). Stays
    /// zero when no module sets a policy.
    pub capability_certified: AtomicU64,
    /// Modules rejected by a capability policy (also counted in
    /// `modules_rejected`).
    pub capability_rejected: AtomicU64,
    /// Modules registered with a validated optimization certificate
    /// (translate-time optimizer on, translation validation passed).
    pub opt_modules: AtomicU64,
    /// Modules whose optimization certificate failed validation and were
    /// reverted to the unoptimized bodies before registration.
    pub opt_fallbacks: AtomicU64,
}

impl RegistryStats {
    /// A point-in-time copy suitable for printing.
    pub fn snapshot(&self) -> RegistryStatsSnapshot {
        RegistryStatsSnapshot {
            modules_verified: self.modules_verified.load(Ordering::Relaxed),
            modules_rejected: self.modules_rejected.load(Ordering::Relaxed),
            lint_warnings: self.lint_warnings.load(Ordering::Relaxed),
            checks_elided: self.checks_elided.load(Ordering::Relaxed),
            cost_certified: self.cost_certified.load(Ordering::Relaxed),
            certificate_rejected: self.certificate_rejected.load(Ordering::Relaxed),
            capability_certified: self.capability_certified.load(Ordering::Relaxed),
            capability_rejected: self.capability_rejected.load(Ordering::Relaxed),
            opt_modules: self.opt_modules.load(Ordering::Relaxed),
            opt_fallbacks: self.opt_fallbacks.load(Ordering::Relaxed),
            // Pool counters live on each function; `Registry::stats_snapshot`
            // folds them in on top of this raw counter copy.
            pool: crate::pool::PoolStatsSnapshot::default(),
        }
    }
}

/// A point-in-time copy of [`RegistryStats`], plus the warm-pool counters
/// aggregated across every registered function (all-zero when pooling is
/// disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStatsSnapshot {
    pub modules_verified: u64,
    pub modules_rejected: u64,
    pub lint_warnings: u64,
    pub checks_elided: u64,
    pub cost_certified: u64,
    pub certificate_rejected: u64,
    /// Modules that passed a configured capability policy.
    pub capability_certified: u64,
    /// Modules rejected by a capability policy.
    pub capability_rejected: u64,
    /// Modules registered with a validated optimization certificate.
    pub opt_modules: u64,
    /// Modules reverted to unoptimized bodies on certificate failure.
    pub opt_fallbacks: u64,
    /// Warm sandbox-pool counters, summed over all functions.
    pub pool: crate::pool::PoolStatsSnapshot,
}

/// Circuit breaker state for one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; requests flow through.
    Closed,
    /// Tripped; requests are fast-rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe is in flight, everything else is
    /// still rejected.
    HalfOpen,
}

const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;
const BREAKER_HALF_OPEN: u8 = 2;

/// Per-function counters, attached to each registered function.
#[derive(Debug, Default)]
pub struct FunctionStats {
    /// Requests admitted past every admission gate (dispatched to a worker).
    pub admitted: AtomicU64,
    /// Requests shed (429) by the global in-flight cap.
    pub shed: AtomicU64,
    /// Requests rejected (429) on an empty work budget.
    pub budget_rejected: AtomicU64,
    /// Requests rejected (429) on a blown queue-phase p99 SLO.
    pub slo_rejected: AtomicU64,
    /// Times a DWRR lane holding this function's work was passed over
    /// because its deficit was spent (a measure of fairness pressure).
    pub dwrr_deferrals: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests that trapped.
    pub trapped: AtomicU64,
    /// Requests killed at their execution deadline.
    pub timed_out: AtomicU64,
    /// Total guest execution time in nanoseconds.
    pub execution_ns: AtomicU64,
    /// Consecutive traps/timeouts since the last success.
    consecutive_failures: AtomicU32,
    /// Encoded [`BreakerState`].
    breaker_state: AtomicU8,
    /// Epoch-relative nanoseconds of the last state transition (the value
    /// that cooldowns are measured from).
    breaker_since_ns: AtomicU64,
    /// Times the breaker has tripped Closed/HalfOpen → Open.
    pub breaker_trips: AtomicU64,
}

impl FunctionStats {
    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        match self.breaker_state.load(Ordering::Acquire) {
            BREAKER_OPEN => BreakerState::Open,
            BREAKER_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Admission decision for one request at `now_ns` (epoch-relative).
    ///
    /// Returns `Ok(is_probe)` when the request may proceed — `is_probe` is
    /// true iff this request won the transition to half-open and its outcome
    /// decides the breaker's fate — or `Err(retry_after)` when the breaker
    /// rejects it.
    pub fn breaker_admit(&self, cfg: &BreakerConfig, now_ns: u64) -> Result<bool, Duration> {
        loop {
            match self.breaker_state.load(Ordering::Acquire) {
                BREAKER_CLOSED => return Ok(false),
                BREAKER_HALF_OPEN => return Err(cfg.cooldown),
                BREAKER_OPEN => {
                    let since = self.breaker_since_ns.load(Ordering::Acquire);
                    let elapsed = now_ns.saturating_sub(since);
                    let cooldown_ns = cfg.cooldown.as_nanos() as u64;
                    if elapsed < cooldown_ns {
                        return Err(Duration::from_nanos(cooldown_ns - elapsed));
                    }
                    // Cooldown elapsed: race to become the half-open probe.
                    if self
                        .breaker_state
                        .compare_exchange(
                            BREAKER_OPEN,
                            BREAKER_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.breaker_since_ns.store(now_ns, Ordering::Release);
                        return Ok(true);
                    }
                    // Lost the race; re-read the state.
                }
                _ => return Ok(false),
            }
        }
    }

    /// Record an execution outcome for breaker purposes. `success` covers
    /// normal completion; traps and timeouts are failures. No-op when
    /// breakers are disabled (`cfg` is `None`).
    pub fn breaker_record(&self, cfg: Option<&BreakerConfig>, success: bool, now_ns: u64) {
        let Some(cfg) = cfg else { return };
        if success {
            self.consecutive_failures.store(0, Ordering::Release);
            // A success closes the breaker regardless of prior state (the
            // half-open probe succeeded, or a straggler admitted before the
            // trip completed fine).
            self.breaker_state.store(BREAKER_CLOSED, Ordering::Release);
            return;
        }
        let fails = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        let state = self.breaker_state.load(Ordering::Acquire);
        if state == BREAKER_HALF_OPEN || (state == BREAKER_CLOSED && fails >= cfg.threshold) {
            self.trip(now_ns);
        }
    }

    /// A probe that was admitted half-open but then rejected before running
    /// (e.g. instantiation failed, drain started) must re-open the breaker,
    /// or it would stay half-open forever with no outcome to decide it.
    pub fn breaker_probe_rejected(&self, now_ns: u64) {
        if self
            .breaker_state
            .compare_exchange(
                BREAKER_HALF_OPEN,
                BREAKER_OPEN,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.breaker_since_ns.store(now_ns, Ordering::Release);
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn trip(&self, now_ns: u64) {
        let prev = self.breaker_state.swap(BREAKER_OPEN, Ordering::AcqRel);
        self.breaker_since_ns.store(now_ns, Ordering::Release);
        if prev != BREAKER_OPEN {
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> FunctionStatsSnapshot {
        FunctionStatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            budget_rejected: self.budget_rejected.load(Ordering::Relaxed),
            slo_rejected: self.slo_rejected.load(Ordering::Relaxed),
            dwrr_deferrals: self.dwrr_deferrals.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            trapped: self.trapped.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            execution_ns: self.execution_ns.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FunctionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunctionStatsSnapshot {
    pub admitted: u64,
    pub shed: u64,
    pub budget_rejected: u64,
    pub slo_rejected: u64,
    pub dwrr_deferrals: u64,
    pub completed: u64,
    pub trapped: u64,
    pub timed_out: u64,
    pub execution_ns: u64,
    pub breaker_trips: u64,
}

impl FunctionStatsSnapshot {
    /// Mean guest execution time per completed request.
    pub fn mean_execution(&self) -> Option<Duration> {
        let n = self.completed + self.trapped + self.timed_out;
        self.execution_ns.checked_div(n).map(Duration::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn breaker_trips_at_threshold_and_recovers() {
        let s = FunctionStats::default();
        let cb = cfg();
        // Two failures: still closed.
        s.breaker_record(Some(&cb), false, 0);
        s.breaker_record(Some(&cb), false, MS);
        assert_eq!(s.breaker_state(), BreakerState::Closed);
        assert_eq!(s.breaker_admit(&cb, 2 * MS), Ok(false));
        // Third failure trips it.
        s.breaker_record(Some(&cb), false, 2 * MS);
        assert_eq!(s.breaker_state(), BreakerState::Open);
        let retry = s.breaker_admit(&cb, 10 * MS).unwrap_err();
        assert_eq!(retry, Duration::from_millis(92));
        // Cooldown elapsed: exactly one caller becomes the probe.
        assert_eq!(s.breaker_admit(&cb, 103 * MS), Ok(true));
        assert_eq!(s.breaker_state(), BreakerState::HalfOpen);
        assert!(s.breaker_admit(&cb, 104 * MS).is_err());
        // Probe succeeds → closed again, failure streak reset.
        s.breaker_record(Some(&cb), true, 105 * MS);
        assert_eq!(s.breaker_state(), BreakerState::Closed);
        assert_eq!(s.breaker_admit(&cb, 106 * MS), Ok(false));
        assert_eq!(s.breaker_trips.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let s = FunctionStats::default();
        let cb = cfg();
        for i in 0..3 {
            s.breaker_record(Some(&cb), false, i * MS);
        }
        assert_eq!(s.breaker_admit(&cb, 200 * MS), Ok(true));
        // Probe fails → open again for a fresh cooldown from the failure.
        s.breaker_record(Some(&cb), false, 201 * MS);
        assert_eq!(s.breaker_state(), BreakerState::Open);
        assert!(s.breaker_admit(&cb, 250 * MS).is_err());
        assert_eq!(s.breaker_admit(&cb, 302 * MS), Ok(true));
        assert_eq!(s.breaker_trips.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn rejected_probe_reopens() {
        let s = FunctionStats::default();
        let cb = cfg();
        for i in 0..3 {
            s.breaker_record(Some(&cb), false, i * MS);
        }
        assert_eq!(s.breaker_admit(&cb, 150 * MS), Ok(true));
        s.breaker_probe_rejected(150 * MS);
        assert_eq!(s.breaker_state(), BreakerState::Open);
        // And only from HalfOpen: a no-op if the state already moved on.
        s.breaker_record(Some(&cb), true, 300 * MS);
        s.breaker_probe_rejected(300 * MS);
        assert_eq!(s.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_failure_streak() {
        let s = FunctionStats::default();
        let cb = cfg();
        s.breaker_record(Some(&cb), false, 0);
        s.breaker_record(Some(&cb), false, MS);
        s.breaker_record(Some(&cb), true, 2 * MS);
        s.breaker_record(Some(&cb), false, 3 * MS);
        s.breaker_record(Some(&cb), false, 4 * MS);
        assert_eq!(s.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let s = FunctionStats::default();
        for i in 0..100 {
            s.breaker_record(None, false, i * MS);
        }
        assert_eq!(s.breaker_state(), BreakerState::Closed);
    }
}
