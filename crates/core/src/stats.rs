//! Global runtime counters, exported for tests, examples, and benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic counters updated by the listener and workers.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Requests accepted by the listener.
    pub admitted: AtomicU64,
    /// Requests rejected by admission control.
    pub rejected: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests that trapped.
    pub trapped: AtomicU64,
    /// Sandboxes stolen from the global deque by workers.
    pub steals: AtomicU64,
    /// Preemptions performed.
    pub preemptions: AtomicU64,
    /// Sandboxes that blocked on (emulated) I/O at least once.
    pub blocked: AtomicU64,
    /// Total instantiation time in nanoseconds (with `admitted` as count).
    pub instantiation_ns: AtomicU64,
    /// Total guest execution time in nanoseconds.
    pub execution_ns: AtomicU64,
}

impl RuntimeStats {
    /// Record an instantiation.
    pub fn record_instantiation(&self, d: Duration) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.instantiation_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A snapshot suitable for printing.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            trapped: self.trapped.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            instantiation_ns: self.instantiation_ns.load(Ordering::Relaxed),
            execution_ns: self.execution_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub trapped: u64,
    pub steals: u64,
    pub preemptions: u64,
    pub blocked: u64,
    pub instantiation_ns: u64,
    pub execution_ns: u64,
}

impl StatsSnapshot {
    /// Mean instantiation time, if any requests were admitted.
    pub fn mean_instantiation(&self) -> Option<Duration> {
        if self.admitted == 0 {
            None
        } else {
            Some(Duration::from_nanos(self.instantiation_ns / self.admitted))
        }
    }
}

/// Per-function counters, attached to each registered function.
#[derive(Debug, Default)]
pub struct FunctionStats {
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests that trapped.
    pub trapped: AtomicU64,
    /// Total guest execution time in nanoseconds.
    pub execution_ns: AtomicU64,
}

impl FunctionStats {
    /// A point-in-time copy.
    pub fn snapshot(&self) -> FunctionStatsSnapshot {
        FunctionStatsSnapshot {
            completed: self.completed.load(Ordering::Relaxed),
            trapped: self.trapped.load(Ordering::Relaxed),
            execution_ns: self.execution_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FunctionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunctionStatsSnapshot {
    pub completed: u64,
    pub trapped: u64,
    pub execution_ns: u64,
}

impl FunctionStatsSnapshot {
    /// Mean guest execution time per completed request.
    pub fn mean_execution(&self) -> Option<Duration> {
        let n = self.completed + self.trapped;
        if n == 0 {
            None
        } else {
            Some(Duration::from_nanos(self.execution_ns / n))
        }
    }
}
