//! Per-function work budgets: fuel-per-second token buckets.
//!
//! A [`TokenBucket`] meters a tenant's share of *certified work*: tokens
//! are cost units (the calibrated fuel of `awsm::op_cost`), the refill
//! rate is `budget_us_per_s × cost_units_per_us` — i.e. "this function may
//! burn N µs of worker CPU per wall second". The listener charges each
//! invocation's statically certified entry cost (`FuncCost::total_cost`)
//! at admission; the worker trues the charge up against the fuel actually
//! burned (`Instance::fuel_used`) at completion, so long-run accounting
//! tracks real consumption, not the static estimate.
//!
//! Internally balances are kept in *nano-tokens* (token × 10⁹) so refill
//! arithmetic is exact: `elapsed_ns × rate` nano-tokens accrue per refill
//! with no fractional loss, making refill monotone and drift-free.

use parking_lot::Mutex;
use std::time::Duration;

/// Nano-tokens per token.
const NANO: u128 = 1_000_000_000;

#[derive(Debug)]
struct Inner {
    /// Current balance in nano-tokens; by construction never negative and
    /// never above `capacity × NANO`.
    balance: u128,
    /// Clock of the last refill (epoch-relative nanoseconds).
    last_ns: u64,
}

/// A token bucket over cost units. Thread-safe; the clock is supplied by
/// callers (epoch-relative monotonic nanoseconds, `Shared::now_ns`) so the
/// bucket itself stays deterministic and testable.
#[derive(Debug)]
pub struct TokenBucket {
    /// Refill rate in tokens (cost units) per second.
    rate: u64,
    /// Burst capacity in tokens.
    capacity: u64,
    inner: Mutex<Inner>,
}

impl TokenBucket {
    /// A bucket refilling `rate` tokens/second with burst capacity
    /// `capacity`, starting full. Both are clamped to ≥ 1 — a bucket that
    /// can never admit anything is a configuration error, not a policy.
    pub fn new(rate: u64, capacity: u64) -> Self {
        let capacity = capacity.max(1);
        TokenBucket {
            rate: rate.max(1),
            capacity,
            inner: Mutex::new(Inner {
                balance: capacity as u128 * NANO,
                last_ns: 0,
            }),
        }
    }

    /// Refill rate in tokens per second.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Burst capacity in tokens.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn refill(&self, inner: &mut Inner, now_ns: u64) {
        let elapsed = now_ns.saturating_sub(inner.last_ns);
        if elapsed == 0 {
            return;
        }
        // rate tokens/s = rate nano-tokens/ns, so the accrual is exact.
        let accrued = elapsed as u128 * self.rate as u128;
        inner.balance = (inner.balance + accrued).min(self.capacity as u128 * NANO);
        inner.last_ns = now_ns;
    }

    /// Try to deduct `cost` tokens at time `now_ns`.
    ///
    /// # Errors
    ///
    /// When the balance is short, returns how long until the deficit would
    /// refill — the `Retry-After` hint.
    pub fn try_charge(&self, cost: u64, now_ns: u64) -> Result<(), Duration> {
        let mut inner = self.inner.lock();
        self.refill(&mut inner, now_ns);
        let need = cost as u128 * NANO;
        if inner.balance >= need {
            inner.balance -= need;
            Ok(())
        } else {
            let deficit = need - inner.balance;
            // deficit nano-tokens / (rate nano-tokens per ns), rounded up.
            let wait_ns = deficit.div_ceil(self.rate as u128);
            Err(Duration::from_nanos(wait_ns.min(u64::MAX as u128) as u64))
        }
    }

    /// Replace an admission-time charge with the fuel actually burned:
    /// credit back `charged − used` (capped at capacity) when the static
    /// certificate over-estimated, or deduct the extra (saturating at zero
    /// — the tenant's future refills absorb the overshoot) when it ran hot.
    pub fn true_up(&self, charged: u64, used: u64, now_ns: u64) {
        let mut inner = self.inner.lock();
        self.refill(&mut inner, now_ns);
        if used <= charged {
            let credit = (charged - used) as u128 * NANO;
            inner.balance = (inner.balance + credit).min(self.capacity as u128 * NANO);
        } else {
            let debit = (used - charged) as u128 * NANO;
            inner.balance = inner.balance.saturating_sub(debit);
        }
    }

    /// Current balance in whole tokens at time `now_ns`.
    pub fn balance(&self, now_ns: u64) -> u64 {
        let mut inner = self.inner.lock();
        self.refill(&mut inner, now_ns);
        (inner.balance / NANO) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    #[test]
    fn starts_full_and_charges() {
        let b = TokenBucket::new(100, 500);
        assert_eq!(b.balance(0), 500);
        assert!(b.try_charge(500, 0).is_ok());
        assert_eq!(b.balance(0), 0);
        let wait = b.try_charge(1, 0).unwrap_err();
        // 1 token at 100/s = 10 ms.
        assert_eq!(wait, Duration::from_millis(10));
    }

    #[test]
    fn refills_at_rate_and_caps_at_capacity() {
        let b = TokenBucket::new(100, 500);
        assert!(b.try_charge(500, 0).is_ok());
        // 1 s at 100/s.
        assert_eq!(b.balance(S), 100);
        // 60 s would be 6000 tokens: capped.
        assert_eq!(b.balance(61 * S), 500);
    }

    #[test]
    fn true_up_credits_overestimate_and_debits_overrun() {
        let b = TokenBucket::new(1, 1000);
        assert!(b.try_charge(800, 0).is_ok());
        // Actually used only 300: net deduction becomes 300.
        b.true_up(800, 300, 0);
        assert_eq!(b.balance(0), 700);
        // A hot run: charged 100, burned 400 → extra 300 comes out.
        assert!(b.try_charge(100, 0).is_ok());
        b.true_up(100, 400, 0);
        assert_eq!(b.balance(0), 300);
        // Overrun past zero saturates rather than going negative.
        b.true_up(0, 10_000, 0);
        assert_eq!(b.balance(0), 0);
    }

    #[test]
    fn retry_hint_tracks_deficit() {
        let b = TokenBucket::new(1000, 1000);
        assert!(b.try_charge(1000, 0).is_ok());
        // Need 500 more tokens at 1000/s = 500 ms.
        let wait = b.try_charge(500, 0).unwrap_err();
        assert_eq!(wait, Duration::from_millis(500));
        // Halfway through the wait the hint halves.
        let wait = b.try_charge(500, 250_000_000).unwrap_err();
        assert_eq!(wait, Duration::from_millis(250));
    }
}
