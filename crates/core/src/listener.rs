//! The listener core: request intake, sandbox instantiation, admission
//! control, and load-balancer injection (it is the single owner of the
//! global work-stealing deque, exactly as in the paper's Figure 4).

use crate::registry::FunctionId;
use crate::sandbox::{Completion, Outcome, Sandbox, Timings};
use crate::Shared;
use awsm::EngineConfig;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use sledge_deque::Worker as DequeWorker;
use sledge_http::{ConnectionEvent, HttpServer, Response, StatusCode};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connection id re-export from the HTTP layer.
pub type ConnId = u64;

/// Where a completion is delivered.
pub enum AnyResponder {
    /// In-process invoker.
    Channel(Sender<Completion>),
    /// HTTP client; the worker serializes the response and hands the bytes
    /// back to the listener thread, which owns the socket.
    Http {
        /// Connection to respond on.
        conn: ConnId,
        /// Channel back to the listener.
        reply: Sender<(ConnId, Vec<u8>)>,
    },
    /// Fire-and-forget (load generation).
    Discard,
}

impl AnyResponder {
    /// Deliver a completion.
    pub fn deliver(self, completion: Completion) {
        match self {
            AnyResponder::Channel(tx) => {
                let _ = tx.send(completion);
            }
            AnyResponder::Http { conn, reply } => {
                let resp = match &completion.outcome {
                    Outcome::Success(body) => Response::ok(body.clone()),
                    Outcome::Trapped(t) => Response::error(
                        StatusCode::InternalServerError,
                        &format!("function trapped: {t}"),
                    ),
                    Outcome::Rejected(why) => Response::error(StatusCode::ServiceUnavailable, why),
                    Outcome::TimedOut => {
                        Response::error(StatusCode::GatewayTimeout, "function deadline exceeded")
                    }
                    Outcome::CircuitOpen { retry_after } => {
                        Response::error(StatusCode::ServiceUnavailable, "circuit breaker open")
                            .retry_after(*retry_after)
                    }
                    Outcome::Throttled { retry_after, why } => {
                        Response::error(StatusCode::TooManyRequests, why).retry_after(*retry_after)
                    }
                };
                let _ = reply.send((conn, resp.to_bytes()));
            }
            AnyResponder::Discard => {}
        }
    }
}

/// One intake message to the listener.
pub(crate) enum Intake {
    /// In-process invocation.
    Invoke {
        function: FunctionId,
        body: Bytes,
        responder: AnyResponder,
    },
    /// Ask the listener to exit promptly.
    Wake,
}

fn deliver_now(function: FunctionId, responder: AnyResponder, outcome: Outcome) {
    responder.deliver(Completion {
        function,
        outcome,
        timings: Timings {
            arrival: Instant::now(),
            instantiation: Duration::ZERO,
            queue_delay: Duration::ZERO,
            execution: Duration::ZERO,
            preempted: Duration::ZERO,
            blocked: Duration::ZERO,
            total: Duration::ZERO,
            preemptions: 0,
        },
    });
}

fn reject(shared: &Shared, function: FunctionId, responder: AnyResponder, why: &'static str) {
    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
    deliver_now(function, responder, Outcome::Rejected(why));
}

/// Instantiate and inject one request. Runs on the listener thread.
fn admit(
    shared: &Shared,
    deque: &DequeWorker<Box<Sandbox>>,
    function: FunctionId,
    body: Bytes,
    responder: AnyResponder,
) {
    if shared.draining.load(Ordering::Acquire) {
        reject(shared, function, responder, "draining");
        return;
    }
    if shared.pending.load(Ordering::Relaxed) >= shared.config.max_pending {
        reject(shared, function, responder, "admission queue full");
        return;
    }
    let Some(rf) = shared.registry.read().get(function).cloned() else {
        reject(shared, function, responder, "unknown function");
        return;
    };
    // Overload shedding by priority class: class p is shed once in-flight
    // load reaches (p+1)/4 of the cap, so ping-class (priority 3) tenants
    // keep flowing until the full cap while priority-0 antagonists are
    // shed from quarter load.
    if shared.config.max_inflight > 0 {
        let class = rf.config.priority.min(crate::config::MAX_PRIORITY) as usize;
        let slots = crate::config::MAX_PRIORITY as usize + 1;
        let threshold = (shared.config.max_inflight * (class + 1) / slots).max(1);
        if shared.inflight.load(Ordering::Acquire) >= threshold {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            rf.stats.shed.fetch_add(1, Ordering::Relaxed);
            deliver_now(
                function,
                responder,
                Outcome::Throttled {
                    retry_after: Duration::from_secs(1),
                    why: "overloaded: shed by in-flight cap",
                },
            );
            return;
        }
    }
    // Circuit breaker gate: fast-reject tripped functions; a single
    // half-open probe is admitted per cooldown.
    let mut is_probe = false;
    if let Some(cb) = &shared.config.circuit_breaker {
        match rf.stats.breaker_admit(cb, shared.now_ns()) {
            Ok(probe) => is_probe = probe,
            Err(retry_after) => {
                shared
                    .stats
                    .breaker_rejected
                    .fetch_add(1, Ordering::Relaxed);
                deliver_now(function, responder, Outcome::CircuitOpen { retry_after });
                return;
            }
        }
    }
    // Any reject path past this point must tell the breaker the probe died
    // unexecuted, or it would stay half-open forever.
    let probe_rejected = |rf: &crate::registry::RegisteredFunction| {
        if is_probe {
            rf.stats.breaker_probe_rejected(shared.now_ns());
        }
    };
    // Queue-SLO gate: when the function's observed queue-phase p99 is
    // already past its SLO, queueing more work behind the blown target
    // helps nobody — reject early and let the client back off for about
    // one SLO span.
    if let Some(slo) = rf.config.queue_slo {
        if rf.queue_p99_ns(shared.now_ns()) > slo.as_nanos() as u64 {
            shared.stats.slo_rejected.fetch_add(1, Ordering::Relaxed);
            rf.stats.slo_rejected.fetch_add(1, Ordering::Relaxed);
            probe_rejected(&rf);
            deliver_now(
                function,
                responder,
                Outcome::Throttled {
                    retry_after: slo,
                    why: "queue latency SLO exceeded",
                },
            );
            return;
        }
    }
    // Work-budget gate: charge the entry's certified cost against the
    // function's token bucket. The worker trues the charge up against the
    // fuel actually burned at completion.
    let mut budget_charge = None;
    if let Some(bucket) = &rf.budget {
        match bucket.try_charge(rf.admission_cost, shared.now_ns()) {
            Ok(()) => budget_charge = Some(rf.admission_cost),
            Err(wait) => {
                shared.stats.budget_rejected.fetch_add(1, Ordering::Relaxed);
                rf.stats.budget_rejected.fetch_add(1, Ordering::Relaxed);
                probe_rejected(&rf);
                deliver_now(
                    function,
                    responder,
                    Outcome::Throttled {
                        retry_after: wait,
                        why: "work budget exhausted",
                    },
                );
                return;
            }
        }
    }
    // A later reject path must also hand the admission charge back — the
    // invocation never ran, so it burned nothing.
    let refund = |rf: &crate::registry::RegisteredFunction| {
        if let (Some(charge), Some(bucket)) = (budget_charge, rf.budget.as_ref()) {
            bucket.true_up(charge, 0, shared.now_ns());
        }
    };
    let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
    if let Some(plan) = &shared.config.fault_plan {
        if plan.fail_instantiation(seq) {
            probe_rejected(&rf);
            refund(&rf);
            reject(shared, function, responder, "instantiation failed");
            return;
        }
    }
    let engine = EngineConfig {
        bounds: shared.config.bounds,
        tier: shared.config.tier,
        ..Default::default()
    };
    // The µs-level function startup path: allocate + start.
    let mut sandbox = match Sandbox::new(Arc::clone(&rf), engine, body, responder, shared.epoch) {
        Ok(s) => s,
        Err((_, responder)) => {
            // Instantiation failures are configuration bugs (e.g. data
            // segments out of bounds) — but the client still gets an
            // answer instead of a hung connection.
            probe_rejected(&rf);
            refund(&rf);
            reject(shared, function, responder, "instantiation failed");
            return;
        }
    };
    if sandbox.start().is_err() {
        probe_rejected(&sandbox.function);
        refund(&sandbox.function);
        reject(
            shared,
            function,
            sandbox.responder_take(),
            "bad entry point",
        );
        return;
    }
    sandbox.breaker_probe = is_probe;
    sandbox.budget_charge = budget_charge;
    sandbox.deadline = sandbox
        .function
        .effective_deadline(shared.config.deadline)
        .map(|d| sandbox.arrival + d);
    if let Some(plan) = &shared.config.fault_plan {
        // A burst invocation is turned into a sustained hog: every logical
        // host call stalls for the burst latency, modelling an antagonist
        // stampede for the fairness chaos tests.
        let mut plan = *plan;
        if plan.burst_invocation(seq) {
            plan.host_latency_pct = 100.0;
            plan.host_latency = plan.host_latency.max(plan.burst_latency);
        }
        sandbox.set_fault(plan, seq);
    }
    rf.stats.admitted.fetch_add(1, Ordering::Relaxed);
    shared.stats.record_instantiation(sandbox.instantiation);
    shared.pending.fetch_add(1, Ordering::Relaxed);
    shared.inflight.fetch_add(1, Ordering::AcqRel);
    deque.push(sandbox);
}

/// Handle one `POST /admin/modules` ingest: parse the framed body, decode
/// the artifact (checksum-verified), and register it through the strict
/// path that re-validates every certificate instead of re-translating.
///
/// Frame layout: `u32 LE config length | function-config JSON | artifact`.
fn ingest_module(shared: &Shared, body: &[u8]) -> Response {
    match try_ingest(shared, body) {
        Ok((name, route)) => {
            Response::ok(format!("{{\"registered\":{name:?},\"route\":{route:?}}}").into_bytes())
                .header("Content-Type", "application/json")
        }
        Err(why) => Response::error(StatusCode::BadRequest, &why),
    }
}

fn try_ingest(shared: &Shared, body: &[u8]) -> Result<(String, String), String> {
    if shared.draining.load(Ordering::Acquire) {
        return Err("draining".into());
    }
    let Some(len_bytes) = body.get(..4) else {
        return Err("truncated frame: missing config length".into());
    };
    let cfg_len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let rest = &body[4..];
    if rest.len() < cfg_len {
        return Err(format!(
            "truncated frame: config length {cfg_len} exceeds remaining {} bytes",
            rest.len()
        ));
    }
    let cfg_text =
        std::str::from_utf8(&rest[..cfg_len]).map_err(|_| "config is not UTF-8".to_string())?;
    let doc = crate::json::parse(cfg_text).map_err(|e| format!("config: {e}"))?;
    let config = crate::config::parse_function(&doc).map_err(|e| format!("config: {e}"))?;
    let artifact = &rest[cfg_len..];
    let compiled = awsm::decode_artifact(artifact).map_err(|e| format!("artifact: {e}"))?;
    let name = config.name.clone();
    let route = config.http_route();
    shared
        .registry
        .write()
        .register_artifact(config, compiled, artifact.len())
        .map_err(|e| format!("register: {e}"))?;
    Ok((name, route))
}

/// The listener loop. Owns the deque, the intake channel, and (optionally)
/// the HTTP front end.
pub(crate) fn listener_loop(
    shared: Arc<Shared>,
    deque: DequeWorker<Box<Sandbox>>,
    intake: Receiver<Intake>,
    mut http: Option<HttpServer>,
    http_reply: Receiver<(ConnId, Vec<u8>)>,
    http_reply_tx: Sender<(ConnId, Vec<u8>)>,
) {
    let mut drain_started = false;
    loop {
        let mut worked = false;

        // Propagate a drain to the socket tier the moment it starts: new
        // peers get the socket-tier 503 while existing connections finish
        // their in-flight responses.
        if !drain_started && shared.draining.load(Ordering::Acquire) {
            drain_started = true;
            if let Some(server) = http.as_mut() {
                server.begin_drain();
            }
        }

        // Drain in-process invocations.
        while let Ok(msg) = intake.try_recv() {
            worked = true;
            match msg {
                Intake::Invoke {
                    function,
                    body,
                    responder,
                } => admit(&shared, &deque, function, body, responder),
                Intake::Wake => {}
            }
        }

        // Service the HTTP front end.
        if let Some(server) = http.as_mut() {
            // Flush completed responses owned by this thread.
            while let Ok((conn, bytes)) = http_reply.try_recv() {
                worked = true;
                server.send(conn, &bytes);
            }
            for ev in server.poll(Duration::ZERO) {
                worked = true;
                match ev {
                    ConnectionEvent::Request(conn, req) => {
                        // Dependency-free liveness probe, always on and
                        // reserved ahead of function routes: 200 while
                        // serving, 503 once the drain has started (load
                        // balancers steer away before intake rejects).
                        if req.method == "GET" && req.path == "/healthz" {
                            let resp = if shared.draining.load(Ordering::Acquire) {
                                Response::error(StatusCode::ServiceUnavailable, "draining")
                            } else {
                                Response::ok(b"ok".to_vec())
                            };
                            server.send(conn, &resp.to_bytes());
                            continue;
                        }
                        // Cluster-mode module ingest, gated by `admin_routes`
                        // (default off: the route falls through to the 404
                        // below and the node is byte-identical to earlier
                        // releases).
                        if shared.config.admin_routes
                            && req.method == "POST"
                            && req.path == "/admin/modules"
                        {
                            server.send(conn, &ingest_module(&shared, &req.body).to_bytes());
                            continue;
                        }
                        // Observability endpoints are served inline on the
                        // listener thread (merging shards is read-only and
                        // cheap) and take precedence over function routes.
                        if shared.config.metrics_routes
                            && req.method == "GET"
                            && (req.path == "/metrics" || req.path == "/stats")
                        {
                            let report = shared.latency_report();
                            let stats = shared.stats.snapshot();
                            let (body, ctype) = if req.path == "/metrics" {
                                (
                                    crate::metrics::render_prometheus(&report, &stats),
                                    "text/plain; version=0.0.4",
                                )
                            } else {
                                (
                                    crate::metrics::render_json(&report, &stats),
                                    "application/json",
                                )
                            };
                            server.send(
                                conn,
                                &Response::ok(body.into_bytes())
                                    .header("Content-Type", ctype)
                                    .to_bytes(),
                            );
                            continue;
                        }
                        let function = shared.registry.read().by_route(&req.path).map(|rf| rf.id);
                        match function {
                            Some(id) => admit(
                                &shared,
                                &deque,
                                id,
                                Bytes::from(req.body),
                                AnyResponder::Http {
                                    conn,
                                    reply: http_reply_tx.clone(),
                                },
                            ),
                            None => {
                                server.send(
                                    conn,
                                    &Response::error(StatusCode::NotFound, "no such function")
                                        .to_bytes(),
                                );
                            }
                        }
                    }
                    ConnectionEvent::Closed(_) => {}
                }
            }
        }

        if shared.shutdown.load(Ordering::Acquire) {
            // Workers decrement `inflight` only after delivering the
            // completion, so by the time a drain observes inflight == 0
            // every HTTP reply is already in the channel — flush them (and
            // any queued connection bytes) before the socket owner exits,
            // bounded so a stuck peer cannot wedge shutdown.
            if let Some(server) = http.as_mut() {
                let deadline = Instant::now() + Duration::from_millis(250);
                loop {
                    let mut flushed_all = true;
                    while let Ok((conn, bytes)) = http_reply.try_recv() {
                        server.send(conn, &bytes);
                    }
                    server.poll(Duration::ZERO);
                    if server.unflushed() > 0 || !http_reply.is_empty() {
                        flushed_all = false;
                    }
                    if flushed_all || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
            return;
        }
        if !worked {
            if http.is_some() {
                // Keep polling the sockets at a modest rate.
                std::thread::sleep(Duration::from_micros(100));
            } else {
                // Block on the intake channel (with a timeout so shutdown is
                // observed).
                match intake.recv_timeout(Duration::from_millis(5)) {
                    Ok(Intake::Invoke {
                        function,
                        body,
                        responder,
                    }) => admit(&shared, &deque, function, body, responder),
                    Ok(Intake::Wake) | Err(_) => {}
                }
            }
        }
    }
}

impl Sandbox {
    /// Take the responder out (replacing it with a discard), used on error
    /// paths where the sandbox is being abandoned.
    pub(crate) fn responder_take(&mut self) -> AnyResponder {
        std::mem::replace(&mut self.responder, AnyResponder::Discard)
    }
}
