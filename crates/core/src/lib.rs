//! The Sledge serverless-first runtime: a single-process, multi-tenant
//! function runtime with work-stealing load balancing and preemptive
//! user-level round-robin scheduling, reproducing the system described in
//! *"Sledge: a Serverless-first, Light-weight Wasm Runtime for the Edge"*
//! (Middleware '20).
//!
//! Architecture (the paper's Figure 4):
//!
//! * A **listener thread** accepts requests (from in-process [`Runtime::invoke`]
//!   calls and/or an HTTP front end), instantiates a sandbox per request
//!   (the µs-level startup path — the module was linked/loaded once at
//!   registration), applies admission control, and pushes sandboxes onto the
//!   **global work-stealing deque**.
//! * **N worker threads** steal sandboxes, keep core-local run queues, and
//!   schedule them with **preemptive round-robin** (default 5 ms quantum,
//!   enforced by a timer thread through per-sandbox preempt flags).
//! * Sandboxes that block on (emulated) asynchronous I/O park on the
//!   worker's core-local event set and are woken by the worker's idle loop —
//!   the libuv-analogue.
//!
//! # Examples
//!
//! ```
//! use sledge_core::{Runtime, RuntimeConfig, FunctionConfig, Outcome};
//! use sledge_guestc::{dsl::*, FuncBuilder, ModuleBuilder};
//! use sledge_wasm::types::ValType;
//!
//! // A guest that echoes its request body.
//! let mut mb = ModuleBuilder::new("echo");
//! mb.memory(2, Some(16));
//! let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
//! let req_read = mb.import_func("env", "request_read",
//!     &[ValType::I32, ValType::I32, ValType::I32], Some(ValType::I32));
//! let resp_write = mb.import_func("env", "response_write",
//!     &[ValType::I32, ValType::I32], Some(ValType::I32));
//! let mut f = FuncBuilder::new(&[], Some(ValType::I32));
//! let n = f.local(ValType::I32);
//! f.extend([
//!     set(n, call(req_len, vec![])),
//!     exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
//!     exec(call(resp_write, vec![i32c(0), local(n)])),
//!     ret(Some(i32c(0))),
//! ]);
//! let main = mb.add_func("main", f);
//! mb.export_func(main, "main");
//! let module = mb.build()?;
//!
//! let rt = Runtime::new(RuntimeConfig { workers: 2, ..Default::default() });
//! let id = rt.register_module(FunctionConfig::new("echo"), &module)?;
//! let done = rt.invoke(id, &b"hello edge"[..]).wait().unwrap();
//! assert!(matches!(done.outcome, Outcome::Success(ref b) if b == b"hello edge"));
//! rt.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod budget;
mod config;
mod fault;
mod histogram;
mod json;
mod listener;
mod metrics;
mod pool;
mod registry;
mod sandbox;
mod sched;
mod stats;
mod worker;

pub use budget::TokenBucket;
pub use config::{
    num_cpus, BreakerConfig, ConfigError, FunctionConfig, RuntimeConfig, SchedPolicy, MAX_PRIORITY,
};
pub use fault::FaultPlan;
pub use histogram::{bucket_bounds, bucket_of, Histogram, HistogramSnapshot, BUCKETS};
pub use json::{parse as parse_json, Json, JsonError};
pub use listener::AnyResponder;
pub use metrics::{
    render_json, render_prometheus, summary_line, AdmissionFnSnapshot, AdmissionReport,
    CapabilityReport, LatencyReport, MetricsHandle, OptGateReport, PhaseHistograms, PhaseSnapshot,
    PHASES,
};
pub use pool::{PoolStats, PoolStatsSnapshot, SandboxPool};
pub use registry::{FunctionId, RegisterError, RegisteredFunction, Registry};
pub use sandbox::{Completion, Outcome, Sandbox, SandboxHost, Timings};
pub use sched::Dwrr;
pub use sledge_http::{Backend as HttpBackend, ConnSnapshot};
pub use stats::{
    BreakerState, FunctionStats, FunctionStatsSnapshot, RegistryStats, RegistryStatsSnapshot,
    RuntimeStats, StatsSnapshot,
};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use listener::Intake;
use parking_lot::RwLock;
use sledge_http::{ConnCounters, HttpServer, ServerConfig};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared between the listener, workers, and timer.
pub(crate) struct Shared {
    pub config: RuntimeConfig,
    pub registry: RwLock<Registry>,
    pub stats: RuntimeStats,
    pub epoch: Instant,
    pub shutdown: AtomicBool,
    /// Intake stopped: the listener rejects new work but in-flight
    /// invocations keep running (graceful drain).
    pub draining: AtomicBool,
    /// Drain timeout expired: workers kill their entire backlog with
    /// `TimedOut` completions.
    pub force_kill: AtomicBool,
    /// Sandboxes injected but not yet picked up by a worker.
    pub pending: AtomicUsize,
    /// Accepted invocations whose completion has not yet been delivered
    /// (counts queued, parked, and running sandboxes).
    pub inflight: AtomicUsize,
    /// Invocation sequence numbers (assigned at admission; fault-injection
    /// decisions key off them).
    pub seq: AtomicU64,
    /// Per-worker latency shards for the global (all-functions) view;
    /// worker `i` writes only `phase_shards[i]`.
    pub phase_shards: Box<[metrics::PhaseHistograms]>,
    /// Connection-lifecycle counters shared with the HTTP front end;
    /// `None` when the runtime has no HTTP listener (in-process intake
    /// only) — metrics then render no connection section at all.
    pub http_conns: Option<Arc<ConnCounters>>,
}

impl Shared {
    /// Epoch-relative monotonic nanoseconds (the breaker's clock).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Handle to a single in-flight invocation.
#[derive(Debug)]
pub struct InvocationHandle {
    rx: Receiver<Completion>,
}

impl InvocationHandle {
    /// Block until the function completes. Returns `None` if the runtime
    /// shut down before the request finished.
    pub fn wait(self) -> Option<Completion> {
        self.rx.recv().ok()
    }

    /// Block with a timeout.
    pub fn wait_timeout(&self, dur: std::time::Duration) -> Option<Completion> {
        self.rx.recv_timeout(dur).ok()
    }
}

/// The Sledge runtime. See the crate docs for the architecture.
pub struct Runtime {
    shared: Arc<Shared>,
    intake: Sender<Intake>,
    threads: Vec<JoinHandle<()>>,
    http_addr: Option<SocketAddr>,
}

impl Runtime {
    /// Start a runtime with in-process intake only.
    pub fn new(config: RuntimeConfig) -> Runtime {
        Self::build(config, None).expect("no I/O is involved without HTTP")
    }

    /// Start a runtime that additionally serves HTTP on `addr` (use port 0
    /// for an ephemeral port, then read [`Runtime::http_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn with_http(config: RuntimeConfig, addr: SocketAddr) -> io::Result<Runtime> {
        Self::build(config, Some(addr))
    }

    fn build(config: RuntimeConfig, http: Option<SocketAddr>) -> io::Result<Runtime> {
        let server = match http {
            Some(addr) => Some(HttpServer::bind(
                addr,
                ServerConfig {
                    max_request_size: config.max_request_size,
                    idle_timeout: config.conn_idle,
                    max_connections: config.max_connections,
                    backend: if config.reactor {
                        HttpBackend::Reactor
                    } else {
                        HttpBackend::Poll
                    },
                },
            )?),
            None => None,
        };
        let http_addr = match &server {
            Some(s) => Some(s.local_addr()?),
            None => None,
        };
        let http_conns = server.as_ref().map(HttpServer::counters);

        let workers = config.workers.max(1);
        let mut registry = Registry::new();
        registry.set_stack_budget(config.max_stack_bytes);
        registry.set_check_gap(config.max_check_gap);
        registry.set_shards(workers);
        registry.set_pool_capacity(config.pool_size);
        registry.set_calibration(config.cost_units_per_us);
        registry.set_optimize(config.optimize);
        let shared = Arc::new(Shared {
            config,
            registry: RwLock::new(registry),
            stats: RuntimeStats::default(),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            force_kill: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            phase_shards: (0..workers)
                .map(|_| metrics::PhaseHistograms::default())
                .collect(),
            http_conns,
        });

        let (deque, stealer) = sledge_deque::deque::<Box<Sandbox>>();
        let (intake_tx, intake_rx) = unbounded::<Intake>();
        let (reply_tx, reply_rx) = unbounded();

        let mut threads = Vec::new();
        let mut worker_shareds = Vec::new();
        for i in 0..workers {
            let ws = Arc::new(worker::WorkerShared {
                index: i,
                ..Default::default()
            });
            worker_shareds.push(Arc::clone(&ws));
            let shared = Arc::clone(&shared);
            let stealer = stealer.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sledge-worker-{i}"))
                    .spawn(move || worker::worker_loop(shared, ws, stealer))
                    .expect("spawn worker"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("sledge-timer".into())
                    .spawn(move || worker::timer_loop(shared, worker_shareds))
                    .expect("spawn timer"),
            );
        }
        if shared.config.pool_size > 0 && shared.config.prewarm > 0 {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("sledge-prewarm".into())
                    .spawn(move || pool::prewarm_loop(shared))
                    .expect("spawn prewarmer"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("sledge-listener".into())
                    .spawn(move || {
                        listener::listener_loop(
                            shared, deque, intake_rx, server, reply_rx, reply_tx,
                        )
                    })
                    .expect("spawn listener"),
            );
        }

        Ok(Runtime {
            shared,
            intake: intake_tx,
            threads,
            http_addr,
        })
    }

    /// The HTTP listen address, if serving HTTP.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Register a function from `.wasm` bytes. The heavyweight processing
    /// (decode, validate, translate) happens here, once per function.
    ///
    /// # Errors
    ///
    /// See [`RegisterError`].
    pub fn register_wasm(
        &self,
        config: FunctionConfig,
        wasm: &[u8],
    ) -> Result<FunctionId, RegisterError> {
        self.shared
            .registry
            .write()
            .register_wasm(config, wasm, self.shared.config.tier)
    }

    /// Register a function from an in-memory module.
    ///
    /// # Errors
    ///
    /// See [`RegisterError`].
    pub fn register_module(
        &self,
        config: FunctionConfig,
        module: &sledge_wasm::module::Module,
    ) -> Result<FunctionId, RegisterError> {
        let size = sledge_wasm::encode::encode_module(module).len();
        self.shared
            .registry
            .write()
            .register_module(config, module, self.shared.config.tier, size)
    }

    /// Invoke function `id` with the given request body; returns a handle to
    /// wait on.
    pub fn invoke(&self, id: FunctionId, body: impl Into<Bytes>) -> InvocationHandle {
        let (tx, rx) = bounded(1);
        let _ = self.intake.send(Intake::Invoke {
            function: id,
            body: body.into(),
            responder: AnyResponder::Channel(tx),
        });
        InvocationHandle { rx }
    }

    /// Fire-and-forget invocation (used by load generators; only the global
    /// counters observe the result).
    pub fn invoke_detached(&self, id: FunctionId, body: impl Into<Bytes>) {
        let _ = self.intake.send(Intake::Invoke {
            function: id,
            body: body.into(),
            responder: AnyResponder::Discard,
        });
    }

    /// Look up a function id by name.
    pub fn function_by_name(&self, name: &str) -> Option<FunctionId> {
        self.shared.registry.read().by_name(name).map(|rf| rf.id)
    }

    /// Per-function registration info (module sizes etc.).
    pub fn function_info(&self, id: FunctionId) -> Option<Arc<RegisteredFunction>> {
        self.shared.registry.read().get(id).cloned()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Merged per-phase latency report: every worker's private shards
    /// folded into a global view plus per-function breakdowns. This is the
    /// same data `GET /metrics` and `GET /stats` serve.
    pub fn latency_report(&self) -> LatencyReport {
        self.shared.latency_report()
    }

    /// A cheap clonable handle for reading metrics from another thread
    /// (e.g. a periodic reporter) without holding the `Runtime`.
    pub fn metrics_handle(&self) -> MetricsHandle {
        MetricsHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Load-time static-analysis counter snapshot (modules verified /
    /// rejected, lint warnings, elided bounds checks) plus aggregated
    /// warm-pool counters.
    pub fn registry_stats(&self) -> stats::RegistryStatsSnapshot {
        self.shared.registry.read().stats_snapshot()
    }

    /// Aggregated warm sandbox-pool counters (all-zero when pooling is
    /// disabled via `pool_size = 0`).
    pub fn pool_stats(&self) -> pool::PoolStatsSnapshot {
        let mut snap = pool::PoolStatsSnapshot::default();
        for rf in self.shared.registry.read().iter() {
            snap.merge(&rf.pool.snapshot());
        }
        snap
    }

    /// Per-function counter snapshot.
    pub fn function_stats(&self, id: FunctionId) -> Option<FunctionStatsSnapshot> {
        self.shared
            .registry
            .read()
            .get(id)
            .map(|rf| rf.stats.snapshot())
    }

    /// Connection-lifecycle counter snapshot from the HTTP front end
    /// (all-zero when the runtime has no HTTP listener).
    pub fn connection_stats(&self) -> ConnSnapshot {
        self.shared
            .http_conns
            .as_ref()
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    /// Number of requests injected but not yet started.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Relaxed)
    }

    /// Number of accepted invocations whose completion has not yet been
    /// delivered (queued, parked on I/O, or running).
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// Stop accepting new work without stopping execution. Subsequent
    /// requests are rejected with 503 while in-flight invocations continue;
    /// pair with [`Runtime::shutdown_drain`] to finish the shutdown.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        // Pools are emptied as part of the drain: workers stop recycling
        // and the pre-warmer pauses the moment `draining` is set, so the
        // pools stay empty for the remainder of the shutdown.
        for rf in self.shared.registry.read().iter() {
            rf.pool.drain();
        }
        let _ = self.intake.send(Intake::Wake);
    }

    /// Graceful shutdown: stop intake, wait up to `timeout` for every
    /// in-flight invocation to complete, then stop all threads.
    ///
    /// Returns `true` if the backlog drained within the timeout. On `false`
    /// the remaining backlog is force-killed first — every straggler still
    /// receives a `TimedOut` completion (bounded by a few quanta of grace)
    /// before the threads are joined, so no accepted invocation is left
    /// without an answer.
    pub fn shutdown_drain(mut self, timeout: Duration) -> bool {
        self.begin_drain();
        let deadline = Instant::now() + timeout;
        let drained = loop {
            if self.shared.inflight.load(Ordering::Acquire) == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        if !drained {
            self.shared.force_kill.store(true, Ordering::Release);
            // Grace for workers to sweep their queues and for the timer to
            // preempt whatever is currently running.
            let grace = self.shared.config.quantum * 4 + Duration::from_millis(50);
            let kill_by = Instant::now() + grace;
            while self.shared.inflight.load(Ordering::Acquire) > 0 && Instant::now() < kill_by {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        self.shutdown_inner();
        drained
    }

    /// Stop all threads and drop in-flight work. Waiting invokers receive
    /// `None` from [`InvocationHandle::wait`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = self.intake.send(Intake::Wake);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Every thread is parked; empty the warm pools so all instance
        // memory is released before the runtime object goes away.
        for rf in self.shared.registry.read().iter() {
            rf.pool.drain();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_inner();
        }
    }
}
