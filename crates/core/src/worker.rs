//! Worker cores: steal sandboxes from the global deque, schedule them with
//! preemptive round-robin on a core-local run queue, and service the
//! core-local pending-I/O set (the libuv-event-loop analogue).

use crate::registry::FunctionId;
use crate::sandbox::{Completion, Outcome, Sandbox, WaitKind};
use crate::sched::Dwrr;
use crate::Shared;
use awsm::StepResult;
use parking_lot::Mutex;
use sledge_deque::Stealer;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The core-local run queue: plain FIFO rotation by default, or weighted
/// deficit-round-robin lanes per function when fairness is armed. The
/// FIFO variant preserves pre-fairness scheduling order exactly.
enum LocalQueue {
    Fifo(VecDeque<Box<Sandbox>>),
    Dwrr(Dwrr<Box<Sandbox>>),
}

impl LocalQueue {
    fn push(&mut self, sb: Box<Sandbox>) {
        match self {
            LocalQueue::Fifo(q) => q.push_back(sb),
            LocalQueue::Dwrr(q) => {
                let key = sb.function.id.0;
                let weight = sb.function.config.weight;
                q.push(key, weight, sb);
            }
        }
    }

    fn pop(&mut self) -> Option<Box<Sandbox>> {
        match self {
            LocalQueue::Fifo(q) => q.pop_front(),
            LocalQueue::Dwrr(q) => q.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            LocalQueue::Fifo(q) => q.len(),
            LocalQueue::Dwrr(q) => q.len(),
        }
    }

    /// Charge a dispatch's actual fuel burn against its function's DWRR
    /// lane (no-op under FIFO).
    fn charge(&mut self, key: u32, used: u64) {
        if let LocalQueue::Dwrr(q) = self {
            q.charge(key, used);
        }
    }

    /// Remove every queued sandbox (force-kill sweeps). Sandboxes stay
    /// boxed end-to-end so a drain moves pointers, not multi-KB structs.
    #[allow(clippy::vec_box)]
    fn drain(&mut self) -> Vec<Box<Sandbox>> {
        match self {
            LocalQueue::Fifo(q) => q.drain(..).collect(),
            LocalQueue::Dwrr(q) => q.drain(),
        }
    }

    /// Per-function pass-over counts accumulated since the last call
    /// (always empty under FIFO).
    fn take_deferrals(&mut self) -> Vec<(u32, u64)> {
        match self {
            LocalQueue::Fifo(_) => Vec::new(),
            LocalQueue::Dwrr(q) => q.take_deferrals(),
        }
    }
}

/// Per-worker state visible to the timer thread.
#[derive(Debug, Default)]
pub(crate) struct WorkerShared {
    /// This worker's index: selects its private metrics shard in
    /// `Shared::phase_shards` and in each function's shard set.
    pub index: usize,
    /// Preempt flag of the sandbox currently running on this worker, if any.
    pub current: Mutex<Option<Arc<AtomicBool>>>,
}

/// The timer thread: fires every quantum and requests preemption of every
/// currently-running sandbox — the SIGALRM-propagation analogue. Under
/// run-to-completion it only fires once, at shutdown, so runaway guests
/// cannot wedge `Runtime::shutdown`.
pub(crate) fn timer_loop(shared: Arc<Shared>, workers: Vec<Arc<WorkerShared>>) {
    let preemptive = shared.config.policy == crate::config::SchedPolicy::PreemptiveRr;
    loop {
        std::thread::sleep(shared.config.quantum);
        let down = shared.shutdown.load(Ordering::Acquire);
        // A force-killed drain must preempt even under run-to-completion so
        // runaway guests come back to their worker to be killed.
        let force = shared.force_kill.load(Ordering::Acquire);
        if preemptive || down || force {
            for w in &workers {
                if let Some(flag) = w.current.lock().as_ref() {
                    flag.store(true, Ordering::Relaxed);
                }
            }
        }
        if down {
            return;
        }
    }
}

fn finish(shared: &Shared, shard: usize, mut sandbox: Box<Sandbox>, outcome: Outcome) {
    // True up the admission-time budget charge against the fuel actually
    // burned — on every retirement path, including deadline kills, so the
    // bucket's long-run accounting tracks real consumption.
    if let Some(charged) = sandbox.budget_charge.take() {
        if let Some(bucket) = &sandbox.function.budget {
            bucket.true_up(charged, sandbox.instance.fuel_used(), shared.now_ns());
        }
    }
    let fn_stats = &sandbox.function.stats;
    let breaker = shared.config.circuit_breaker.as_ref();
    match &outcome {
        Outcome::Success(_) => {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            fn_stats.completed.fetch_add(1, Ordering::Relaxed);
            fn_stats.breaker_record(breaker, true, shared.now_ns());
        }
        Outcome::Trapped(_) => {
            shared.stats.trapped.fetch_add(1, Ordering::Relaxed);
            fn_stats.trapped.fetch_add(1, Ordering::Relaxed);
            fn_stats.breaker_record(breaker, false, shared.now_ns());
        }
        Outcome::TimedOut => {
            shared.stats.timed_out.fetch_add(1, Ordering::Relaxed);
            fn_stats.timed_out.fetch_add(1, Ordering::Relaxed);
            fn_stats.breaker_record(breaker, false, shared.now_ns());
        }
        Outcome::Rejected(_) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::CircuitOpen { .. } => {
            shared
                .stats
                .breaker_rejected
                .fetch_add(1, Ordering::Relaxed);
        }
        // Admission throttling is counted (shed / budget / SLO) by the
        // listener at rejection time; a throttled request never reaches a
        // worker, so there is nothing to count here.
        Outcome::Throttled { .. } => {}
    }
    let exec_ns = sandbox.exec_time.as_nanos() as u64;
    fn_stats.execution_ns.fetch_add(exec_ns, Ordering::Relaxed);
    shared
        .stats
        .execution_ns
        .fetch_add(exec_ns, Ordering::Relaxed);
    let timings = sandbox.timings(Instant::now());
    // Every executed invocation (success, trap, or deadline kill) records
    // exactly one sample per phase into this worker's private shards; the
    // listener's pre-execution rejections never reach here, so merged
    // histogram counts equal completed + trapped + timed_out.
    if matches!(
        outcome,
        Outcome::Success(_) | Outcome::Trapped(_) | Outcome::TimedOut
    ) {
        shared.phase_shards[shard].record(&timings);
        let fn_shards = &sandbox.function.metrics;
        fn_shards[shard % fn_shards.len()].record(&timings);
    }
    let function = sandbox.function.id;
    let responder = sandbox.responder_take();
    // Teardown — or recycling. Only *clean* completions are eligible for
    // the warm pool: traps, deadline kills, and poisoned invocations (the
    // chaos fault that models "this sandbox can no longer be trusted") are
    // discarded, as is everything once a drain begins (drained pools must
    // stay empty). The in-place template reset happens here, on the worker,
    // so the next acquire is a plain pop.
    if sandbox.function.pool.enabled() {
        let clean = matches!(outcome, Outcome::Success(_));
        let poisoned = clean && sandbox.fault().is_some_and(|(p, seq)| p.poison_pool(seq));
        let recyclable = clean
            && !poisoned
            && shared.config.recycle
            && !shared.draining.load(Ordering::Acquire)
            && !shared.shutdown.load(Ordering::Acquire);
        let retired = *sandbox;
        let Sandbox {
            function: rf,
            instance,
            ..
        } = retired;
        if recyclable {
            // `release` itself counts the outcome (recycled, evicted on a
            // full pool, or discarded on a failed reset).
            rf.pool.release(instance);
        } else {
            drop(instance);
            rf.pool.discard(poisoned);
        }
    } else {
        // Dropping the sandbox releases linear memory and stacks.
        drop(sandbox);
    }
    responder.deliver(Completion {
        function,
        outcome,
        timings,
    });
    // Decrement only after delivery: `inflight == 0` during a drain means
    // every accepted invocation's completion has been handed off.
    shared.inflight.fetch_sub(1, Ordering::AcqRel);
}

/// The worker loop.
pub(crate) fn worker_loop(
    shared: Arc<Shared>,
    me: Arc<WorkerShared>,
    stealer: Stealer<Box<Sandbox>>,
) {
    let mut runqueue = if shared.config.fairness {
        // DWRR refills are denominated in scheduler quanta of fuel — the
        // calibrated per-dispatch budget — regardless of how much fuel a
        // single dispatch may burn under run-to-completion.
        LocalQueue::Dwrr(Dwrr::new(shared.config.effective_quantum_fuel()))
    } else {
        LocalQueue::Fifo(VecDeque::new())
    };
    // Sandboxes blocked on emulated async I/O, with their wake deadlines.
    let mut io_wait: Vec<(Instant, Box<Sandbox>)> = Vec::new();
    let preemptive = shared.config.policy == crate::config::SchedPolicy::PreemptiveRr;
    let fuel = if preemptive {
        shared.config.effective_quantum_fuel()
    } else {
        u64::MAX
    };

    loop {
        // 0. Shutdown is observed even while long-running sandboxes keep the
        //    run queue non-empty (they are preempted back to us every
        //    quantum, so this check is reached promptly).
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }

        // 0b. Force-killed drain: the drain timeout expired, so the entire
        //     local backlog (parked, queued, and still-unstolen) is killed
        //     with TimedOut — every accepted invocation still gets exactly
        //     one completion. The listener stopped admitting when the drain
        //     began, so nothing new arrives behind this sweep.
        if shared.force_kill.load(Ordering::Acquire) {
            let now = Instant::now();
            for (_, mut sb) in io_wait.drain(..) {
                sb.note_dispatch(now);
                finish(&shared, me.index, sb, Outcome::TimedOut);
            }
            for mut sb in runqueue.drain() {
                sb.note_dispatch(now);
                finish(&shared, me.index, sb, Outcome::TimedOut);
            }
            while let Some(mut sb) = stealer.steal() {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
                sb.note_dispatch(now);
                finish(&shared, me.index, sb, Outcome::TimedOut);
            }
        }

        // 1. Event loop: wake sandboxes whose I/O completed.
        if !io_wait.is_empty() {
            let now = Instant::now();
            let mut i = 0;
            while i < io_wait.len() {
                if io_wait[i].0 <= now {
                    let (_, sb) = io_wait.swap_remove(i);
                    runqueue.push(sb);
                } else {
                    i += 1;
                }
            }
        }

        // 2. Work conservation and fairness: admit new requests from the
        //    global deque into the local round-robin rotation, so a
        //    long-running sandbox cannot starve fresh arrivals on this core.
        const ADMIT_LIMIT: usize = 128;
        if runqueue.len() < ADMIT_LIMIT {
            if let Some(sb) = stealer.steal() {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
                shared.stats.steals.fetch_add(1, Ordering::Relaxed);
                runqueue.push(sb);
            }
        }
        let next = runqueue.pop();

        let mut sandbox = match next {
            Some(mut s) => {
                // Charge the off-CPU wait that just ended to its phase
                // (queue / preempted / blocked) before running or killing.
                s.note_dispatch(Instant::now());
                // Deadline enforcement happens at (re)scheduling points: a
                // sandbox past its deadline is killed instead of dispatched.
                if s.deadline.is_some_and(|d| Instant::now() >= d) {
                    finish(&shared, me.index, s, Outcome::TimedOut);
                    continue;
                }
                s
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Idle: wait for the earliest I/O deadline or a short poll
                // interval before checking the deque again.
                let nap = io_wait
                    .iter()
                    .map(|(d, _)| d.saturating_duration_since(Instant::now()))
                    .min()
                    .unwrap_or(Duration::from_micros(50))
                    .min(Duration::from_micros(200));
                if nap > Duration::ZERO {
                    std::thread::sleep(nap);
                }
                continue;
            }
        };

        // 3. Dispatch one quantum. The sandbox's preempt flag is published
        //    for the timer thread (which fires per quantum under preemptive
        //    RR, and once at shutdown under run-to-completion).
        *me.current.lock() = Some(sandbox.instance.preempt_flag());
        let fn_key = sandbox.function.id.0;
        let fuel_before = sandbox.instance.fuel_used();
        let result = sandbox.run_quantum(fuel);
        *me.current.lock() = None;
        // Charge the dispatch's actual burn against the function's DWRR
        // lane, and surface any pass-overs the scheduler recorded while
        // this lane's deficit was spent.
        let burned = sandbox.instance.fuel_used().saturating_sub(fuel_before);
        runqueue.charge(fn_key, burned);
        let deferred = runqueue.take_deferrals();
        if !deferred.is_empty() {
            let registry = shared.registry.read();
            for (key, n) in deferred {
                if let Some(rf) = registry.get(FunctionId(key)) {
                    rf.stats.dwrr_deferrals.fetch_add(n, Ordering::Relaxed);
                }
            }
        }

        match result {
            StepResult::Complete(_) => {
                let body = std::mem::take(&mut sandbox.host.response);
                finish(&shared, me.index, sandbox, Outcome::Success(body));
            }
            StepResult::Trapped(t) => {
                finish(&shared, me.index, sandbox, Outcome::Trapped(t));
            }
            StepResult::Preempted | StepResult::OutOfFuel => {
                shared.stats.preemptions.fetch_add(1, Ordering::Relaxed);
                if shared.force_kill.load(Ordering::Acquire)
                    || sandbox.deadline.is_some_and(|d| Instant::now() >= d)
                {
                    finish(&shared, me.index, sandbox, Outcome::TimedOut);
                } else {
                    // Round-robin: back of the local queue (or its DWRR
                    // lane, where the deficit decides its next turn).
                    sandbox.begin_wait(WaitKind::Preempted, Instant::now());
                    runqueue.push(sandbox);
                }
            }
            StepResult::Blocked => {
                if shared.force_kill.load(Ordering::Acquire) {
                    finish(&shared, me.index, sandbox, Outcome::TimedOut);
                    continue;
                }
                shared.stats.blocked.fetch_add(1, Ordering::Relaxed);
                // Park until the I/O completes — or, if the sandbox's
                // execution deadline lands first, wake then so it can be
                // killed instead of oversleeping its deadline.
                let mut wake = sandbox.host.io_deadline.unwrap_or_else(Instant::now);
                if let Some(d) = sandbox.deadline {
                    wake = wake.min(d);
                }
                sandbox.begin_wait(WaitKind::Blocked, Instant::now());
                io_wait.push((wake, sandbox));
            }
        }
    }
}
