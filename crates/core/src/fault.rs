//! Deterministic fault injection at the sandbox/host boundary.
//!
//! A [`FaultPlan`] is a pure function from (seed, invocation sequence
//! number, host-call index) to a fault decision, so a chaos run with a
//! fixed seed makes the same per-invocation decisions on every execution
//! regardless of thread interleaving. The listener assigns each accepted
//! invocation a monotonically increasing sequence number; the plan decides
//! whether that invocation's instantiation fails, and whether each of its
//! logical host calls traps or incurs artificial latency.
//!
//! Used by the chaos tests to prove the resilience invariants (every
//! accepted invocation yields exactly one completion, deadlines fire,
//! breakers trip and recover) under adverse conditions.

use std::time::Duration;

/// A deterministic, seeded fault-injection plan. All probabilities are in
/// percent (0.0 disables the fault class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed shared by every decision; two runtimes with the same seed and
    /// the same invocation order make identical decisions.
    pub seed: u64,
    /// Percent of invocations whose sandbox instantiation fails (rejected
    /// before execution, exercising the listener's failure path).
    pub instantiation_failure_pct: f64,
    /// Percent of logical host calls that trap.
    pub host_trap_pct: f64,
    /// Percent of logical host calls that incur artificial latency (the
    /// sandbox blocks as if on slow I/O, then the call proceeds normally).
    pub host_latency_pct: f64,
    /// Artificial latency injected when `host_latency_pct` fires.
    pub host_latency: Duration,
    /// Percent of invocations whose sandbox is "poisoned": even on a clean
    /// completion the worker must discard it instead of recycling it into
    /// the warm pool (chaos-tests the pool's eligibility gate).
    pub pool_poison_pct: f64,
    /// Percent of invocations that belong to an antagonist *burst*: every
    /// logical host call of a burst invocation incurs `burst_latency`,
    /// turning it into a sustained hog. Bursts arrive in contiguous 32-
    /// invocation windows (the decision is keyed on `seq / 32`) so they
    /// stress the admission and fairness layers the way a real stampede
    /// does, rather than as isolated slow calls.
    pub burst_pct: f64,
    /// Per-host-call latency applied to burst invocations.
    pub burst_latency: Duration,
    /// Percent of client connections the connection-churn chaos leg resets
    /// mid-flight (the client aborts mid-read or mid-write instead of
    /// finishing the exchange). Decided per client sequence number, so the
    /// churn pattern is reproducible under any thread interleaving.
    pub conn_reset_pct: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            instantiation_failure_pct: 0.0,
            host_trap_pct: 0.0,
            host_latency_pct: 0.0,
            host_latency: Duration::ZERO,
            pool_poison_pct: 0.0,
            burst_pct: 0.0,
            burst_latency: Duration::ZERO,
            conn_reset_pct: 0.0,
        }
    }
}

/// splitmix64 finalizer: a high-quality 64-bit mix.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and no faults armed (builder start point).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Uniform sample in [0, 100) derived purely from (seed, seq, salt).
    fn roll(&self, seq: u64, salt: u64) -> f64 {
        let x = mix(self.seed
            ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        // 53 high bits → uniform f64 in [0, 1), scaled to percent.
        (x >> 11) as f64 / (1u64 << 53) as f64 * 100.0
    }

    /// Whether invocation `seq`'s sandbox instantiation fails.
    pub fn fail_instantiation(&self, seq: u64) -> bool {
        self.instantiation_failure_pct > 0.0 && self.roll(seq, 1) < self.instantiation_failure_pct
    }

    /// Whether logical host call `call` of invocation `seq` traps.
    pub fn trap_host_call(&self, seq: u64, call: u64) -> bool {
        self.host_trap_pct > 0.0 && self.roll(seq ^ mix(call), 2) < self.host_trap_pct
    }

    /// Artificial latency for logical host call `call` of invocation `seq`,
    /// if the latency fault fires.
    pub fn delay_host_call(&self, seq: u64, call: u64) -> Option<Duration> {
        if self.host_latency_pct > 0.0 && self.roll(seq ^ mix(call), 3) < self.host_latency_pct {
            Some(self.host_latency)
        } else {
            None
        }
    }

    /// Whether invocation `seq`'s sandbox is poisoned: the worker must
    /// discard it at retirement rather than recycle it into the warm pool.
    pub fn poison_pool(&self, seq: u64) -> bool {
        self.pool_poison_pct > 0.0 && self.roll(seq, 4) < self.pool_poison_pct
    }

    /// Whether invocation `seq` belongs to a burst window: all 32
    /// invocations of a window decide together, so bursts arrive as
    /// contiguous antagonist stampedes rather than isolated slow requests.
    pub fn burst_invocation(&self, seq: u64) -> bool {
        self.burst_pct > 0.0 && self.roll(seq >> 5, 5) < self.burst_pct
    }

    /// Whether client connection `seq` is reset mid-flight by the churn
    /// chaos leg.
    pub fn reset_connection(&self, seq: u64) -> bool {
        self.conn_reset_pct > 0.0 && self.roll(seq, 6) < self.conn_reset_pct
    }

    /// Where the churn reset lands for connection `seq`: `true` = the
    /// client aborts mid-read (after sending only part of the request),
    /// `false` = mid-write (full request sent, connection torn down
    /// without reading the response). Deterministic, like every decision.
    pub fn reset_mid_read(&self, seq: u64) -> bool {
        self.roll(seq, 7) < 50.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan {
            seed: 42,
            instantiation_failure_pct: 30.0,
            host_trap_pct: 10.0,
            host_latency_pct: 20.0,
            host_latency: Duration::from_millis(1),
            pool_poison_pct: 15.0,
            burst_pct: 25.0,
            burst_latency: Duration::from_millis(2),
            conn_reset_pct: 20.0,
        };
        let b = a;
        for seq in 0..1000 {
            assert_eq!(a.fail_instantiation(seq), b.fail_instantiation(seq));
            assert_eq!(a.poison_pool(seq), b.poison_pool(seq));
            assert_eq!(a.burst_invocation(seq), b.burst_invocation(seq));
            assert_eq!(a.reset_connection(seq), b.reset_connection(seq));
            assert_eq!(a.reset_mid_read(seq), b.reset_mid_read(seq));
            for call in 0..8 {
                assert_eq!(a.trap_host_call(seq, call), b.trap_host_call(seq, call));
                assert_eq!(a.delay_host_call(seq, call), b.delay_host_call(seq, call));
            }
        }
    }

    #[test]
    fn zero_pct_never_fires() {
        let p = FaultPlan::seeded(7);
        for seq in 0..1000 {
            assert!(!p.fail_instantiation(seq));
            assert!(!p.trap_host_call(seq, seq));
            assert!(p.delay_host_call(seq, seq).is_none());
            assert!(!p.poison_pool(seq));
            assert!(!p.burst_invocation(seq));
            assert!(!p.reset_connection(seq));
        }
    }

    #[test]
    fn hundred_pct_always_fires() {
        let p = FaultPlan {
            seed: 7,
            instantiation_failure_pct: 100.0,
            host_trap_pct: 100.0,
            host_latency_pct: 100.0,
            host_latency: Duration::from_micros(10),
            pool_poison_pct: 100.0,
            burst_pct: 100.0,
            burst_latency: Duration::from_micros(20),
            conn_reset_pct: 100.0,
        };
        for seq in 0..100 {
            assert!(p.fail_instantiation(seq));
            assert!(p.trap_host_call(seq, 0));
            assert_eq!(p.delay_host_call(seq, 0), Some(Duration::from_micros(10)));
            assert!(p.poison_pool(seq));
            assert!(p.burst_invocation(seq));
            assert!(p.reset_connection(seq));
        }
        // The mid-read/mid-write coin must land on both sides somewhere.
        assert!((0..100).any(|s| p.reset_mid_read(s)));
        assert!((0..100).any(|s| !p.reset_mid_read(s)));
    }

    #[test]
    fn bursts_arrive_in_contiguous_windows() {
        let p = FaultPlan {
            seed: 3,
            burst_pct: 30.0,
            ..Default::default()
        };
        // Every invocation in a 32-seq window shares one decision.
        for window in 0..200u64 {
            let first = p.burst_invocation(window * 32);
            for off in 1..32 {
                assert_eq!(p.burst_invocation(window * 32 + off), first);
            }
        }
        // And roughly burst_pct of windows fire.
        let hits = (0..1000).filter(|w| p.burst_invocation(w * 32)).count();
        assert!((220..=380).contains(&hits), "burst windows = {hits}");
    }

    #[test]
    fn rates_are_roughly_proportional() {
        let p = FaultPlan {
            seed: 99,
            instantiation_failure_pct: 25.0,
            ..Default::default()
        };
        let hits = (0..10_000).filter(|&s| p.fail_instantiation(s)).count();
        // 25% ± 3% over 10k trials.
        assert!((2200..=2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan {
            seed: 1,
            instantiation_failure_pct: 50.0,
            ..Default::default()
        };
        let b = FaultPlan { seed: 2, ..a };
        let divergent = (0..256).any(|s| a.fail_instantiation(s) != b.fail_instantiation(s));
        assert!(divergent);
    }
}
