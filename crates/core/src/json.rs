//! A minimal JSON parser for the runtime's configuration files.
//!
//! The paper's runtime loads its module table from a JSON-based
//! configuration file; this module provides just enough JSON (objects,
//! arrays, strings, numbers, booleans, null, escapes) to support that,
//! without adding a dependency.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as u64 (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.i,
            message: m.into(),
        }
    }

    fn ws(&mut self) {
        while let Some(&c) = self.s.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u16::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("non-utf8 \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code as u32)
                                    .ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) => {
                    // Accumulate a UTF-8 run.
                    let start = self.i;
                    let mut end = self.i;
                    while end < self.s.len() && self.s[end] != b'"' && self.s[end] != b'\\' {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.s[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.i = end;
                    let _ = c;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

/// Parse a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] with the byte offset of the first problem,
/// including trailing garbage after the document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        s: input.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"
        {
            "workers": 4,
            "quantum_us": 5000.0,
            "modules": [
                {"name": "echo", "route": "/echo", "active": true},
                {"name": "ekf", "route": "/ekf", "weights": [1.5, -2, 3e2]}
            ],
            "note": "tab\t and \"quotes\" and A"
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("quantum_us").unwrap().as_f64(), Some(5000.0));
        let mods = v.get("modules").unwrap().as_array().unwrap();
        assert_eq!(mods.len(), 2);
        assert_eq!(mods[0].get("name").unwrap().as_str(), Some("echo"));
        assert_eq!(mods[0].get("active").unwrap().as_bool(), Some(true));
        assert_eq!(
            mods[1].get("weights").unwrap().as_array().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(
            v.get("note").unwrap().as_str(),
            Some("tab\t and \"quotes\" and A")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(parse("-12.5").unwrap().as_f64(), Some(-12.5));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
