//! `sledged` — the standalone Sledge server: load a JSON configuration
//! naming `.wasm` modules (as the paper's runtime does), bind the HTTP
//! front end, and serve until killed.
//!
//! Usage: `sledged <config.json> [listen-addr]`
//!
//! Config format (paths are relative to the config file):
//!
//! ```json
//! {
//!   "workers": 4,
//!   "quantum_us": 5000,
//!   "bounds": "vm-guard",
//!   "modules": [
//!     {"name": "echo", "wasm": "echo.wasm", "route": "/echo"}
//!   ]
//! }
//! ```

use sledge_core::{parse_json, FunctionConfig, Json, Runtime, RuntimeConfig};
use std::net::SocketAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let Some(config_path) = args.get(1) else {
        eprintln!("usage: sledged <config.json> [listen-addr]");
        std::process::exit(2);
    };
    let listen: SocketAddr = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080")
        .parse()?;

    let text = std::fs::read_to_string(config_path)?;
    let (config, functions) = RuntimeConfig::from_json(&text)?;
    let base = std::path::Path::new(config_path)
        .parent()
        .unwrap_or_else(|| std::path::Path::new("."))
        .to_path_buf();

    // Re-parse to pull each module's "wasm" path (FunctionConfig carries the
    // runtime-facing fields; the binary location is sledged's concern).
    let doc = parse_json(&text)?;
    let module_paths: Vec<Option<String>> = doc
        .get("modules")
        .and_then(Json::as_array)
        .map(|mods| {
            mods.iter()
                .map(|m| m.get("wasm").and_then(Json::as_str).map(str::to_string))
                .collect()
        })
        .unwrap_or_default();

    let rt = Runtime::with_http(config, listen)?;
    let mut loaded = 0usize;
    for (fc, wasm_rel) in functions.into_iter().zip(module_paths) {
        let Some(rel) = wasm_rel else {
            eprintln!("module {:?}: missing \"wasm\" path, skipping", fc.name);
            continue;
        };
        let path = base.join(rel);
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let route = fc.http_route();
        let name = fc.name.clone();
        rt.register_wasm(FunctionConfig { ..fc }, &bytes)
            .map_err(|e| format!("registering {name}: {e}"))?;
        println!("loaded {:<12} {:>8} bytes  ->  POST {route}", name, bytes.len());
        loaded += 1;
    }

    println!(
        "sledged serving on http://{} ({loaded} functions)",
        rt.http_addr().expect("http bound"),
    );
    println!("Ctrl-C to stop.");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
