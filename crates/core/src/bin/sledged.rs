//! `sledged` — the standalone Sledge server: load a JSON configuration
//! naming `.wasm` modules (as the paper's runtime does), bind the HTTP
//! front end, and serve until killed.
//!
//! Usage: `sledged <config.json> [listen-addr] [flags]`
//!
//! Flags:
//!
//! * `--deadline-ms N` — override the runtime-wide execution deadline.
//! * `--run-for-s N` — serve for N seconds, then drain gracefully and exit
//!   (useful for scripted benchmarks and chaos runs).
//! * `--drain-timeout-ms M` — budget for the graceful drain on exit
//!   (default 5000 ms; past it the backlog is killed with 504s).
//! * `--stats-interval-s N` — print a one-line latency/outcome summary
//!   every N seconds (the same data `GET /metrics` serves).
//!
//! Config format (paths are relative to the config file):
//!
//! ```json
//! {
//!   "workers": 4,
//!   "quantum_us": 5000,
//!   "bounds": "vm-guard",
//!   "deadline_ms": 250,
//!   "circuit_breaker": {"threshold": 5, "cooldown_ms": 1000},
//!   "conn_idle_ms": 10000,
//!   "modules": [
//!     {"name": "echo", "wasm": "echo.wasm", "route": "/echo", "deadline_ms": 50}
//!   ]
//! }
//! ```

use sledge_core::{parse_json, FunctionConfig, Json, RegisterError, Runtime, RuntimeConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();

    // Split flags (`--name value`) from positional arguments.
    let mut positional = Vec::new();
    let mut deadline_ms: Option<u64> = None;
    let mut run_for_s: Option<u64> = None;
    let mut drain_timeout_ms: u64 = 5000;
    let mut stats_interval_s: Option<u64> = None;
    let mut i = 1;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<u64, Box<dyn std::error::Error>> {
            let flag = args[*i].clone();
            *i += 1;
            let v = args
                .get(*i)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            Ok(v.parse::<u64>().map_err(|e| format!("{flag}: {e}"))?)
        };
        match args[i].as_str() {
            "--deadline-ms" => deadline_ms = Some(take_value(&mut i)?),
            "--run-for-s" => run_for_s = Some(take_value(&mut i)?),
            "--drain-timeout-ms" => drain_timeout_ms = take_value(&mut i)?,
            "--stats-interval-s" => stats_interval_s = Some(take_value(&mut i)?),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}").into());
            }
            _ => positional.push(args[i].clone()),
        }
        i += 1;
    }

    let Some(config_path) = positional.first() else {
        eprintln!("usage: sledged <config.json> [listen-addr] [--deadline-ms N] [--run-for-s N] [--drain-timeout-ms M] [--stats-interval-s N]");
        std::process::exit(2);
    };
    let listen: SocketAddr = positional
        .get(1)
        .map(String::as_str)
        .unwrap_or("127.0.0.1:8080")
        .parse()?;

    let text = std::fs::read_to_string(config_path)?;
    let (mut config, functions) = RuntimeConfig::from_json(&text)?;
    if let Some(ms) = deadline_ms {
        config.deadline = Some(Duration::from_millis(ms));
    }
    let base = std::path::Path::new(config_path)
        .parent()
        .unwrap_or_else(|| std::path::Path::new("."))
        .to_path_buf();

    // Re-parse to pull each module's "wasm" path (FunctionConfig carries the
    // runtime-facing fields; the binary location is sledged's concern).
    let doc = parse_json(&text)?;
    let module_paths: Vec<Option<String>> = doc
        .get("modules")
        .and_then(Json::as_array)
        .map(|mods| {
            mods.iter()
                .map(|m| m.get("wasm").and_then(Json::as_str).map(str::to_string))
                .collect()
        })
        .unwrap_or_default();

    let deadline = config.deadline;
    let breaker = config.circuit_breaker;
    let conn_idle = config.conn_idle;
    let listener = (config.reactor, config.max_connections);
    let faults = config.fault_plan.is_some();
    let pool = (config.pool_size, config.prewarm, config.recycle);
    let fairness = (config.fairness, config.max_inflight);
    let admin = config.admin_routes;
    let rt = Runtime::with_http(config, listen)?;
    let mut loaded = 0usize;
    for (fc, wasm_rel) in functions.into_iter().zip(module_paths) {
        let Some(rel) = wasm_rel else {
            eprintln!("module {:?}: missing \"wasm\" path, skipping", fc.name);
            continue;
        };
        let path = base.join(rel);
        let bytes = std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let route = fc.http_route();
        let name = fc.name.clone();
        match rt.register_wasm(FunctionConfig { ..fc }, &bytes) {
            Ok(_) => {}
            // A capability-policy rejection is an operator decision, not a
            // deployment error: report it cleanly, skip the module, and keep
            // serving the rest (the /stats counter records the rejection).
            Err(RegisterError::Capability(diags)) => {
                eprintln!("module {name:?}: rejected by capability policy, skipping:");
                for d in diags {
                    eprintln!("  {d}");
                }
                continue;
            }
            Err(e) => return Err(format!("registering {name}: {e}").into()),
        }
        println!(
            "loaded {:<12} {:>8} bytes  ->  POST {route}",
            name,
            bytes.len()
        );
        loaded += 1;
    }

    let reg = rt.registry_stats();
    println!(
        "verified {} module(s): {} bounds checks elided, {} lint warning(s), \
         {} cost-certified",
        reg.modules_verified, reg.checks_elided, reg.lint_warnings, reg.cost_certified
    );
    // Printed only when at least one module carried a capability policy, so a
    // policy-free deployment's banner is byte-identical to earlier releases.
    if reg.capability_certified + reg.capability_rejected > 0 {
        println!(
            "capability policy: {} certified, {} rejected",
            reg.capability_certified, reg.capability_rejected
        );
    }
    // Likewise printed only once the optimizer gate has seen a module.
    if reg.opt_modules + reg.opt_fallbacks > 0 {
        println!(
            "optimizer: {} module(s) with validated certificates, {} fallback(s)",
            reg.opt_modules, reg.opt_fallbacks
        );
    }

    println!(
        "sledged serving on http://{} ({loaded} functions)",
        rt.http_addr().expect("http bound"),
    );
    match deadline {
        Some(d) => println!("  deadline: {} ms", d.as_millis()),
        None => println!("  deadline: none"),
    }
    match breaker {
        Some(cb) => println!(
            "  circuit breaker: threshold {} / cooldown {} ms",
            cb.threshold,
            cb.cooldown.as_millis()
        ),
        None => println!("  circuit breaker: off"),
    }
    println!("  idle connection timeout: {} ms", conn_idle.as_millis());
    println!(
        "  listener: {} backend, max connections {}",
        if listener.0 { "reactor" } else { "poll" },
        if listener.1 > 0 {
            listener.1.to_string()
        } else {
            "unlimited".into()
        }
    );
    if pool.0 > 0 {
        println!(
            "  sandbox pool: {} per function, prewarm {}, recycle {}",
            pool.0,
            pool.1,
            if pool.2 { "on" } else { "off" }
        );
    }
    if fairness.0 || fairness.1 > 0 {
        println!(
            "  fairness: dwrr {}, max in-flight {}",
            if fairness.0 { "on" } else { "off" },
            if fairness.1 > 0 {
                fairness.1.to_string()
            } else {
                "uncapped".into()
            }
        );
    }
    if admin {
        println!("  admin: module ingest enabled (POST /admin/modules)");
    }
    if faults {
        println!("  FAULT INJECTION ACTIVE (chaos configuration)");
    }

    if let Some(secs) = stats_interval_s.filter(|s| *s > 0) {
        // Periodic one-line reporter, detached: it reads metrics through a
        // cheap handle and dies with the process.
        let handle = rt.metrics_handle();
        std::thread::Builder::new()
            .name("sledged-stats".into())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_secs(secs));
                let report = handle.latency_report();
                let stats = handle.stats();
                println!("[stats] {}", sledge_core::summary_line(&report, &stats));
            })?;
        println!("  stats summary every {secs} s");
    }

    match run_for_s {
        Some(secs) => {
            println!("serving for {secs} s, then draining.");
            std::thread::sleep(Duration::from_secs(secs));
            let handle = rt.metrics_handle();
            let drained = rt.shutdown_drain(Duration::from_millis(drain_timeout_ms));
            println!(
                "drain {}",
                if drained {
                    "completed"
                } else {
                    "timed out (backlog killed)"
                }
            );
            println!(
                "[final] {}",
                sledge_core::summary_line(&handle.latency_report(), &handle.stats())
            );
            Ok(())
        }
        None => {
            println!("Ctrl-C to stop.");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }
}
