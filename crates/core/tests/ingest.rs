//! Cluster-node endpoints: the dependency-free `/healthz` liveness probe
//! and the `POST /admin/modules` certificate-carrying ingest route (gated
//! by `admin_routes`, default off).

use awsm::{encode_artifact, translate_with, Tier, TranslateOptions};
use sledge_core::{Runtime, RuntimeConfig};
use sledge_guestc::dsl::*;
use sledge_guestc::{FuncBuilder, ModuleBuilder};
use sledge_http::HttpClient;
use sledge_wasm::module::Module;
use sledge_wasm::types::ValType;
use std::time::Duration;

/// Echo the request body.
fn echo_guest(name: &str) -> Module {
    let mut mb = ModuleBuilder::new(name);
    mb.memory(2, Some(64));
    let req_len = mb.import_func("env", "request_len", &[], Some(ValType::I32));
    let req_read = mb.import_func(
        "env",
        "request_read",
        &[ValType::I32, ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let resp_write = mb.import_func(
        "env",
        "response_write",
        &[ValType::I32, ValType::I32],
        Some(ValType::I32),
    );
    let mut f = FuncBuilder::new(&[], Some(ValType::I32));
    let n = f.local(ValType::I32);
    f.extend([
        set(n, call(req_len, vec![])),
        exec(call(req_read, vec![i32c(0), local(n), i32c(0)])),
        exec(call(resp_write, vec![i32c(0), local(n)])),
        ret(Some(i32c(0))),
    ]);
    let main = mb.add_func("main", f);
    mb.export_func(main, "main");
    mb.build().unwrap()
}

/// Translate a guest and serialize it as a distributable artifact.
fn artifact_for(module: &Module) -> Vec<u8> {
    let compiled = translate_with(module, Tier::Optimized, TranslateOptions::default()).unwrap();
    encode_artifact(&compiled)
}

/// Build the ingest frame: `u32 LE config length | config JSON | artifact`.
fn ingest_frame(config_json: &str, artifact: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + config_json.len() + artifact.len());
    frame.extend_from_slice(&(config_json.len() as u32).to_le_bytes());
    frame.extend_from_slice(config_json.as_bytes());
    frame.extend_from_slice(artifact);
    frame
}

fn boot(admin: bool) -> Runtime {
    Runtime::with_http(
        RuntimeConfig {
            workers: 2,
            admin_routes: admin,
            ..Default::default()
        },
        "127.0.0.1:0".parse().unwrap(),
    )
    .unwrap()
}

#[test]
fn healthz_reports_serving_then_draining() {
    let rt = boot(false);
    let mut client = HttpClient::new(rt.http_addr().unwrap());
    let resp = client.request("GET", "/healthz", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"ok");

    // Once the drain starts the probe flips to 503 so a router steers away
    // before intake starts rejecting invocations.
    rt.begin_drain();
    std::thread::sleep(Duration::from_millis(50));
    let resp = client.request("GET", "/healthz", &[], b"").unwrap();
    assert_eq!(
        resp.status,
        503,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    rt.shutdown();
}

#[test]
fn ingest_registers_and_serves_distributed_module() {
    let rt = boot(true);
    let mut client = HttpClient::new(rt.http_addr().unwrap());

    let frame = ingest_frame(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")));
    let resp = client
        .request("POST", "/admin/modules", &[], &frame)
        .unwrap();
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    assert_eq!(resp.status, 200, "{body}");
    assert!(body.contains("\"registered\":\"echo\""), "{body}");
    assert!(body.contains("\"route\":\"/echo\""), "{body}");

    // The ingested module serves like a locally registered one.
    let resp = client.request("POST", "/echo", &[], b"hello ring").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"hello ring");

    // Ingest re-ran the certificate gates: the artifact's optimization
    // certificate was re-validated, not re-translated.
    let reg = rt.registry_stats();
    assert_eq!(reg.modules_verified, 1);
    assert_eq!(reg.opt_fallbacks, 0);

    // A duplicate push is a clean 400, not a crash.
    let frame = ingest_frame(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")));
    let resp = client
        .request("POST", "/admin/modules", &[], &frame)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(String::from_utf8_lossy(&resp.body).contains("already registered"));
    rt.shutdown();
}

#[test]
fn corrupt_artifact_rejected_while_node_keeps_serving() {
    let rt = boot(true);
    let mut client = HttpClient::new(rt.http_addr().unwrap());

    let frame = ingest_frame(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")));
    assert_eq!(
        client
            .request("POST", "/admin/modules", &[], &frame)
            .unwrap()
            .status,
        200
    );

    // Flip one payload byte: the checksum catches it and the push is
    // rejected with a 400 naming the artifact layer.
    let mut bad = artifact_for(&echo_guest("tampered"));
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let frame = ingest_frame(r#"{"name": "tampered"}"#, &bad);
    let resp = client
        .request("POST", "/admin/modules", &[], &frame)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        String::from_utf8_lossy(&resp.body).contains("artifact"),
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );

    // The node is unharmed: probe green, previously ingested module serves.
    let resp = client.request("GET", "/healthz", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.request("POST", "/echo", &[], b"still up").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"still up");
    assert!(rt.function_by_name("tampered").is_none());
    rt.shutdown();
}

#[test]
fn malformed_frames_rejected_cleanly() {
    let rt = boot(true);
    let mut client = HttpClient::new(rt.http_addr().unwrap());
    let artifact = artifact_for(&echo_guest("echo"));

    // Empty body: no length prefix.
    let resp = client.request("POST", "/admin/modules", &[], b"").unwrap();
    assert_eq!(resp.status, 400);
    // Config length overruns the body.
    let mut frame = Vec::new();
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    frame.extend_from_slice(b"{}");
    let resp = client
        .request("POST", "/admin/modules", &[], &frame)
        .unwrap();
    assert_eq!(resp.status, 400);
    // Config JSON that fails the function schema.
    let resp = client
        .request(
            "POST",
            "/admin/modules",
            &[],
            &ingest_frame("{}", &artifact),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(String::from_utf8_lossy(&resp.body).contains("config"));
    // A valid frame whose artifact is garbage.
    let resp = client
        .request(
            "POST",
            "/admin/modules",
            &[],
            &ingest_frame(r#"{"name": "x"}"#, b"not an artifact"),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    // Nothing registered by any of the above.
    assert!(rt.function_by_name("echo").is_none());
    assert!(rt.function_by_name("x").is_none());
    rt.shutdown();
}

#[test]
fn ingest_route_requires_admin_knob() {
    let rt = boot(false);
    let mut client = HttpClient::new(rt.http_addr().unwrap());
    let frame = ingest_frame(r#"{"name": "echo"}"#, &artifact_for(&echo_guest("echo")));
    let resp = client
        .request("POST", "/admin/modules", &[], &frame)
        .unwrap();
    assert_eq!(resp.status, 404, "gated route must fall through to 404");
    assert!(rt.function_by_name("echo").is_none());
    rt.shutdown();
}
